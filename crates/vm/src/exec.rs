//! The execution engine.
//!
//! An iterative interpreter over a pooled frame stack, executing the
//! pre-decoded instruction stream of [`crate::decode`]:
//!
//! - frames live in a **pool with a free list** — the stack holds indices
//!   into the pool, a `Ret` returns its frame (register file included) to
//!   the free list, and the next call reuses it without reallocating;
//! - `TailCall` *reuses the current frame's register file in place* — tail
//!   calls consume no stack and, once warm, **no heap allocation per
//!   iteration**, delivering the `musttail` guarantee of §III-E at zero
//!   amortized cost;
//! - `PapExtend` uses the shared saturation semantics from `lssa-rt`, so
//!   closure behaviour matches the reference interpreter exactly;
//! - every instruction executed is counted **per opcode class**
//!   ([`VmStatistics`], the run-side analogue of `lssa-ir`'s per-pass
//!   `PassStatistics`), giving a deterministic performance metric alongside
//!   wall-clock time.
//!
//! ## Dispatch modes
//!
//! Two interpreter loops execute the same decoded stream and are required
//! to be observably identical (results, statistics, error messages — the
//! dispatch differential matrix pins this):
//!
//! - [`DispatchMode::Match`] — the single big `match` loop, kept verbatim
//!   as the measurable baseline;
//! - [`DispatchMode::Threaded`] (default) — a threaded loop that caches the
//!   program counter and the current frame in locals for the lifetime of an
//!   *activation* (the stretch of instructions between frame transitions),
//!   keeps the hot opcodes — arithmetic, branches, constants, moves, the
//!   loop-header/tail superinstructions, calls and returns — on an inlined
//!   fast path, and dispatches the cold classes (allocation, globals, rare
//!   arithmetic) through a function-pointer table indexed by the decoded
//!   opcode-class byte ([`crate::decode::DecodedFn::classes`]), one
//!   `#[inline(never)]` handler per cold class.
//!
//! On top of either loop, **inline caches** ([`ExecOptions::inline_cache`])
//! give every `Call`/`TailCall`/`PapExtend` site a [`CacheSlot`]: the first
//! successful execution proves the target's function index and arity, and
//! repeat executions skip the function lookup, the arity re-check and — for
//! `PapExtend` at exact saturation of an unapplied closure — the whole
//! closure unpack and argument `Vec` build. Monomorphic hit/miss counters
//! land in [`VmStatistics`].

use crate::bytecode::{CompiledProgram, Reg};
use crate::decode::{
    ArgSlice, DecodeOptions, DecodedFn, DecodedInstr, DecodedProgram, OpClass, NO_CACHE,
};
use lssa_rt::object::{MAX_SMALL_INT, MAX_SMALL_NAT, MIN_SMALL_INT};
use lssa_rt::{
    pap_extend, pap_new, ApplyOutcome, Builtin, FuncId, Heap, HeapStats, Int, ObjData, ObjRef,
};
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Which interpreter loop executes the decoded stream.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum DispatchMode {
    /// The single big `match` loop (the PR 5 baseline).
    Match,
    /// The threaded loop: per-activation locals, hot ops inlined, cold
    /// classes through the handler table (the default).
    #[default]
    Threaded,
}

impl DispatchMode {
    /// Parses a `--dispatch` argument value.
    pub fn parse(s: &str) -> Option<DispatchMode> {
        match s {
            "match" => Some(DispatchMode::Match),
            "threaded" => Some(DispatchMode::Threaded),
            _ => None,
        }
    }

    /// Stable display name (the `--dispatch` argument values).
    pub fn name(self) -> &'static str {
        match self {
            DispatchMode::Match => "match",
            DispatchMode::Threaded => "threaded",
        }
    }
}

/// Per-job resource limits, threaded through [`ExecOptions`] into the VM.
///
/// Every limit defaults to "unlimited". Steps, heap bytes and frame depth
/// are deterministic (counted in VM events, identical across dispatch
/// modes); the deadline is wall-clock and therefore host-dependent — use it
/// for operational protection, not for reproducible failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobLimits {
    /// Maximum instructions executed (`u64::MAX` = unlimited). Combined
    /// with the `max_steps` constructor argument by `min`.
    pub steps: u64,
    /// Cap on approximate live heap bytes (`u64::MAX` = unlimited); see
    /// `lssa_rt::heap::obj_bytes` for the size model.
    pub heap_bytes: u64,
    /// Maximum frame-stack depth (`u64::MAX` = unlimited).
    pub max_depth: u64,
    /// Wall-clock budget, armed at each [`Vm::call`] entry.
    pub deadline: Option<Duration>,
}

impl Default for JobLimits {
    fn default() -> JobLimits {
        JobLimits {
            steps: u64::MAX,
            heap_bytes: u64::MAX,
            max_depth: u64::MAX,
            deadline: None,
        }
    }
}

impl JobLimits {
    /// Same limits with the step budget replaced.
    pub fn with_steps(self, steps: u64) -> JobLimits {
        JobLimits { steps, ..self }
    }

    /// Same limits with the live-heap-byte cap replaced.
    pub fn with_heap_bytes(self, heap_bytes: u64) -> JobLimits {
        JobLimits { heap_bytes, ..self }
    }

    /// Same limits with the frame-depth cap replaced.
    pub fn with_max_depth(self, max_depth: u64) -> JobLimits {
        JobLimits { max_depth, ..self }
    }

    /// Same limits with the wall-clock deadline replaced.
    pub fn with_deadline(self, deadline: Option<Duration>) -> JobLimits {
        JobLimits { deadline, ..self }
    }
}

/// A deterministic fault-injection plan, for exercising the abort paths.
///
/// All trigger points are counted in VM events (steps or allocations), so a
/// plan produces the identical failure at the identical point on every run
/// and under every dispatch mode.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Force step-budget exhaustion once this many instructions executed.
    pub exhaust_at: Option<u64>,
    /// Trip the heap budget at the Nth allocation.
    pub trip_alloc: Option<u64>,
    /// Plant a panic at the checkpoint following this instruction count.
    pub panic_at: Option<u64>,
    /// Trigger cancellation at the checkpoint following this count.
    pub cancel_at: Option<u64>,
}

impl FaultPlan {
    /// Whether the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        *self == FaultPlan::default()
    }
}

/// A shared cooperative-cancellation flag: clone it into a job, flip it from
/// any thread, and the VM aborts with [`VmErrorKind::Cancelled`] at its next
/// budget checkpoint (at most ~1024 instructions later).
#[derive(Debug, Clone, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// Creates a token in the not-cancelled state.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Requests cancellation (sticky).
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Relaxed);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }
}

/// Execution-time options (the run-side sibling of
/// [`crate::decode::DecodeOptions`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecOptions {
    /// Which interpreter loop to run.
    pub dispatch: DispatchMode,
    /// Use the per-call-site inline caches (default on; `--no-inline-cache`
    /// disables them for ablation).
    pub inline_cache: bool,
    /// Per-job resource limits (default: unlimited).
    pub limits: JobLimits,
    /// Deterministic fault injection (default: none).
    pub fault: FaultPlan,
}

impl Default for ExecOptions {
    fn default() -> ExecOptions {
        ExecOptions {
            dispatch: DispatchMode::Threaded,
            inline_cache: true,
            limits: JobLimits::default(),
            fault: FaultPlan::default(),
        }
    }
}

impl ExecOptions {
    /// Same options with the dispatch mode replaced.
    pub fn with_dispatch(self, dispatch: DispatchMode) -> ExecOptions {
        ExecOptions { dispatch, ..self }
    }

    /// Same options with the inline caches toggled.
    pub fn with_inline_cache(self, inline_cache: bool) -> ExecOptions {
        ExecOptions {
            inline_cache,
            ..self
        }
    }

    /// Same options with the resource limits replaced.
    pub fn with_limits(self, limits: JobLimits) -> ExecOptions {
        ExecOptions { limits, ..self }
    }

    /// Same options with the fault plan replaced.
    pub fn with_fault(self, fault: FaultPlan) -> ExecOptions {
        ExecOptions { fault, ..self }
    }
}

/// How many instructions may execute between budget checkpoints when any
/// polled feature (deadline, cancellation, heap budget, injected fault) is
/// armed. The hot loops compare `steps` against a precomputed `stop_at`, so
/// polling costs nothing on the per-instruction path.
const POLL_INTERVAL: u64 = 1024;

/// Inline-cache slot states (see [`CacheSlot::state`]).
const SLOT_COLD: u8 = 0;
const SLOT_CALL: u8 = 1;
const SLOT_PAP: u8 = 2;

/// One per-call-site inline cache cell. Slots live in a per-[`Vm`] pool
/// (sized by [`DecodedProgram::cache_slots`]) so the shared, memoized
/// decoded program stays immutable.
///
/// A `Call`/`TailCall` site caches the proof that its (static) target
/// index and argument count validated, plus the callee's register-file
/// size; a `PapExtend` site caches the function id and arity of the last
/// unapplied closure invoked at exact saturation.
#[derive(Debug, Clone, Copy)]
pub struct CacheSlot {
    /// Cached target function (VM index). Meaningful for `SLOT_PAP`.
    func: u32,
    /// Cached target arity.
    arity: u16,
    /// Cached target register-file size (what the frame resize needs).
    n_regs: u16,
    /// `SLOT_COLD` until the first successful execution.
    state: u8,
}

impl Default for CacheSlot {
    fn default() -> CacheSlot {
        CacheSlot {
            func: 0,
            arity: 0,
            n_regs: 0,
            state: SLOT_COLD,
        }
    }
}

/// Structured classification of a [`VmError`] — what killed the run, as a
/// machine-readable kind alongside the human-readable message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VmErrorKind {
    /// A genuine runtime fault (type confusion, bad arity, missing entry…).
    Trap,
    /// The step budget ([`JobLimits::steps`] or the `max_steps` argument)
    /// was exhausted.
    StepBudget,
    /// The live-heap-byte cap ([`JobLimits::heap_bytes`]) was exceeded.
    HeapBudget,
    /// The frame-depth cap ([`JobLimits::max_depth`]) was exceeded.
    DepthBudget,
    /// The wall-clock deadline ([`JobLimits::deadline`]) passed.
    Deadline,
    /// A [`CancelToken`] was flipped (or a planned cancellation fired).
    Cancelled,
}

impl VmErrorKind {
    /// Whether this kind is a resource-governance abort (budget, deadline or
    /// cancellation) rather than a program fault — the distinction the CLI
    /// maps to exit code 3.
    pub fn is_resource(self) -> bool {
        !matches!(self, VmErrorKind::Trap)
    }

    /// Stable kebab-case name (used in JSON reports).
    pub fn code(self) -> &'static str {
        match self {
            VmErrorKind::Trap => "trap",
            VmErrorKind::StepBudget => "step-budget",
            VmErrorKind::HeapBudget => "heap-budget",
            VmErrorKind::DepthBudget => "depth-budget",
            VmErrorKind::Deadline => "deadline",
            VmErrorKind::Cancelled => "cancelled",
        }
    }
}

/// A runtime failure (trap, resource budgets, type confusion).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VmError {
    /// Description.
    pub message: String,
    /// Structured failure class.
    pub kind: VmErrorKind,
}

impl fmt::Display for VmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "vm error: {}", self.message)
    }
}

impl std::error::Error for VmError {}

fn err(message: impl Into<String>) -> VmError {
    VmError {
        message: message.into(),
        kind: VmErrorKind::Trap,
    }
}

impl VmError {
    fn of_kind(kind: VmErrorKind, message: impl Into<String>) -> VmError {
        VmError {
            message: message.into(),
            kind,
        }
    }

    fn step_budget() -> VmError {
        VmError::of_kind(VmErrorKind::StepBudget, lssa_rt::STEP_BUDGET_MSG)
    }

    fn heap_budget() -> VmError {
        VmError::of_kind(VmErrorKind::HeapBudget, "heap budget exhausted")
    }

    fn depth_budget() -> VmError {
        VmError::of_kind(VmErrorKind::DepthBudget, "frame depth budget exhausted")
    }

    fn deadline() -> VmError {
        VmError::of_kind(VmErrorKind::Deadline, "deadline exceeded")
    }

    fn cancelled() -> VmError {
        VmError::of_kind(VmErrorKind::Cancelled, "job cancelled")
    }
}

/// Execution statistics (the compact summary; see [`VmStatistics`] for the
/// per-opcode-class breakdown).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Instructions executed.
    pub instructions: u64,
    /// Function calls made (including tail calls).
    pub calls: u64,
    /// Maximum frame-stack depth.
    pub max_stack: u64,
    /// Heap statistics at the end of the run.
    pub heap: HeapStats,
}

/// Per-opcode-class execution statistics — the VM-side mirror of the
/// compile-side `PassStatistics`: what ran, how often, what it allocated,
/// and how long the whole run took.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VmStatistics {
    /// Instructions executed, per [`OpClass`] (indexed by discriminant).
    pub executed: [u64; OpClass::COUNT],
    /// Heap objects allocated while executing each class.
    pub class_allocs: [u64; OpClass::COUNT],
    /// Total instructions executed.
    pub instructions: u64,
    /// Function calls made (including tail calls).
    pub calls: u64,
    /// Maximum frame-stack depth (the frame pool's high-water mark).
    pub max_depth: u64,
    /// Frames freshly allocated in the pool (not reused).
    pub frame_allocs: u64,
    /// Frames recycled through the free list.
    pub frame_reuses: u64,
    /// Tail calls that reused the current register file in place.
    pub tail_frame_reuses: u64,
    /// Superinstruction cells in the decoded stream (static count; 0 when
    /// decoded with `--no-fuse`).
    pub fused_cells: u64,
    /// Inline-cache monomorphic hits (call sites that skipped the target
    /// lookup / closure unpack; 0 with `--no-inline-cache`).
    pub cache_hits: u64,
    /// Inline-cache misses (cold or megamorphic sites that took the full
    /// validation path).
    pub cache_misses: u64,
    /// Widest register file wired to any frame (post-renumbering width).
    pub max_frame_width: u64,
    /// Bytes retained by the frame pool's register files at the end of the
    /// run (capacity, not length — what the pool actually holds onto).
    pub frame_pool_bytes: u64,
    /// Register-file words eliminated by decode-time renumbering (static
    /// count over the whole program; 0 with `--no-renumber`).
    pub regs_saved: u64,
    /// Wall time spent executing.
    pub duration: Duration,
    /// Heap statistics at the end of the run.
    pub heap: HeapStats,
}

impl VmStatistics {
    /// Executed count for one class.
    pub fn executed_of(&self, class: OpClass) -> u64 {
        self.executed[class as usize]
    }

    /// Heap allocations attributed to one class.
    pub fn allocs_of(&self, class: OpClass) -> u64 {
        self.class_allocs[class as usize]
    }

    /// Executed cells that were fused superinstructions.
    pub fn fused_executed(&self) -> u64 {
        OpClass::ALL
            .iter()
            .filter(|c| c.is_fused())
            .map(|&c| self.executed_of(c))
            .sum()
    }

    /// Share of executed cells that were fused superinstructions (0..=1).
    pub fn fused_share(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.fused_executed() as f64 / self.instructions as f64
        }
    }

    /// Folds statistics from an independent run into this record (counts
    /// sum, depths take the maximum) — used to aggregate run-side costs
    /// across a whole workload suite, like `PassStatistics::absorb_parallel`
    /// on the compile side.
    pub fn merge(&mut self, other: &VmStatistics) {
        for i in 0..OpClass::COUNT {
            self.executed[i] += other.executed[i];
            self.class_allocs[i] += other.class_allocs[i];
        }
        self.instructions += other.instructions;
        self.calls += other.calls;
        self.max_depth = self.max_depth.max(other.max_depth);
        self.frame_allocs += other.frame_allocs;
        self.frame_reuses += other.frame_reuses;
        self.tail_frame_reuses += other.tail_frame_reuses;
        self.fused_cells += other.fused_cells;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.max_frame_width = self.max_frame_width.max(other.max_frame_width);
        self.frame_pool_bytes = self.frame_pool_bytes.max(other.frame_pool_bytes);
        self.regs_saved += other.regs_saved;
        self.duration += other.duration;
        self.heap.absorb(&other.heap);
    }

    /// Inline-cache hit rate over all probed call sites (0..=1).
    pub fn cache_hit_rate(&self) -> f64 {
        let probes = self.cache_hits + self.cache_misses;
        if probes == 0 {
            0.0
        } else {
            self.cache_hits as f64 / probes as f64
        }
    }

    /// Renders the per-opcode-class table (the payload behind
    /// `lssa run --vm-stats`), in the same fixed-width style as the
    /// compile-side pass tables.
    pub fn render_table(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "vm: {} instructions, {} calls, max depth {}, {:.3}ms",
            self.instructions,
            self.calls,
            self.max_depth,
            self.duration.as_secs_f64() * 1e3,
        );
        let _ = writeln!(
            out,
            "  {:<21} {:>14} {:>12} {:>7}",
            "opcode class", "executed", "heap-allocs", "share"
        );
        for class in OpClass::ALL {
            let executed = self.executed_of(class);
            if executed == 0 {
                continue;
            }
            let share = if self.instructions == 0 {
                0.0
            } else {
                executed as f64 * 100.0 / self.instructions as f64
            };
            let _ = writeln!(
                out,
                "  {:<21} {:>14} {:>12} {:>6.1}%",
                class.name(),
                executed,
                self.allocs_of(class),
                share,
            );
        }
        let _ = writeln!(
            out,
            "  frames: {} allocated, {} reused via free list, {} tail-call in-place reuses",
            self.frame_allocs, self.frame_reuses, self.tail_frame_reuses,
        );
        let _ = writeln!(
            out,
            "  frame pool: {} bytes retained, widest frame {} regs, {} register slots saved by renumbering",
            self.frame_pool_bytes, self.max_frame_width, self.regs_saved,
        );
        let _ = writeln!(
            out,
            "  caches: {} monomorphic hits, {} misses ({:.1}% hit rate)",
            self.cache_hits,
            self.cache_misses,
            self.cache_hit_rate() * 100.0,
        );
        let _ = writeln!(
            out,
            "  fused: {} superinstruction cells decoded, {:.1}% of executed cells were fused",
            self.fused_cells,
            self.fused_share() * 100.0,
        );
        let _ = writeln!(
            out,
            "  heap: {} allocs ({} ctor, {} closure, {} array, {} str, {} bigint), {} frees, peak {} live",
            self.heap.allocs,
            self.heap.ctor_allocs,
            self.heap.closure_allocs,
            self.heap.array_allocs,
            self.heap.str_allocs,
            self.heap.bigint_allocs,
            self.heap.frees,
            self.heap.peak_live,
        );
        out
    }
}

/// Result of running a program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunOutcome {
    /// Stable rendering of the produced value.
    pub rendered: String,
    /// Compact statistics.
    pub stats: ExecStats,
    /// Per-opcode-class statistics.
    pub vm_stats: VmStatistics,
}

/// One pooled frame. The register file and the over-application buffer are
/// retained across reuses, so a recycled frame allocates only when it is
/// wired to a function *wider* than any it has held before — steady-state
/// loops (same functions over and over) make zero heap allocations per
/// iteration, under either dispatch mode. Register renumbering
/// ([`crate::decode::DecodeOptions::renumber`]) shrinks those widths to the
/// referenced-register count, so the pool both grows less often and
/// retains less.
#[derive(Debug, Default)]
struct Frame {
    func: u32,
    pc: u32,
    /// Register in the *caller's* frame receiving the return value.
    ret_dst: Reg,
    regs: Vec<u64>,
    /// Arguments still to be applied to the returned closure
    /// (over-saturated `papextend`).
    after_ret: Vec<ObjRef>,
}

/// Wires a (possibly recycled) frame's register file: arguments copied
/// from `scratch`, the remaining registers zeroed. Growth is *exact*,
/// never amortized — a frame reallocates only when wired wider than ever
/// before (a cold event), so the pool's retained footprint
/// ([`VmStatistics::frame_pool_bytes`]) equals each frame's widest-ever
/// wiring. `Vec`'s doubling policy would instead let a recycled frame
/// jump to twice a stale capacity, making a *narrower* renumbered
/// program retain a *larger* pool than the un-renumbered one.
/// Scalar-scalar fast path for the hottest two-argument builtins: when
/// both operands are scalars and the result provably fits a scalar, the
/// whole builtin collapses to register arithmetic — no argument staging,
/// no `Nat`/`Int` round trip through the runtime. Returns the result
/// bits, or `None` when the generic [`Builtin::call`] must run (boxed
/// operands, possible overflow into a bignum, or a builtin without a
/// fast shape). On `Some` the caller still owes the runtime's
/// consume-both convention: one `dec` per operand (statistics-only on
/// scalars), keeping the heap counters bit-identical to the generic
/// path.
#[inline]
fn builtin_fast2(builtin: Builtin, a: u64, b: u64) -> Option<u64> {
    if a & b & 1 != 1 {
        return None;
    }
    let scalar = |v: u64| (v << 1) | 1;
    // Nat builtins: payloads are non-negative by typing; bail to the
    // generic path (and its diagnostics) if one is not.
    let nat_args = || ((a as i64) >= 0 && (b as i64) >= 0).then_some((a >> 1, b >> 1));
    // Int builtins: payloads are arithmetic (sign-extending) shifts.
    let (ia, ib) = ((a as i64) >> 1, (b as i64) >> 1);
    let int_fits = |v: i64| (MIN_SMALL_INT..=MAX_SMALL_INT).contains(&v);
    match builtin {
        // Both operands < 2^62, so the u64 sum cannot wrap.
        Builtin::NatAdd => nat_args().and_then(|(x, y)| {
            let s = x + y;
            (s <= MAX_SMALL_NAT).then(|| scalar(s))
        }),
        Builtin::NatSub => nat_args().map(|(x, y)| scalar(x.saturating_sub(y))),
        Builtin::NatMul => nat_args()
            .and_then(|(x, y)| x.checked_mul(y).filter(|&s| s <= MAX_SMALL_NAT).map(scalar)),
        Builtin::NatDiv => nat_args().map(|(x, y)| scalar(x.checked_div(y).unwrap_or(0))),
        Builtin::NatMod => nat_args().map(|(x, y)| scalar(x.checked_rem(y).unwrap_or(x))),
        Builtin::NatDecEq => nat_args().map(|(x, y)| scalar(u64::from(x == y))),
        Builtin::NatDecLt => nat_args().map(|(x, y)| scalar(u64::from(x < y))),
        Builtin::NatDecLe => nat_args().map(|(x, y)| scalar(u64::from(x <= y))),
        Builtin::IntAdd => ia
            .checked_add(ib)
            .filter(|&v| int_fits(v))
            .map(|v| scalar(v as u64)),
        Builtin::IntSub => ia
            .checked_sub(ib)
            .filter(|&v| int_fits(v))
            .map(|v| scalar(v as u64)),
        Builtin::IntMul => ia
            .checked_mul(ib)
            .filter(|&v| int_fits(v))
            .map(|v| scalar(v as u64)),
        // Truncated division with `x / 0 = 0`; small-int payloads can't
        // overflow i64, so `checked_div` is `None` only on a zero divisor.
        // One non-fitting case remains: MIN_SMALL_INT / -1 lands one past
        // MAX_SMALL_INT.
        Builtin::IntDiv => Some(ia.checked_div(ib).unwrap_or(0))
            .filter(|&v| int_fits(v))
            .map(|v| scalar(v as u64)),
        Builtin::IntMod => Some(scalar(ia.checked_rem(ib).unwrap_or(ia) as u64)),
        Builtin::IntDecEq => Some(scalar(u64::from(ia == ib))),
        Builtin::IntDecLt => Some(scalar(u64::from(ia < ib))),
        Builtin::IntDecLe => Some(scalar(u64::from(ia <= ib))),
        _ => None,
    }
}

#[inline]
fn wire_regs(regs: &mut Vec<u64>, scratch: &[u64], n_regs: u16) {
    regs.clear();
    let want = (n_regs as usize).max(scratch.len());
    if regs.capacity() < want {
        regs.reserve_exact(want);
    }
    regs.extend_from_slice(scratch);
    regs.resize(n_regs as usize, 0);
}

/// The virtual machine: executes a [`DecodedProgram`] over a pooled frame
/// stack.
#[derive(Debug)]
pub struct Vm<'p> {
    program: &'p DecodedProgram,
    /// The runtime heap (public for tests).
    pub heap: Heap,
    globals: Vec<ObjRef>,
    max_steps: u64,
    steps: u64,
    calls: u64,
    max_depth: u64,
    executed: [u64; OpClass::COUNT],
    class_allocs: [u64; OpClass::COUNT],
    frame_allocs: u64,
    frame_reuses: u64,
    tail_frame_reuses: u64,
    cache_hits: u64,
    cache_misses: u64,
    max_frame_width: u64,
    exec_time: Duration,
    /// Frame pool; `stack` holds indices into it, `free` the recyclable ones.
    pool: Vec<Frame>,
    free: Vec<u32>,
    stack: Vec<u32>,
    /// Argument staging buffer, reused across every call and tail call.
    scratch: Vec<u64>,
    /// Object-argument staging buffer for builtin calls, reused likewise.
    scratch_objs: Vec<ObjRef>,
    /// Inline-cache pool, one [`CacheSlot`] per cached call site
    /// (program-wide indexing via [`DecodedFn::cache_base`]).
    caches: Vec<CacheSlot>,
    opts: ExecOptions,
    /// Frame-depth cap from [`JobLimits::max_depth`].
    depth_limit: u64,
    /// Absolute wall-clock deadline, armed at each [`Vm::call`].
    deadline: Option<Instant>,
    /// Cooperative cancellation flag, polled at budget checkpoints.
    cancel: Option<CancelToken>,
    /// Injected fault: panic at the checkpoint after this step count.
    panic_at: Option<u64>,
    /// Injected fault: cancel at the checkpoint after this step count.
    cancel_at: Option<u64>,
    /// Whether any checkpoint-polled feature (deadline, cancellation, heap
    /// budget, planned fault) is armed. When false, `stop_at == max_steps`
    /// and the hot loops pay nothing beyond the pre-existing step compare.
    poll: bool,
    /// The step count at which the interpreter loops leave the hot path for
    /// [`Vm::checkpoint`]: `max_steps` itself, or the next poll boundary.
    stop_at: u64,
}

impl<'p> Vm<'p> {
    /// Creates a VM for a decoded `program` with a step budget, under the
    /// default execution options (threaded dispatch, inline caches on).
    pub fn new(program: &'p DecodedProgram, max_steps: u64) -> Vm<'p> {
        Vm::with_options(program, max_steps, ExecOptions::default())
    }

    /// Creates a VM with explicit [`ExecOptions`].
    pub fn with_options(program: &'p DecodedProgram, max_steps: u64, opts: ExecOptions) -> Vm<'p> {
        let mut heap = Heap::new();
        if opts.limits.heap_bytes != u64::MAX {
            heap.set_byte_limit(Some(opts.limits.heap_bytes));
        }
        heap.set_trip_alloc(opts.fault.trip_alloc);
        let max_steps = max_steps
            .min(opts.limits.steps)
            .min(opts.fault.exhaust_at.unwrap_or(u64::MAX));
        let mut vm = Vm {
            program,
            heap,
            globals: vec![ObjRef::scalar(0); program.globals.len()],
            max_steps,
            steps: 0,
            calls: 0,
            max_depth: 0,
            executed: [0; OpClass::COUNT],
            class_allocs: [0; OpClass::COUNT],
            frame_allocs: 0,
            frame_reuses: 0,
            tail_frame_reuses: 0,
            cache_hits: 0,
            cache_misses: 0,
            max_frame_width: 0,
            exec_time: Duration::ZERO,
            pool: Vec::new(),
            free: Vec::new(),
            stack: Vec::new(),
            scratch: Vec::new(),
            scratch_objs: Vec::new(),
            caches: vec![CacheSlot::default(); program.cache_slots as usize],
            opts,
            depth_limit: opts.limits.max_depth,
            deadline: None,
            cancel: None,
            panic_at: opts.fault.panic_at,
            cancel_at: opts.fault.cancel_at,
            poll: false,
            stop_at: 0,
        };
        vm.refresh_schedule();
        vm
    }

    /// Installs a cooperative cancellation token (see [`CancelToken`]).
    pub fn set_cancel_token(&mut self, token: CancelToken) {
        self.cancel = Some(token);
        self.refresh_schedule();
    }

    /// Removes any installed cancellation token.
    pub fn clear_cancel_token(&mut self) {
        self.cancel = None;
        self.refresh_schedule();
    }

    /// Replaces the absolute step budget — e.g. to grant an aborted VM a
    /// fresh allowance before a reuse probe.
    pub fn set_step_budget(&mut self, max_steps: u64) {
        self.max_steps = max_steps;
        self.refresh_schedule();
    }

    /// Disarms any injected [`FaultPlan`] triggers and clears a tripped heap
    /// budget, so a post-abort probe run observes a fault-free VM.
    pub fn clear_fault(&mut self) {
        self.panic_at = None;
        self.cancel_at = None;
        self.heap.set_trip_alloc(None);
        self.heap.clear_budget_trip();
        self.refresh_schedule();
    }

    /// Recycles every residual frame, resets the globals, and force-frees
    /// all live heap objects — the drop-all cleanup after an aborted run
    /// (error or caught panic), after which the VM (frame pool, caches and
    /// the shared decoded program) is reusable for the next job. Returns the
    /// number of heap objects reclaimed.
    pub fn purge(&mut self) -> u64 {
        while let Some(fi) = self.stack.pop() {
            self.pool[fi as usize].after_ret.clear();
            self.free.push(fi);
        }
        for g in &mut self.globals {
            *g = ObjRef::scalar(0);
        }
        self.heap.free_all()
    }

    /// Recomputes `poll` and `stop_at` after any limit/fault/token change.
    fn refresh_schedule(&mut self) {
        self.poll = self.deadline.is_some()
            || self.cancel.is_some()
            || self.panic_at.is_some()
            || self.cancel_at.is_some()
            || self.heap.has_byte_budget();
        self.stop_at = self.next_stop();
    }

    /// The next step count at which the loops must checkpoint: `max_steps`
    /// when nothing is polled, otherwise at most [`POLL_INTERVAL`] ahead and
    /// never past a planned fault trigger.
    fn next_stop(&self) -> u64 {
        if !self.poll {
            return self.max_steps;
        }
        let mut stop = self.max_steps.min(self.steps.saturating_add(POLL_INTERVAL));
        for at in [self.panic_at, self.cancel_at].into_iter().flatten() {
            if at > self.steps {
                stop = stop.min(at);
            }
        }
        stop
    }

    /// The slow half of the budget check, entered when `steps` reaches
    /// `stop_at`: decides between a structured abort, an injected fault and
    /// simply scheduling the next checkpoint. Consumes no steps and mutates
    /// no statistics, so dispatch modes stay observably identical.
    #[cold]
    #[inline(never)]
    fn checkpoint(&mut self) -> Result<(), VmError> {
        if self.steps >= self.max_steps {
            return Err(VmError::step_budget());
        }
        if self.panic_at.is_some_and(|at| self.steps >= at) {
            panic!("fault injection: planted panic at step {}", self.steps);
        }
        if self.cancel_at.is_some_and(|at| self.steps >= at)
            || self.cancel.as_ref().is_some_and(CancelToken::is_cancelled)
        {
            return Err(VmError::cancelled());
        }
        if self.heap.over_budget() {
            return Err(VmError::heap_budget());
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                return Err(VmError::deadline());
            }
        }
        self.stop_at = self.next_stop();
        debug_assert!(self.stop_at > self.steps);
        Ok(())
    }

    /// Runs `entry` (zero-argument) to completion and returns the result.
    ///
    /// # Errors
    ///
    /// Returns an error on traps, step exhaustion, or a missing entry point.
    pub fn run(&mut self, entry: &str) -> Result<ObjRef, VmError> {
        let idx = self
            .program
            .fn_index(entry)
            .ok_or_else(|| err(format!("no function @{entry}")))?;
        self.call(idx, Vec::new())
    }

    /// Calls function `idx` with owned arguments.
    ///
    /// # Errors
    ///
    /// See [`Vm::run`].
    pub fn call(&mut self, idx: usize, args: Vec<ObjRef>) -> Result<ObjRef, VmError> {
        if let Some(budget) = self.opts.limits.deadline {
            self.deadline = Some(Instant::now() + budget);
            self.refresh_schedule();
        }
        let start = Instant::now();
        let result = match self.opts.dispatch {
            DispatchMode::Match => self.run_match(idx, args),
            DispatchMode::Threaded => self.run_threaded(idx, args),
        };
        self.exec_time += start.elapsed();
        result
    }

    /// Returns any residue of a previous errored run to the free list,
    /// then stages and pushes the entry frame (shared run prologue).
    fn enter(&mut self, idx: usize, args: &[ObjRef]) -> Result<(), VmError> {
        while let Some(fi) = self.stack.pop() {
            self.pool[fi as usize].after_ret.clear();
            self.free.push(fi);
        }
        self.stage_objs(args);
        let fi = self.alloc_frame(idx, Reg(0))?;
        self.stack.push(fi);
        Ok(())
    }

    /// The program-wide inline-cache slot of a call site, or `None` when
    /// the site has no slot or caching is disabled.
    #[inline]
    fn cache_slot(opts: ExecOptions, f: &DecodedFn, cache: u16) -> Option<usize> {
        if opts.inline_cache && cache != NO_CACHE {
            Some(f.cache_base as usize + cache as usize)
        } else {
            None
        }
    }

    /// The single big `match` interpreter loop ([`DispatchMode::Match`]).
    fn run_match(&mut self, idx: usize, args: Vec<ObjRef>) -> Result<ObjRef, VmError> {
        self.enter(idx, &args)?;
        let prog = self.program;
        loop {
            self.max_depth = self.max_depth.max(self.stack.len() as u64);
            if self.steps >= self.stop_at {
                self.checkpoint()?;
            }
            self.steps += 1;
            let fi = *self.stack.last().expect("empty stack") as usize;
            let frame = &mut self.pool[fi];
            let f = &prog.fns[frame.func as usize];
            let pc = frame.pc as usize;
            let instr = *f
                .code
                .get(pc)
                .ok_or_else(|| err(format!("pc out of range in @{}", f.name)))?;
            frame.pc = pc as u32 + 1;
            self.executed[instr.class() as usize] += 1;
            match instr {
                DecodedInstr::ConstInt { dst, v } => frame.regs[dst.0 as usize] = v as u64,
                DecodedInstr::LpInt { dst, v } => {
                    frame.regs[dst.0 as usize] = ObjRef::scalar(v).to_bits();
                }
                DecodedInstr::LpBig { dst, idx } => {
                    let a0 = self.heap.alloc_count();
                    let n = prog.big_pool[idx as usize].clone();
                    frame.regs[dst.0 as usize] = self.heap.mk_nat(n).to_bits();
                    self.class_allocs[OpClass::Alloc as usize] += self.heap.alloc_count() - a0;
                }
                DecodedInstr::LpStr { dst, idx } => {
                    let s = prog.str_pool[idx as usize].clone();
                    frame.regs[dst.0 as usize] = self.heap.alloc_str(s).to_bits();
                    self.class_allocs[OpClass::Alloc as usize] += 1;
                }
                DecodedInstr::Construct { dst, tag, args } => {
                    let fields: Vec<ObjRef> = f
                        .arg_regs(args)
                        .iter()
                        .map(|&r| ObjRef::from_bits(frame.regs[r.0 as usize]))
                        .collect();
                    frame.regs[dst.0 as usize] = self.heap.alloc_ctor(tag, fields).to_bits();
                    self.class_allocs[OpClass::Alloc as usize] += 1;
                }
                DecodedInstr::GetLabel { dst, src } => {
                    let o = ObjRef::from_bits(frame.regs[src.0 as usize]);
                    frame.regs[dst.0 as usize] = self.heap.ctor_tag(o) as u64;
                }
                DecodedInstr::Project { dst, src, idx } => {
                    let o = ObjRef::from_bits(frame.regs[src.0 as usize]);
                    frame.regs[dst.0 as usize] = self.heap.ctor_field(o, idx as usize).to_bits();
                }
                DecodedInstr::Pap {
                    dst,
                    func,
                    arity,
                    args_off,
                    args_len,
                } => {
                    let vals: Vec<ObjRef> = f
                        .arg_regs(crate::decode::ArgSlice {
                            off: args_off,
                            len: args_len,
                        })
                        .iter()
                        .map(|&r| ObjRef::from_bits(frame.regs[r.0 as usize]))
                        .collect();
                    let a0 = self.heap.alloc_count();
                    let outcome = pap_new(&mut self.heap, FuncId(func), arity, vals);
                    self.class_allocs[OpClass::Closure as usize] += self.heap.alloc_count() - a0;
                    self.apply(dst, outcome)?;
                }
                DecodedInstr::PapExtend {
                    dst,
                    closure,
                    args,
                    cache,
                } => {
                    let c = ObjRef::from_bits(frame.regs[closure.0 as usize]);
                    // One unpack serves the type check, the cache probe and
                    // the fill: an *unapplied* closure is the cacheable shape.
                    let probe = match *self.heap.data(c) {
                        ObjData::Closure {
                            func,
                            arity,
                            args: ref applied,
                        } => {
                            if applied.is_empty() {
                                Some((func, arity))
                            } else {
                                None
                            }
                        }
                        _ => return Err(err("papextend of a non-closure value")),
                    };
                    let slot = Self::cache_slot(self.opts, f, cache);
                    if let (Some(g), Some((func, arity))) = (slot, probe) {
                        let s = self.caches[g];
                        if s.state == SLOT_PAP
                            && s.func == func.0
                            && s.arity == arity
                            && arity == args.len
                        {
                            // Monomorphic hit at exact saturation: the
                            // semantics collapse to "release the closure,
                            // call the target" — skip the argument `Vec`
                            // build and the runtime's unpack/re-check.
                            self.cache_hits += 1;
                            let scratch = &mut self.scratch;
                            scratch.clear();
                            scratch
                                .extend(f.arg_regs(args).iter().map(|&r| frame.regs[r.0 as usize]));
                            self.heap.dec(c);
                            let nfi = self.push_frame_fast(s.func, s.n_regs, dst)?;
                            self.stack.push(nfi);
                            continue;
                        }
                    }
                    if let Some(g) = slot {
                        self.cache_misses += 1;
                        // Remember the shape (validated against the target)
                        // before `pap_extend` consumes the closure.
                        if let Some((func, arity)) = probe {
                            if arity == args.len {
                                if let Some(t) = self.program.fns.get(func.0 as usize) {
                                    if t.arity == arity {
                                        self.caches[g] = CacheSlot {
                                            func: func.0,
                                            arity,
                                            n_regs: t.n_regs,
                                            state: SLOT_PAP,
                                        };
                                    }
                                }
                            }
                        }
                    }
                    let vals: Vec<ObjRef> = f
                        .arg_regs(args)
                        .iter()
                        .map(|&r| ObjRef::from_bits(frame.regs[r.0 as usize]))
                        .collect();
                    let a0 = self.heap.alloc_count();
                    let outcome = pap_extend(&mut self.heap, c, vals);
                    self.class_allocs[OpClass::Closure as usize] += self.heap.alloc_count() - a0;
                    self.apply(dst, outcome)?;
                }
                DecodedInstr::Inc { src } => {
                    let o = ObjRef::from_bits(frame.regs[src.0 as usize]);
                    self.heap.inc(o);
                }
                DecodedInstr::Dec { src } => {
                    let o = ObjRef::from_bits(frame.regs[src.0 as usize]);
                    self.heap.dec(o);
                }
                DecodedInstr::Call {
                    dst,
                    func,
                    args_off,
                    args_len,
                    cache,
                } => {
                    let scratch = &mut self.scratch;
                    scratch.clear();
                    scratch.extend(
                        f.arg_regs(ArgSlice {
                            off: args_off,
                            len: args_len,
                        })
                        .iter()
                        .map(|&r| frame.regs[r.0 as usize]),
                    );
                    // The target index and argument count are static, so
                    // one successful validation proves the site forever.
                    let slot = Self::cache_slot(self.opts, f, cache);
                    let nfi = match slot {
                        Some(g) if self.caches[g].state == SLOT_CALL => {
                            self.cache_hits += 1;
                            let n_regs = self.caches[g].n_regs;
                            self.push_frame_fast(func, n_regs, dst)?
                        }
                        _ => {
                            if let Some(g) = slot {
                                self.cache_misses += 1;
                                let nfi = self.alloc_frame(func as usize, dst)?;
                                let t = &self.program.fns[func as usize];
                                self.caches[g] = CacheSlot {
                                    func,
                                    arity: t.arity,
                                    n_regs: t.n_regs,
                                    state: SLOT_CALL,
                                };
                                nfi
                            } else {
                                self.alloc_frame(func as usize, dst)?
                            }
                        }
                    };
                    self.stack.push(nfi);
                }
                DecodedInstr::CallBuiltin {
                    dst,
                    builtin,
                    args,
                    mask,
                } => {
                    // Builtins take a slice, so the arguments stage through
                    // a reused buffer — no allocation per call.
                    let vals = &mut self.scratch_objs;
                    vals.clear();
                    vals.extend(
                        f.arg_regs(args)
                            .iter()
                            .map(|&r| ObjRef::from_bits(frame.regs[r.0 as usize])),
                    );
                    // Folded retains (rc-opt borrow mask) come first, as
                    // the elided `lp.inc`s would have.
                    if mask != 0 {
                        for (i, &v) in self.scratch_objs.iter().enumerate() {
                            if mask & (1 << i) != 0 {
                                self.heap.inc(v);
                            }
                        }
                    }
                    self.calls += 1;
                    let a0 = self.heap.alloc_count();
                    let out = builtin.call(&mut self.heap, &self.scratch_objs);
                    self.class_allocs[OpClass::CallBuiltin as usize] +=
                        self.heap.alloc_count() - a0;
                    self.pool[fi].regs[dst.0 as usize] = out.to_bits();
                }
                DecodedInstr::TailCall {
                    func,
                    args_off,
                    args_len,
                    cache,
                } => {
                    let args = ArgSlice {
                        off: args_off,
                        len: args_len,
                    };
                    let slot = Self::cache_slot(self.opts, f, cache);
                    let n_regs = match slot {
                        Some(g) if self.caches[g].state == SLOT_CALL => {
                            self.cache_hits += 1;
                            self.caches[g].n_regs
                        }
                        _ => {
                            if slot.is_some() {
                                self.cache_misses += 1;
                            }
                            let target = prog
                                .fns
                                .get(func as usize)
                                .ok_or_else(|| err(format!("bad function index {func}")))?;
                            if args.len as usize != target.arity as usize {
                                return Err(err(format!(
                                    "@{} called with {} args (arity {})",
                                    target.name, args.len, target.arity
                                )));
                            }
                            if let Some(g) = slot {
                                self.caches[g] = CacheSlot {
                                    func,
                                    arity: target.arity,
                                    n_regs: target.n_regs,
                                    state: SLOT_CALL,
                                };
                            }
                            target.n_regs
                        }
                    };
                    self.calls += 1;
                    self.tail_frame_reuses += 1;
                    // Copy the outgoing arguments aside, then reuse the
                    // register file in place: constant stack space and,
                    // once the buffers are warm, zero heap allocation.
                    let scratch = &mut self.scratch;
                    scratch.clear();
                    scratch.extend(f.arg_regs(args).iter().map(|&r| frame.regs[r.0 as usize]));
                    wire_regs(&mut frame.regs, scratch, n_regs);
                    frame.func = func;
                    frame.pc = 0;
                    self.max_frame_width = self.max_frame_width.max(u64::from(n_regs));
                    // `ret_dst` and `after_ret` carry over unchanged.
                }
                DecodedInstr::Ret { src } => {
                    let bits = frame.regs[src.0 as usize];
                    if let Some(value) = self.do_ret(fi, bits)? {
                        return Ok(value);
                    }
                }
                DecodedInstr::Jump { target } => frame.pc = target,
                DecodedInstr::Branch {
                    cond,
                    then_t,
                    else_t,
                } => {
                    frame.pc = if frame.regs[cond.0 as usize] != 0 {
                        then_t
                    } else {
                        else_t
                    };
                }
                DecodedInstr::Switch {
                    idx,
                    cases,
                    default,
                } => {
                    let v = frame.regs[idx.0 as usize] as i64;
                    frame.pc = f.cases[cases.range()]
                        .iter()
                        .find(|&&(c, _)| c == v)
                        .map(|&(_, t)| t)
                        .unwrap_or(default);
                }
                DecodedInstr::Bin { op, dst, a, b } => {
                    let x = frame.regs[a.0 as usize] as i64;
                    let y = frame.regs[b.0 as usize] as i64;
                    let v = op
                        .eval(x, y)
                        .ok_or_else(|| err("integer division by zero"))?;
                    frame.regs[dst.0 as usize] = v as u64;
                }
                DecodedInstr::Cmp { pred, dst, a, b } => {
                    let x = frame.regs[a.0 as usize] as i64;
                    let y = frame.regs[b.0 as usize] as i64;
                    frame.regs[dst.0 as usize] = pred.eval(x, y) as u64;
                }
                DecodedInstr::Select { dst, c, a, b } => {
                    let v = if frame.regs[c.0 as usize] != 0 {
                        frame.regs[a.0 as usize]
                    } else {
                        frame.regs[b.0 as usize]
                    };
                    frame.regs[dst.0 as usize] = v;
                }
                DecodedInstr::Mask { dst, src, mask } => {
                    frame.regs[dst.0 as usize] = frame.regs[src.0 as usize] & mask;
                }
                DecodedInstr::Move { dst, src } => {
                    frame.regs[dst.0 as usize] = frame.regs[src.0 as usize];
                }
                DecodedInstr::GlobalLoad { dst, idx } => {
                    frame.regs[dst.0 as usize] = self.globals[idx as usize].to_bits();
                }
                DecodedInstr::GlobalStore { idx, src } => {
                    self.globals[idx as usize] = ObjRef::from_bits(frame.regs[src.0 as usize]);
                }
                DecodedInstr::Trap => {
                    return Err(err(format!("reached unreachable code in @{}", f.name)))
                }
                DecodedInstr::CmpBr {
                    pred,
                    a,
                    b,
                    then_t,
                    else_t,
                } => {
                    let x = frame.regs[a.0 as usize] as i64;
                    let y = frame.regs[b.0 as usize] as i64;
                    frame.pc = if pred.eval(x, y) { then_t } else { else_t };
                }
                DecodedInstr::ConstCmpBr {
                    pred,
                    a,
                    imm,
                    then_t,
                    else_t,
                } => {
                    let x = frame.regs[a.0 as usize] as i64;
                    frame.pc = if pred.eval(x, i64::from(imm)) {
                        then_t
                    } else {
                        else_t
                    };
                }
                DecodedInstr::ConstBin {
                    op,
                    imm_rhs,
                    dst,
                    src,
                    imm,
                } => {
                    let s = frame.regs[src.0 as usize] as i64;
                    let (x, y) = if imm_rhs { (s, imm) } else { (imm, s) };
                    let v = op
                        .eval(x, y)
                        .ok_or_else(|| err("integer division by zero"))?;
                    frame.regs[dst.0 as usize] = v as u64;
                }
                DecodedInstr::BinRet { op, a, b } => {
                    let x = frame.regs[a.0 as usize] as i64;
                    let y = frame.regs[b.0 as usize] as i64;
                    let v = op
                        .eval(x, y)
                        .ok_or_else(|| err("integer division by zero"))?;
                    if let Some(value) = self.do_ret(fi, v as u64)? {
                        return Ok(value);
                    }
                }
                DecodedInstr::MovRet { src } => {
                    let bits = frame.regs[src.0 as usize];
                    if let Some(value) = self.do_ret(fi, bits)? {
                        return Ok(value);
                    }
                }
                DecodedInstr::ConstRet { v } => {
                    if let Some(value) = self.do_ret(fi, ObjRef::scalar(v).to_bits())? {
                        return Ok(value);
                    }
                }
                DecodedInstr::ProjInc { dst, src, idx } => {
                    let o = ObjRef::from_bits(frame.regs[src.0 as usize]);
                    let field = self.heap.ctor_field(o, idx as usize);
                    self.heap.inc(field);
                    frame.regs[dst.0 as usize] = field.to_bits();
                }
                DecodedInstr::Dec2 { a, b } => {
                    let oa = ObjRef::from_bits(frame.regs[a.0 as usize]);
                    self.heap.dec(oa);
                    let ob = ObjRef::from_bits(frame.regs[b.0 as usize]);
                    self.heap.dec(ob);
                }
                DecodedInstr::ProjInc2 {
                    dst1,
                    src1,
                    idx1,
                    dst2,
                    src2,
                    idx2,
                } => {
                    // In-order: the first group's write lands before the
                    // second's read (src2 may name dst1).
                    let o1 = ObjRef::from_bits(frame.regs[src1.0 as usize]);
                    let f1 = self.heap.ctor_field(o1, idx1 as usize);
                    self.heap.inc(f1);
                    frame.regs[dst1.0 as usize] = f1.to_bits();
                    let o2 = ObjRef::from_bits(frame.regs[src2.0 as usize]);
                    let f2 = self.heap.ctor_field(o2, idx2 as usize);
                    self.heap.inc(f2);
                    frame.regs[dst2.0 as usize] = f2.to_bits();
                }
                DecodedInstr::Dec4 { a, b, c, d } => {
                    for r in [a, b, c, d] {
                        let o = ObjRef::from_bits(frame.regs[r.0 as usize]);
                        self.heap.dec(o);
                    }
                }
                DecodedInstr::ProjInc2Dec {
                    dst1,
                    src1,
                    idx1,
                    dst2,
                    src2,
                    idx2,
                    dec,
                } => {
                    // Same ordering as ProjInc2; the release runs last, so
                    // the projected fields are already retained when the
                    // scrutinee (often `dec`'s target) drops.
                    let o1 = ObjRef::from_bits(frame.regs[src1.0 as usize]);
                    let f1 = self.heap.ctor_field(o1, idx1 as usize);
                    self.heap.inc(f1);
                    frame.regs[dst1.0 as usize] = f1.to_bits();
                    let o2 = ObjRef::from_bits(frame.regs[src2.0 as usize]);
                    let f2 = self.heap.ctor_field(o2, idx2 as usize);
                    self.heap.inc(f2);
                    frame.regs[dst2.0 as usize] = f2.to_bits();
                    let rel = ObjRef::from_bits(frame.regs[dec.0 as usize]);
                    self.heap.dec(rel);
                }
                DecodedInstr::CallBuiltinRet {
                    builtin,
                    args,
                    mask,
                } => {
                    let vals = &mut self.scratch_objs;
                    vals.clear();
                    vals.extend(
                        f.arg_regs(args)
                            .iter()
                            .map(|&r| ObjRef::from_bits(frame.regs[r.0 as usize])),
                    );
                    if mask != 0 {
                        for (i, &v) in self.scratch_objs.iter().enumerate() {
                            if mask & (1 << i) != 0 {
                                self.heap.inc(v);
                            }
                        }
                    }
                    self.calls += 1;
                    let a0 = self.heap.alloc_count();
                    let out = builtin.call(&mut self.heap, &self.scratch_objs);
                    self.class_allocs[OpClass::FusedCallBuiltinRet as usize] +=
                        self.heap.alloc_count() - a0;
                    if let Some(value) = self.do_ret(fi, out.to_bits())? {
                        return Ok(value);
                    }
                }
                DecodedInstr::ConstructRet { tag, args } => {
                    let fields: Vec<ObjRef> = f
                        .arg_regs(args)
                        .iter()
                        .map(|&r| ObjRef::from_bits(frame.regs[r.0 as usize]))
                        .collect();
                    let obj = self.heap.alloc_ctor(tag, fields);
                    self.class_allocs[OpClass::FusedConstructRet as usize] += 1;
                    if let Some(value) = self.do_ret(fi, obj.to_bits())? {
                        return Ok(value);
                    }
                }
                DecodedInstr::SwitchDense {
                    idx,
                    cases,
                    default,
                } => {
                    let v = frame.regs[idx.0 as usize] as i64;
                    let run = &f.cases[cases.range()];
                    // The run is sorted and contiguous: `v - first_key`
                    // indexes it directly (checked_sub: a key range that
                    // underflows i64 is certainly out of the table).
                    frame.pc = match v.checked_sub(run[0].0) {
                        Some(p) if (p as u64) < run.len() as u64 => run[p as usize].1,
                        _ => default,
                    };
                }
            }
        }
    }

    /// The threaded interpreter loop ([`DispatchMode::Threaded`]).
    ///
    /// One outer iteration per *activation* — the stretch of instructions a
    /// single frame executes between frame transitions. The inner loop
    /// keeps the program counter and the current frame in locals (no
    /// per-instruction `stack.last()` / pool / function indexing), handles
    /// the hot opcodes inline, and routes the cold classes through
    /// [`COLD_HANDLERS`], indexed by the decoded opcode-class byte. Frame
    /// transitions exit the inner loop with a [`Transfer`] so the
    /// whole-`self` bookkeeping (frame push/pop, closure application) runs
    /// after the per-activation borrows are released — everything stays
    /// inside `#![forbid(unsafe_code)]`.
    ///
    /// Observable behaviour (results, statistics, error messages) is
    /// required to be identical to [`Vm::run_match`]; the dispatch
    /// differential matrix pins this.
    fn run_threaded(&mut self, idx: usize, args: Vec<ObjRef>) -> Result<ObjRef, VmError> {
        self.enter(idx, &args)?;
        let prog = self.program;
        loop {
            // The stack only changes between activations, so sampling the
            // depth here sees every height the match loop would.
            self.max_depth = self.max_depth.max(self.stack.len() as u64);
            let mut fi = *self.stack.last().expect("empty stack") as usize;
            // The step counter lives in a register for the whole
            // activation (`self.steps` is only re-synced below): the
            // per-cell budget check is then a two-register compare
            // instead of two loads and a read-modify-write. `stop_at` is
            // `max_steps` unless deadline/cancellation/heap-budget polling
            // is armed, in which case it is the next checkpoint boundary.
            let stop_at = self.stop_at;
            let depth_limit = self.depth_limit;
            let mut steps = self.steps;
            let transfer = 'act: {
                // Field-disjoint borrows for the whole activation.
                let Vm {
                    heap,
                    globals,
                    calls,
                    executed,
                    class_allocs,
                    frame_reuses,
                    tail_frame_reuses,
                    cache_hits,
                    cache_misses,
                    max_depth,
                    max_frame_width,
                    pool,
                    stack,
                    free,
                    scratch,
                    scratch_objs,
                    caches,
                    opts,
                    ..
                } = self;
                let use_cache = opts.inline_cache;
                let mut frame = &mut pool[fi];
                let mut f = &prog.fns[frame.func as usize];
                let mut pc = frame.pc as usize;

                // Inline call: enter the callee without leaving the
                // activation loop — the outer-loop round trip (dropping and
                // re-establishing every borrow above) is the dominant cost
                // of call-heavy programs. Takes the fast path only when a
                // recycled frame is available (the steady state after the
                // first few calls); growing the pool stays in
                // [`Vm::push_frame_fast`] behind [`Transfer::Push`].
                // Arguments are expected staged in `scratch`, validation
                // already done — exactly the `Transfer::Push` contract.
                macro_rules! inline_call {
                    ($func:expr, $n_regs:expr, $dst:expr) => {{
                        let (func, n_regs, dst) = ($func, $n_regs, $dst);
                        frame.pc = pc as u32;
                        // Same observation point as [`Vm::push_frame_fast`]:
                        // before the push, after the call step was counted.
                        if stack.len() as u64 >= depth_limit {
                            break 'act Transfer::Error(VmError::depth_budget());
                        }
                        match free.pop() {
                            Some(nfi) => {
                                *calls += 1;
                                *frame_reuses += 1;
                                let callee = &mut pool[nfi as usize];
                                debug_assert!(
                                    callee.after_ret.is_empty(),
                                    "recycled frame carries state"
                                );
                                wire_regs(&mut callee.regs, scratch, n_regs);
                                callee.func = func;
                                callee.pc = 0;
                                callee.ret_dst = dst;
                                *max_frame_width = (*max_frame_width).max(u64::from(n_regs));
                                stack.push(nfi);
                                *max_depth = (*max_depth).max(stack.len() as u64);
                                fi = nfi as usize;
                                frame = callee;
                                f = &prog.fns[func as usize];
                                pc = 0;
                            }
                            None => break 'act Transfer::Push { func, n_regs, dst },
                        }
                    }};
                }

                // Inline return: pop back into the caller without leaving
                // the activation loop. Bails to [`Transfer::Ret`] (which
                // routes through [`Vm::do_ret`]) for the slow cases: a
                // pending over-saturated application, or returning the
                // whole-program result from the entry frame.
                macro_rules! inline_ret {
                    ($bits:expr) => {{
                        let bits: u64 = $bits;
                        if frame.after_ret.is_empty() && stack.len() > 1 {
                            let dst = frame.ret_dst;
                            let done = stack.pop().expect("checked non-empty");
                            free.push(done);
                            let cfi = *stack.last().expect("checked len > 1") as usize;
                            let caller = &mut pool[cfi];
                            caller.regs[dst.0 as usize] = bits;
                            fi = cfi;
                            frame = caller;
                            f = &prog.fns[frame.func as usize];
                            pc = frame.pc as usize;
                        } else {
                            frame.pc = pc as u32;
                            break 'act Transfer::Ret { bits };
                        }
                    }};
                }
                loop {
                    if steps >= stop_at {
                        frame.pc = pc as u32;
                        break 'act Transfer::Checkpoint;
                    }
                    steps += 1;
                    let Some(&instr) = f.code.get(pc) else {
                        frame.pc = pc as u32;
                        break 'act Transfer::Error(err(format!("pc out of range in @{}", f.name)));
                    };
                    let class = f.classes[pc];
                    executed[class as usize] += 1;
                    pc += 1;
                    match instr {
                        DecodedInstr::ConstInt { dst, v } => frame.regs[dst.0 as usize] = v as u64,
                        DecodedInstr::LpInt { dst, v } => {
                            frame.regs[dst.0 as usize] = ObjRef::scalar(v).to_bits();
                        }
                        DecodedInstr::GetLabel { dst, src } => {
                            let o = ObjRef::from_bits(frame.regs[src.0 as usize]);
                            frame.regs[dst.0 as usize] = heap.ctor_tag(o) as u64;
                        }
                        DecodedInstr::Project { dst, src, idx } => {
                            let o = ObjRef::from_bits(frame.regs[src.0 as usize]);
                            frame.regs[dst.0 as usize] = heap.ctor_field(o, idx as usize).to_bits();
                        }
                        DecodedInstr::Pap {
                            dst,
                            func,
                            arity,
                            args_off,
                            args_len,
                        } => {
                            let vals: Vec<ObjRef> = f
                                .arg_regs(ArgSlice {
                                    off: args_off,
                                    len: args_len,
                                })
                                .iter()
                                .map(|&r| ObjRef::from_bits(frame.regs[r.0 as usize]))
                                .collect();
                            let a0 = heap.alloc_count();
                            let outcome = pap_new(heap, FuncId(func), arity, vals);
                            class_allocs[OpClass::Closure as usize] += heap.alloc_count() - a0;
                            match outcome {
                                ApplyOutcome::Partial(c) => {
                                    frame.regs[dst.0 as usize] = c.to_bits();
                                }
                                other => {
                                    frame.pc = pc as u32;
                                    break 'act Transfer::Apply {
                                        dst,
                                        outcome: other,
                                    };
                                }
                            }
                        }
                        DecodedInstr::PapExtend {
                            dst,
                            closure,
                            args,
                            cache,
                        } => {
                            let c = ObjRef::from_bits(frame.regs[closure.0 as usize]);
                            let probe = match *heap.data(c) {
                                ObjData::Closure {
                                    func,
                                    arity,
                                    args: ref applied,
                                } => {
                                    if applied.is_empty() {
                                        Some((func, arity))
                                    } else {
                                        None
                                    }
                                }
                                _ => {
                                    frame.pc = pc as u32;
                                    break 'act Transfer::Error(err(
                                        "papextend of a non-closure value",
                                    ));
                                }
                            };
                            let slot = if use_cache && cache != NO_CACHE {
                                Some(f.cache_base as usize + cache as usize)
                            } else {
                                None
                            };
                            if let (Some(g), Some((func, arity))) = (slot, probe) {
                                let s = caches[g];
                                if s.state == SLOT_PAP
                                    && s.func == func.0
                                    && s.arity == arity
                                    && arity == args.len
                                {
                                    *cache_hits += 1;
                                    scratch.clear();
                                    scratch.extend(
                                        f.arg_regs(args).iter().map(|&r| frame.regs[r.0 as usize]),
                                    );
                                    heap.dec(c);
                                    inline_call!(s.func, s.n_regs, dst);
                                    continue;
                                }
                            }
                            if let Some(g) = slot {
                                *cache_misses += 1;
                                if let Some((func, arity)) = probe {
                                    if arity == args.len {
                                        if let Some(t) = prog.fns.get(func.0 as usize) {
                                            if t.arity == arity {
                                                caches[g] = CacheSlot {
                                                    func: func.0,
                                                    arity,
                                                    n_regs: t.n_regs,
                                                    state: SLOT_PAP,
                                                };
                                            }
                                        }
                                    }
                                }
                            }
                            // Saturation fast path: extending an empty
                            // closure with exactly its arity is a direct
                            // call — same counter effects as the generic
                            // `pap_extend` (no captured args to retain,
                            // release the closure, no allocation), minus
                            // the staging `Vec` and `ApplyOutcome` round
                            // trip. Covers the cache-cold and cache-off
                            // runs; arity mismatches keep the generic
                            // path's error behaviour.
                            if let Some((func, arity)) = probe {
                                if arity == args.len {
                                    if let Some(t) = prog.fns.get(func.0 as usize) {
                                        if t.arity == arity {
                                            scratch.clear();
                                            scratch.extend(
                                                f.arg_regs(args)
                                                    .iter()
                                                    .map(|&r| frame.regs[r.0 as usize]),
                                            );
                                            heap.dec(c);
                                            inline_call!(func.0, t.n_regs, dst);
                                            continue;
                                        }
                                    }
                                }
                            }
                            let vals: Vec<ObjRef> = f
                                .arg_regs(args)
                                .iter()
                                .map(|&r| ObjRef::from_bits(frame.regs[r.0 as usize]))
                                .collect();
                            let a0 = heap.alloc_count();
                            let outcome = pap_extend(heap, c, vals);
                            class_allocs[OpClass::Closure as usize] += heap.alloc_count() - a0;
                            match outcome {
                                ApplyOutcome::Partial(cc) => {
                                    frame.regs[dst.0 as usize] = cc.to_bits();
                                }
                                other => {
                                    frame.pc = pc as u32;
                                    break 'act Transfer::Apply {
                                        dst,
                                        outcome: other,
                                    };
                                }
                            }
                        }
                        DecodedInstr::Inc { src } => {
                            let o = ObjRef::from_bits(frame.regs[src.0 as usize]);
                            heap.inc(o);
                        }
                        DecodedInstr::Dec { src } => {
                            let o = ObjRef::from_bits(frame.regs[src.0 as usize]);
                            heap.dec(o);
                        }
                        DecodedInstr::Call {
                            dst,
                            func,
                            args_off,
                            args_len,
                            cache,
                        } => {
                            scratch.clear();
                            scratch.extend(
                                f.arg_regs(ArgSlice {
                                    off: args_off,
                                    len: args_len,
                                })
                                .iter()
                                .map(|&r| frame.regs[r.0 as usize]),
                            );
                            let slot = if use_cache && cache != NO_CACHE {
                                Some(f.cache_base as usize + cache as usize)
                            } else {
                                None
                            };
                            let n_regs = match slot {
                                Some(g) if caches[g].state == SLOT_CALL => {
                                    *cache_hits += 1;
                                    caches[g].n_regs
                                }
                                _ => {
                                    if slot.is_some() {
                                        *cache_misses += 1;
                                    }
                                    let Some(target) = prog.fns.get(func as usize) else {
                                        frame.pc = pc as u32;
                                        break 'act Transfer::Error(err(format!(
                                            "bad function index {func}"
                                        )));
                                    };
                                    if scratch.len() != target.arity as usize {
                                        frame.pc = pc as u32;
                                        break 'act Transfer::Error(err(format!(
                                            "@{} called with {} args (arity {})",
                                            target.name,
                                            scratch.len(),
                                            target.arity
                                        )));
                                    }
                                    if let Some(g) = slot {
                                        caches[g] = CacheSlot {
                                            func,
                                            arity: target.arity,
                                            n_regs: target.n_regs,
                                            state: SLOT_CALL,
                                        };
                                    }
                                    target.n_regs
                                }
                            };
                            inline_call!(func, n_regs, dst);
                        }
                        DecodedInstr::CallBuiltin {
                            dst,
                            builtin,
                            args,
                            mask,
                        } => {
                            // Array fast paths: a scalar nat index into a
                            // real heap array skips the staging buffer and
                            // the generic `Builtin::call` dispatch for a
                            // direct (bounds-checked) heap access with the
                            // exact same counter effects. Anything else —
                            // boxed index, out of bounds, non-array —
                            // falls through to the generic call below and
                            // keeps its diagnostics.
                            match builtin {
                                Builtin::ArrayGet => {
                                    if let [ra, ri] = f.arg_regs(args) {
                                        let arr = ObjRef::from_bits(frame.regs[ra.0 as usize]);
                                        let idx = ObjRef::from_bits(frame.regs[ri.0 as usize]);
                                        if let (Some(i), Some(len)) = (
                                            idx.as_scalar().filter(|&v| v >= 0),
                                            heap.try_array_len(arr),
                                        ) {
                                            if (i as usize) < len {
                                                if mask & 1 != 0 {
                                                    heap.inc(arr);
                                                }
                                                if mask & 2 != 0 {
                                                    heap.inc(idx);
                                                }
                                                *calls += 1;
                                                let v = heap.array_get(arr, i as usize);
                                                heap.inc(v);
                                                heap.dec(arr);
                                                frame.regs[dst.0 as usize] = v.to_bits();
                                                continue;
                                            }
                                        }
                                    }
                                }
                                Builtin::ArraySet => {
                                    if let [ra, ri, rv] = f.arg_regs(args) {
                                        let arr = ObjRef::from_bits(frame.regs[ra.0 as usize]);
                                        let idx = ObjRef::from_bits(frame.regs[ri.0 as usize]);
                                        let v = ObjRef::from_bits(frame.regs[rv.0 as usize]);
                                        if let (Some(i), Some(len)) = (
                                            idx.as_scalar().filter(|&v| v >= 0),
                                            heap.try_array_len(arr),
                                        ) {
                                            if (i as usize) < len {
                                                if mask & 1 != 0 {
                                                    heap.inc(arr);
                                                }
                                                if mask & 2 != 0 {
                                                    heap.inc(idx);
                                                }
                                                if mask & 4 != 0 {
                                                    heap.inc(v);
                                                }
                                                *calls += 1;
                                                let a0 = heap.alloc_count();
                                                let out = heap.array_set(arr, i as usize, v);
                                                class_allocs[OpClass::CallBuiltin as usize] +=
                                                    heap.alloc_count() - a0;
                                                frame.regs[dst.0 as usize] = out.to_bits();
                                                continue;
                                            }
                                        }
                                    }
                                }
                                Builtin::ArrayPush => {
                                    if let [ra, rv] = f.arg_regs(args) {
                                        let arr = ObjRef::from_bits(frame.regs[ra.0 as usize]);
                                        let v = ObjRef::from_bits(frame.regs[rv.0 as usize]);
                                        if heap.try_array_len(arr).is_some() {
                                            if mask & 1 != 0 {
                                                heap.inc(arr);
                                            }
                                            if mask & 2 != 0 {
                                                heap.inc(v);
                                            }
                                            *calls += 1;
                                            let a0 = heap.alloc_count();
                                            let out = heap.array_push(arr, v);
                                            class_allocs[OpClass::CallBuiltin as usize] +=
                                                heap.alloc_count() - a0;
                                            frame.regs[dst.0 as usize] = out.to_bits();
                                            continue;
                                        }
                                    }
                                }
                                _ => {}
                            }
                            if let [ra, rb] = f.arg_regs(args) {
                                let a = frame.regs[ra.0 as usize];
                                let b = frame.regs[rb.0 as usize];
                                if let Some(bits) = builtin_fast2(builtin, a, b) {
                                    *calls += 1;
                                    // Folded retains, then consume both
                                    // operands (statistics only: all are
                                    // scalars here).
                                    if mask & 1 != 0 {
                                        heap.inc(ObjRef::from_bits(a));
                                    }
                                    if mask & 2 != 0 {
                                        heap.inc(ObjRef::from_bits(b));
                                    }
                                    heap.dec(ObjRef::from_bits(a));
                                    heap.dec(ObjRef::from_bits(b));
                                    frame.regs[dst.0 as usize] = bits;
                                    continue;
                                }
                            }
                            scratch_objs.clear();
                            scratch_objs.extend(
                                f.arg_regs(args)
                                    .iter()
                                    .map(|&r| ObjRef::from_bits(frame.regs[r.0 as usize])),
                            );
                            if mask != 0 {
                                for (i, &v) in scratch_objs.iter().enumerate() {
                                    if mask & (1 << i) != 0 {
                                        heap.inc(v);
                                    }
                                }
                            }
                            *calls += 1;
                            let a0 = heap.alloc_count();
                            let out = builtin.call(heap, &*scratch_objs);
                            class_allocs[OpClass::CallBuiltin as usize] += heap.alloc_count() - a0;
                            frame.regs[dst.0 as usize] = out.to_bits();
                        }
                        DecodedInstr::TailCall {
                            func,
                            args_off,
                            args_len,
                            cache,
                        } => {
                            let args = ArgSlice {
                                off: args_off,
                                len: args_len,
                            };
                            let slot = if use_cache && cache != NO_CACHE {
                                Some(f.cache_base as usize + cache as usize)
                            } else {
                                None
                            };
                            let n_regs = match slot {
                                Some(g) if caches[g].state == SLOT_CALL => {
                                    *cache_hits += 1;
                                    caches[g].n_regs
                                }
                                _ => {
                                    if slot.is_some() {
                                        *cache_misses += 1;
                                    }
                                    let Some(target) = prog.fns.get(func as usize) else {
                                        frame.pc = pc as u32;
                                        break 'act Transfer::Error(err(format!(
                                            "bad function index {func}"
                                        )));
                                    };
                                    if args.len as usize != target.arity as usize {
                                        frame.pc = pc as u32;
                                        break 'act Transfer::Error(err(format!(
                                            "@{} called with {} args (arity {})",
                                            target.name, args.len, target.arity
                                        )));
                                    }
                                    if let Some(g) = slot {
                                        caches[g] = CacheSlot {
                                            func,
                                            arity: target.arity,
                                            n_regs: target.n_regs,
                                            state: SLOT_CALL,
                                        };
                                    }
                                    target.n_regs
                                }
                            };
                            *calls += 1;
                            *tail_frame_reuses += 1;
                            scratch.clear();
                            scratch
                                .extend(f.arg_regs(args).iter().map(|&r| frame.regs[r.0 as usize]));
                            wire_regs(&mut frame.regs, scratch, n_regs);
                            frame.func = func;
                            *max_frame_width = (*max_frame_width).max(u64::from(n_regs));
                            // The activation continues in the callee:
                            // `ret_dst`/`after_ret` carry over, the stack is
                            // untouched, and no outer-loop round trip is paid.
                            f = &prog.fns[func as usize];
                            pc = 0;
                        }
                        DecodedInstr::Ret { src } => {
                            inline_ret!(frame.regs[src.0 as usize]);
                        }
                        DecodedInstr::Jump { target } => pc = target as usize,
                        DecodedInstr::Branch {
                            cond,
                            then_t,
                            else_t,
                        } => {
                            pc = if frame.regs[cond.0 as usize] != 0 {
                                then_t as usize
                            } else {
                                else_t as usize
                            };
                        }
                        DecodedInstr::Bin { op, dst, a, b } => {
                            let x = frame.regs[a.0 as usize] as i64;
                            let y = frame.regs[b.0 as usize] as i64;
                            let Some(v) = op.eval(x, y) else {
                                frame.pc = pc as u32;
                                break 'act Transfer::Error(err("integer division by zero"));
                            };
                            frame.regs[dst.0 as usize] = v as u64;
                        }
                        DecodedInstr::Cmp { pred, dst, a, b } => {
                            let x = frame.regs[a.0 as usize] as i64;
                            let y = frame.regs[b.0 as usize] as i64;
                            frame.regs[dst.0 as usize] = pred.eval(x, y) as u64;
                        }
                        DecodedInstr::Move { dst, src } => {
                            frame.regs[dst.0 as usize] = frame.regs[src.0 as usize];
                        }
                        DecodedInstr::Trap => {
                            frame.pc = pc as u32;
                            break 'act Transfer::Error(err(format!(
                                "reached unreachable code in @{}",
                                f.name
                            )));
                        }
                        DecodedInstr::CmpBr {
                            pred,
                            a,
                            b,
                            then_t,
                            else_t,
                        } => {
                            let x = frame.regs[a.0 as usize] as i64;
                            let y = frame.regs[b.0 as usize] as i64;
                            pc = if pred.eval(x, y) {
                                then_t as usize
                            } else {
                                else_t as usize
                            };
                        }
                        DecodedInstr::ConstCmpBr {
                            pred,
                            a,
                            imm,
                            then_t,
                            else_t,
                        } => {
                            let x = frame.regs[a.0 as usize] as i64;
                            pc = if pred.eval(x, i64::from(imm)) {
                                then_t as usize
                            } else {
                                else_t as usize
                            };
                        }
                        DecodedInstr::ConstBin {
                            op,
                            imm_rhs,
                            dst,
                            src,
                            imm,
                        } => {
                            let s = frame.regs[src.0 as usize] as i64;
                            let (x, y) = if imm_rhs { (s, imm) } else { (imm, s) };
                            let Some(v) = op.eval(x, y) else {
                                frame.pc = pc as u32;
                                break 'act Transfer::Error(err("integer division by zero"));
                            };
                            frame.regs[dst.0 as usize] = v as u64;
                        }
                        DecodedInstr::BinRet { op, a, b } => {
                            let x = frame.regs[a.0 as usize] as i64;
                            let y = frame.regs[b.0 as usize] as i64;
                            let Some(v) = op.eval(x, y) else {
                                frame.pc = pc as u32;
                                break 'act Transfer::Error(err("integer division by zero"));
                            };
                            inline_ret!(v as u64);
                        }
                        DecodedInstr::MovRet { src } => {
                            inline_ret!(frame.regs[src.0 as usize]);
                        }
                        DecodedInstr::ConstRet { v } => {
                            inline_ret!(ObjRef::scalar(v).to_bits());
                        }
                        DecodedInstr::ProjInc { dst, src, idx } => {
                            let o = ObjRef::from_bits(frame.regs[src.0 as usize]);
                            let field = heap.ctor_field(o, idx as usize);
                            heap.inc(field);
                            frame.regs[dst.0 as usize] = field.to_bits();
                        }
                        DecodedInstr::Dec2 { a, b } => {
                            let oa = ObjRef::from_bits(frame.regs[a.0 as usize]);
                            heap.dec(oa);
                            let ob = ObjRef::from_bits(frame.regs[b.0 as usize]);
                            heap.dec(ob);
                        }
                        DecodedInstr::ProjInc2 {
                            dst1,
                            src1,
                            idx1,
                            dst2,
                            src2,
                            idx2,
                        } => {
                            // In-order: the first group's write lands
                            // before the second's read (src2 may name dst1).
                            let o1 = ObjRef::from_bits(frame.regs[src1.0 as usize]);
                            let f1 = heap.ctor_field(o1, idx1 as usize);
                            heap.inc(f1);
                            frame.regs[dst1.0 as usize] = f1.to_bits();
                            let o2 = ObjRef::from_bits(frame.regs[src2.0 as usize]);
                            let f2 = heap.ctor_field(o2, idx2 as usize);
                            heap.inc(f2);
                            frame.regs[dst2.0 as usize] = f2.to_bits();
                        }
                        DecodedInstr::Dec4 { a, b, c, d } => {
                            for r in [a, b, c, d] {
                                let o = ObjRef::from_bits(frame.regs[r.0 as usize]);
                                heap.dec(o);
                            }
                        }
                        DecodedInstr::ProjInc2Dec {
                            dst1,
                            src1,
                            idx1,
                            dst2,
                            src2,
                            idx2,
                            dec,
                        } => {
                            // Same ordering as ProjInc2; the release runs
                            // last, so the projected fields are already
                            // retained when the scrutinee drops.
                            let o1 = ObjRef::from_bits(frame.regs[src1.0 as usize]);
                            let f1 = heap.ctor_field(o1, idx1 as usize);
                            heap.inc(f1);
                            frame.regs[dst1.0 as usize] = f1.to_bits();
                            let o2 = ObjRef::from_bits(frame.regs[src2.0 as usize]);
                            let f2 = heap.ctor_field(o2, idx2 as usize);
                            heap.inc(f2);
                            frame.regs[dst2.0 as usize] = f2.to_bits();
                            let rel = ObjRef::from_bits(frame.regs[dec.0 as usize]);
                            heap.dec(rel);
                        }
                        DecodedInstr::CallBuiltinRet {
                            builtin,
                            args,
                            mask,
                        } => {
                            if let [ra, rb] = f.arg_regs(args) {
                                let a = frame.regs[ra.0 as usize];
                                let b = frame.regs[rb.0 as usize];
                                if let Some(bits) = builtin_fast2(builtin, a, b) {
                                    *calls += 1;
                                    if mask & 1 != 0 {
                                        heap.inc(ObjRef::from_bits(a));
                                    }
                                    if mask & 2 != 0 {
                                        heap.inc(ObjRef::from_bits(b));
                                    }
                                    heap.dec(ObjRef::from_bits(a));
                                    heap.dec(ObjRef::from_bits(b));
                                    inline_ret!(bits);
                                    continue;
                                }
                            }
                            scratch_objs.clear();
                            scratch_objs.extend(
                                f.arg_regs(args)
                                    .iter()
                                    .map(|&r| ObjRef::from_bits(frame.regs[r.0 as usize])),
                            );
                            if mask != 0 {
                                for (i, &v) in scratch_objs.iter().enumerate() {
                                    if mask & (1 << i) != 0 {
                                        heap.inc(v);
                                    }
                                }
                            }
                            *calls += 1;
                            let a0 = heap.alloc_count();
                            let out = builtin.call(heap, &*scratch_objs);
                            class_allocs[OpClass::FusedCallBuiltinRet as usize] +=
                                heap.alloc_count() - a0;
                            inline_ret!(out.to_bits());
                        }
                        DecodedInstr::ConstructRet { tag, args } => {
                            let fields: Vec<ObjRef> = f
                                .arg_regs(args)
                                .iter()
                                .map(|&r| ObjRef::from_bits(frame.regs[r.0 as usize]))
                                .collect();
                            let obj = heap.alloc_ctor(tag, fields);
                            class_allocs[OpClass::FusedConstructRet as usize] += 1;
                            inline_ret!(obj.to_bits());
                        }
                        DecodedInstr::SwitchDense {
                            idx,
                            cases,
                            default,
                        } => {
                            let v = frame.regs[idx.0 as usize] as i64;
                            let run = &f.cases[cases.range()];
                            pc = match v.checked_sub(run[0].0) {
                                Some(p) if (p as u64) < run.len() as u64 => {
                                    run[p as usize].1 as usize
                                }
                                _ => default as usize,
                            };
                        }
                        // Cold classes: allocation, globals, rare arithmetic,
                        // sparse switches — one `#[inline(never)]` handler per
                        // class, dispatched on the decoded opcode-class byte.
                        // (No wildcard: a new variant must pick a side.)
                        DecodedInstr::LpBig { .. }
                        | DecodedInstr::LpStr { .. }
                        | DecodedInstr::Construct { .. }
                        | DecodedInstr::Switch { .. }
                        | DecodedInstr::Select { .. }
                        | DecodedInstr::Mask { .. }
                        | DecodedInstr::GlobalLoad { .. }
                        | DecodedInstr::GlobalStore { .. } => {
                            let mut ctx = ColdCtx {
                                heap: &mut *heap,
                                globals: &mut *globals,
                                class_allocs: &mut *class_allocs,
                                prog,
                            };
                            COLD_HANDLERS[class as usize](&mut ctx, f, frame, &mut pc, instr);
                        }
                    }
                }
            };
            self.steps = steps;
            match transfer {
                Transfer::Push { func, n_regs, dst } => {
                    let nfi = self.push_frame_fast(func, n_regs, dst)?;
                    self.stack.push(nfi);
                }
                Transfer::Ret { bits } => {
                    if let Some(value) = self.do_ret(fi, bits)? {
                        return Ok(value);
                    }
                }
                Transfer::Apply { dst, outcome } => self.apply(dst, outcome)?,
                Transfer::Checkpoint => self.checkpoint()?,
                Transfer::Error(e) => return Err(e),
            }
        }
    }

    /// Completes a return of `bits` from the frame at pool index `fi` —
    /// shared by `Ret` and every fused `*Ret` superinstruction. Recycles
    /// the frame, resumes any over-saturated application (allocation there
    /// is attributed to the `ret` class regardless of the fused shape), and
    /// either writes the caller's destination register (`None`) or, when
    /// the stack is empty, yields the whole-program result (`Some`).
    fn do_ret(&mut self, fi: usize, bits: u64) -> Result<Option<ObjRef>, VmError> {
        let value = ObjRef::from_bits(bits);
        let frame = &mut self.pool[fi];
        let ret_dst = frame.ret_dst;
        let after_ret = std::mem::take(&mut frame.after_ret);
        self.stack.pop();
        self.free.push(fi as u32);
        if !after_ret.is_empty() {
            // Continue an over-saturated application.
            if !matches!(self.heap.data(value), lssa_rt::ObjData::Closure { .. }) {
                return Err(err("over-application of a non-closure result"));
            }
            let a0 = self.heap.alloc_count();
            let outcome = pap_extend(&mut self.heap, value, after_ret);
            self.class_allocs[OpClass::Ret as usize] += self.heap.alloc_count() - a0;
            if self.stack.is_empty() {
                // Whole-program result must not be pending.
                return match outcome {
                    ApplyOutcome::Partial(c) => Ok(Some(c)),
                    _ => Err(err("dangling over-application at exit")),
                };
            }
            self.apply(ret_dst, outcome)?;
            return Ok(None);
        }
        match self.stack.last() {
            Some(&ci) => {
                self.pool[ci as usize].regs[ret_dst.0 as usize] = bits;
                Ok(None)
            }
            None => Ok(Some(value)),
        }
    }

    /// Stages owned object arguments into the scratch buffer (the calling
    /// convention of [`Vm::alloc_frame`]).
    fn stage_objs(&mut self, args: &[ObjRef]) {
        self.scratch.clear();
        self.scratch.extend(args.iter().map(|a| a.to_bits()));
    }

    /// Validates `func` against the staged arguments, then takes a frame
    /// from the free list (or grows the pool), wires it up, and returns its
    /// pool index. The caller pushes the index onto the stack.
    fn alloc_frame(&mut self, func: usize, ret_dst: Reg) -> Result<u32, VmError> {
        let f = self
            .program
            .fns
            .get(func)
            .ok_or_else(|| err(format!("bad function index {func}")))?;
        if self.scratch.len() != f.arity as usize {
            return Err(err(format!(
                "@{} called with {} args (arity {})",
                f.name,
                self.scratch.len(),
                f.arity
            )));
        }
        let n_regs = f.n_regs;
        self.push_frame_fast(func as u32, n_regs, ret_dst)
    }

    /// The validated tail of [`Vm::alloc_frame`]: wires a pooled frame to
    /// `func` with the staged arguments, skipping the function lookup and
    /// the arity check — the inline caches take this path directly on a
    /// monomorphic hit (the site proved both on its first execution). Fails
    /// only on the [`JobLimits::max_depth`] cap.
    fn push_frame_fast(&mut self, func: u32, n_regs: u16, ret_dst: Reg) -> Result<u32, VmError> {
        if self.stack.len() as u64 >= self.depth_limit {
            return Err(VmError::depth_budget());
        }
        self.calls += 1;
        let fi = match self.free.pop() {
            Some(fi) => {
                self.frame_reuses += 1;
                fi
            }
            None => {
                self.frame_allocs += 1;
                self.pool.push(Frame::default());
                u32::try_from(self.pool.len() - 1).expect("frame pool exhausted")
            }
        };
        let frame = &mut self.pool[fi as usize];
        frame.func = func;
        frame.pc = 0;
        frame.ret_dst = ret_dst;
        debug_assert!(frame.after_ret.is_empty(), "recycled frame carries state");
        wire_regs(&mut frame.regs, &self.scratch, n_regs);
        self.max_frame_width = self.max_frame_width.max(u64::from(n_regs));
        Ok(fi)
    }

    /// Handles a pap/papextend outcome: either a value, or a frame to push.
    fn apply(&mut self, dst: Reg, outcome: ApplyOutcome) -> Result<(), VmError> {
        match outcome {
            ApplyOutcome::Partial(c) => {
                let &fi = self.stack.last().expect("apply without frame");
                self.pool[fi as usize].regs[dst.0 as usize] = c.to_bits();
                Ok(())
            }
            ApplyOutcome::Call { func, args } => {
                self.stage_objs(&args);
                let fi = self.alloc_frame(func.0 as usize, dst)?;
                self.stack.push(fi);
                Ok(())
            }
            ApplyOutcome::CallThen { func, args, rest } => {
                self.stage_objs(&args);
                let fi = self.alloc_frame(func.0 as usize, dst)?;
                self.pool[fi as usize].after_ret = rest;
                self.stack.push(fi);
                Ok(())
            }
        }
    }

    /// Compact statistics so far.
    pub fn stats(&self) -> ExecStats {
        ExecStats {
            instructions: self.steps,
            calls: self.calls,
            max_stack: self.max_depth,
            heap: self.heap.stats(),
        }
    }

    /// Full per-opcode-class statistics so far.
    pub fn statistics(&self) -> VmStatistics {
        VmStatistics {
            executed: self.executed,
            class_allocs: self.class_allocs,
            instructions: self.steps,
            calls: self.calls,
            max_depth: self.max_depth,
            frame_allocs: self.frame_allocs,
            frame_reuses: self.frame_reuses,
            tail_frame_reuses: self.tail_frame_reuses,
            fused_cells: self.program.fusion.superinstructions(),
            cache_hits: self.cache_hits,
            cache_misses: self.cache_misses,
            max_frame_width: self.max_frame_width,
            frame_pool_bytes: self
                .pool
                .iter()
                .map(|fr| (fr.regs.capacity() * std::mem::size_of::<u64>()) as u64)
                .sum(),
            regs_saved: self.program.renumber.regs_saved(),
            duration: self.exec_time,
            heap: self.heap.stats(),
        }
    }

    /// Decodes an integer result (convenience for tests).
    pub fn to_int(&self, r: ObjRef) -> Int {
        self.heap.get_int(r)
    }
}

/// What a threaded activation ended with: the frame transition (or failure)
/// the outer loop performs once the per-activation borrows are released.
enum Transfer {
    /// Push a frame for `func` — arguments staged in scratch, validation
    /// already done (`n_regs` is the callee's register-file size).
    Push { func: u32, n_regs: u16, dst: Reg },
    /// Return `bits` from the current frame.
    Ret { bits: u64 },
    /// Apply a closure outcome to `dst` (may push a frame).
    Apply { dst: Reg, outcome: ApplyOutcome },
    /// `steps` hit `stop_at`: run [`Vm::checkpoint`] and resume (or abort).
    Checkpoint,
    /// The run failed.
    Error(VmError),
}

/// The VM state a cold handler can touch: everything *except* the frame
/// pool and stack (cold opcodes never transfer frames — the current frame
/// is passed in by reborrow).
struct ColdCtx<'a> {
    heap: &'a mut Heap,
    globals: &'a mut Vec<ObjRef>,
    class_allocs: &'a mut [u64; OpClass::COUNT],
    prog: &'a DecodedProgram,
}

/// One cold-class handler: `(ctx, fn, frame, pc, instr)`. The pc is in/out
/// so sparse switches can jump. Cold opcodes cannot fail — failures are
/// hot-loop concerns (arithmetic traps, call validation).
type ColdHandler = fn(&mut ColdCtx<'_>, &DecodedFn, &mut Frame, &mut usize, DecodedInstr);

/// A hot opcode was routed to the cold table: the inline arms and this
/// table disagree about the class partition — a VM bug, not a program bug.
#[cold]
fn cold_mismatch() -> ! {
    unreachable!("hot opcode class routed to a cold handler")
}

/// Heap-allocating data constructors (`LpBig`, `LpStr`, `Construct`).
#[inline(never)]
fn cold_alloc(
    ctx: &mut ColdCtx<'_>,
    f: &DecodedFn,
    frame: &mut Frame,
    _pc: &mut usize,
    instr: DecodedInstr,
) {
    match instr {
        DecodedInstr::LpBig { dst, idx } => {
            let a0 = ctx.heap.alloc_count();
            let n = ctx.prog.big_pool[idx as usize].clone();
            frame.regs[dst.0 as usize] = ctx.heap.mk_nat(n).to_bits();
            ctx.class_allocs[OpClass::Alloc as usize] += ctx.heap.alloc_count() - a0;
        }
        DecodedInstr::LpStr { dst, idx } => {
            let s = ctx.prog.str_pool[idx as usize].clone();
            frame.regs[dst.0 as usize] = ctx.heap.alloc_str(s).to_bits();
            ctx.class_allocs[OpClass::Alloc as usize] += 1;
        }
        DecodedInstr::Construct { dst, tag, args } => {
            let fields: Vec<ObjRef> = f
                .arg_regs(args)
                .iter()
                .map(|&r| ObjRef::from_bits(frame.regs[r.0 as usize]))
                .collect();
            frame.regs[dst.0 as usize] = ctx.heap.alloc_ctor(tag, fields).to_bits();
            ctx.class_allocs[OpClass::Alloc as usize] += 1;
        }
        _ => cold_mismatch(),
    }
}

/// Sparse jump tables (`Switch`; the class's `Jump`/`Branch` stay inline).
#[inline(never)]
fn cold_branch(
    _ctx: &mut ColdCtx<'_>,
    f: &DecodedFn,
    frame: &mut Frame,
    pc: &mut usize,
    instr: DecodedInstr,
) {
    match instr {
        DecodedInstr::Switch {
            idx,
            cases,
            default,
        } => {
            let v = frame.regs[idx.0 as usize] as i64;
            *pc = f.cases[cases.range()]
                .iter()
                .find(|&&(c, _)| c == v)
                .map(|&(_, t)| t)
                .unwrap_or(default) as usize;
        }
        _ => cold_mismatch(),
    }
}

/// Rare word arithmetic (`Select`, `Mask`; `Bin`/`Cmp` stay inline).
#[inline(never)]
fn cold_arith(
    _ctx: &mut ColdCtx<'_>,
    _f: &DecodedFn,
    frame: &mut Frame,
    _pc: &mut usize,
    instr: DecodedInstr,
) {
    match instr {
        DecodedInstr::Select { dst, c, a, b } => {
            let v = if frame.regs[c.0 as usize] != 0 {
                frame.regs[a.0 as usize]
            } else {
                frame.regs[b.0 as usize]
            };
            frame.regs[dst.0 as usize] = v;
        }
        DecodedInstr::Mask { dst, src, mask } => {
            frame.regs[dst.0 as usize] = frame.regs[src.0 as usize] & mask;
        }
        _ => cold_mismatch(),
    }
}

/// Module-global loads and stores.
#[inline(never)]
fn cold_global(
    ctx: &mut ColdCtx<'_>,
    _f: &DecodedFn,
    frame: &mut Frame,
    _pc: &mut usize,
    instr: DecodedInstr,
) {
    match instr {
        DecodedInstr::GlobalLoad { dst, idx } => {
            frame.regs[dst.0 as usize] = ctx.globals[idx as usize].to_bits();
        }
        DecodedInstr::GlobalStore { idx, src } => {
            ctx.globals[idx as usize] = ObjRef::from_bits(frame.regs[src.0 as usize]);
        }
        _ => cold_mismatch(),
    }
}

/// Filler for classes the inline arms fully handle.
fn cold_never(
    _ctx: &mut ColdCtx<'_>,
    _f: &DecodedFn,
    _frame: &mut Frame,
    _pc: &mut usize,
    _instr: DecodedInstr,
) {
    cold_mismatch()
}

/// The cold-dispatch function-pointer table, indexed by the decoded
/// opcode-class byte ([`DecodedFn::classes`], i.e. [`OpClass`]
/// discriminants). Hot classes are fillers — their instructions never reach
/// the table.
static COLD_HANDLERS: [ColdHandler; OpClass::COUNT] = [
    cold_never,  // Const
    cold_alloc,  // Alloc
    cold_never,  // Project
    cold_never,  // Closure
    cold_never,  // Rc
    cold_never,  // Call
    cold_never,  // CallBuiltin
    cold_never,  // TailCall
    cold_never,  // Ret
    cold_branch, // Branch (only sparse Switch routes here)
    cold_arith,  // Arith (only Select/Mask route here)
    cold_never,  // Move
    cold_global, // Global
    cold_never,  // Trap
    cold_never,  // FusedCmpBr
    cold_never,  // FusedConstCmpBr
    cold_never,  // FusedConstBin
    cold_never,  // FusedBinRet
    cold_never,  // FusedMovRet
    cold_never,  // FusedConstRet
    cold_never,  // FusedProjInc
    cold_never,  // FusedCallBuiltinRet
    cold_never,  // FusedConstructRet
    cold_never,  // FusedSwitchDense
    cold_never,  // FusedDec2
    cold_never,  // FusedProjInc2
    cold_never,  // FusedDec4
    cold_never,  // FusedProjInc2Dec
];

/// Runs `entry` of a pre-decoded program under explicit [`ExecOptions`]
/// and renders the result.
///
/// # Errors
///
/// See [`Vm::run`].
pub fn run_decoded_with(
    program: &DecodedProgram,
    entry: &str,
    max_steps: u64,
    exec: ExecOptions,
) -> Result<RunOutcome, VmError> {
    let mut vm = Vm::with_options(program, max_steps, exec);
    let result = vm.run(entry)?;
    let rendered = vm.heap.render(result);
    vm.heap.dec(result);
    Ok(RunOutcome {
        rendered,
        stats: vm.stats(),
        vm_stats: vm.statistics(),
    })
}

/// Runs `entry` of a pre-decoded program and renders the result (default
/// execution options: threaded dispatch, inline caches on).
///
/// # Errors
///
/// See [`Vm::run`].
pub fn run_decoded(
    program: &DecodedProgram,
    entry: &str,
    max_steps: u64,
) -> Result<RunOutcome, VmError> {
    run_decoded_with(program, entry, max_steps, ExecOptions::default())
}

/// Decodes `program` under `decode` (memoized per program, see
/// [`CompiledProgram::decoded`]), then runs `entry` under `exec` and
/// renders the result — the fully-parameterized entry point behind the
/// `--dispatch`/`--no-inline-cache`/`--no-renumber`/`--no-fuse` knobs.
///
/// # Errors
///
/// See [`Vm::run`].
pub fn run_program_opts(
    program: &CompiledProgram,
    entry: &str,
    max_steps: u64,
    decode: DecodeOptions,
    exec: ExecOptions,
) -> Result<RunOutcome, VmError> {
    run_decoded_with(&program.decoded(decode), entry, max_steps, exec)
}

/// Decodes `program` under `opts` (memoized per program, see
/// [`CompiledProgram::decoded`]), then runs `entry` and renders the result.
///
/// # Errors
///
/// See [`Vm::run`].
pub fn run_program_with(
    program: &CompiledProgram,
    entry: &str,
    max_steps: u64,
    opts: DecodeOptions,
) -> Result<RunOutcome, VmError> {
    run_program_opts(program, entry, max_steps, opts, ExecOptions::default())
}

/// [`run_program_with`] under the default decode options (fusion on).
///
/// # Errors
///
/// See [`Vm::run`].
pub fn run_program(
    program: &CompiledProgram,
    entry: &str,
    max_steps: u64,
) -> Result<RunOutcome, VmError> {
    run_program_with(program, entry, max_steps, DecodeOptions::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bytecode::{BinOp, CmpPred, CompiledFn, CompiledProgram, Instr};
    use crate::decode::decode_program;

    fn single(code: Vec<Instr>, n_regs: u16) -> CompiledProgram {
        CompiledProgram {
            fns: vec![CompiledFn {
                name: "main".into(),
                arity: 0,
                n_regs,
                code,
            }],
            ..CompiledProgram::default()
        }
    }

    /// `loop(n): if n == 0 ret 7 else tail loop(n-1)` — every iteration is
    /// pure arith + one builtin, so the steady state allocates nothing.
    fn tail_loop(n: i64) -> CompiledProgram {
        CompiledProgram {
            fns: vec![
                CompiledFn {
                    name: "main".into(),
                    arity: 0,
                    n_regs: 2,
                    code: vec![
                        Instr::LpInt { dst: Reg(0), v: n },
                        Instr::Call {
                            dst: Reg(1),
                            func: 1,
                            args: vec![Reg(0)],
                        },
                        Instr::Ret { src: Reg(1) },
                    ],
                },
                CompiledFn {
                    name: "loop".into(),
                    arity: 1,
                    n_regs: 4,
                    code: vec![
                        Instr::GetLabel {
                            dst: Reg(1),
                            src: Reg(0),
                        },
                        Instr::ConstInt { dst: Reg(2), v: 0 },
                        Instr::Cmp {
                            pred: CmpPred::Eq,
                            dst: Reg(2),
                            a: Reg(1),
                            b: Reg(2),
                        },
                        Instr::Branch {
                            cond: Reg(2),
                            then_t: 4,
                            else_t: 6,
                        },
                        Instr::LpInt { dst: Reg(3), v: 7 },
                        Instr::Ret { src: Reg(3) },
                        Instr::LpInt { dst: Reg(2), v: 1 },
                        Instr::CallBuiltin {
                            dst: Reg(3),
                            builtin: lssa_rt::Builtin::NatSub,
                            args: vec![Reg(0), Reg(2)],
                            mask: 0,
                        },
                        Instr::TailCall {
                            func: 1,
                            args: vec![Reg(3)],
                        },
                    ],
                },
            ],
            ..CompiledProgram::default()
        }
    }

    #[test]
    fn returns_scalar() {
        let p = single(
            vec![
                Instr::LpInt { dst: Reg(0), v: 42 },
                Instr::Ret { src: Reg(0) },
            ],
            1,
        );
        let out = run_program(&p, "main", 1000).unwrap();
        assert_eq!(out.rendered, "42");
        // LpInt + Ret fuse into a single ConstRet superinstruction.
        assert_eq!(out.stats.instructions, 1);
        assert_eq!(out.vm_stats.executed_of(OpClass::FusedConstRet), 1);
        assert_eq!(out.vm_stats.fused_cells, 1);
        // The unfused stream executes the two original cells.
        let unfused = run_program_with(&p, "main", 1000, DecodeOptions::no_fuse()).unwrap();
        assert_eq!(unfused.rendered, "42");
        assert_eq!(unfused.stats.instructions, 2);
        assert_eq!(unfused.vm_stats.executed_of(OpClass::Const), 1);
        assert_eq!(unfused.vm_stats.executed_of(OpClass::Ret), 1);
        assert_eq!(unfused.vm_stats.fused_cells, 0);
    }

    #[test]
    fn arithmetic_and_branching() {
        // if (2 < 3) then 10 else 20
        let p = single(
            vec![
                Instr::ConstInt { dst: Reg(0), v: 2 },
                Instr::ConstInt { dst: Reg(1), v: 3 },
                Instr::Cmp {
                    pred: CmpPred::Slt,
                    dst: Reg(2),
                    a: Reg(0),
                    b: Reg(1),
                },
                Instr::Branch {
                    cond: Reg(2),
                    then_t: 4,
                    else_t: 6,
                },
                Instr::LpInt { dst: Reg(3), v: 10 },
                Instr::Ret { src: Reg(3) },
                Instr::LpInt { dst: Reg(3), v: 20 },
                Instr::Ret { src: Reg(3) },
            ],
            4,
        );
        assert_eq!(run_program(&p, "main", 1000).unwrap().rendered, "10");
    }

    #[test]
    fn tail_call_uses_constant_stack() {
        let p = tail_loop(1_000_000);
        let d = decode_program(&p);
        let mut vm = Vm::new(&d, 100_000_000);
        let r = vm.run("main").unwrap();
        assert_eq!(vm.heap.render(r), "7");
        assert!(vm.stats().max_stack <= 2, "tail calls must not grow stack");
    }

    #[test]
    fn deep_tail_recursion_keeps_frame_pool_constant() {
        // The frame-pool high-water mark and the number of fresh frame
        // allocations must not depend on recursion depth: only `main` and
        // one `loop` frame ever exist, however deep the tail recursion.
        let shallow = run_program(&tail_loop(1_000), "main", 100_000_000).unwrap();
        let deep = run_program(&tail_loop(1_000_000), "main", 100_000_000).unwrap();
        for out in [&shallow, &deep] {
            assert_eq!(out.vm_stats.max_depth, 2);
            assert_eq!(out.vm_stats.frame_allocs, 2);
        }
        assert_eq!(
            deep.vm_stats.tail_frame_reuses, 1_000_000,
            "every iteration reuses the frame in place"
        );
        // The tail-call fast path performs zero heap allocations per
        // iteration: a run 1000x deeper allocates not one object more.
        assert_eq!(deep.vm_stats.heap.allocs, shallow.vm_stats.heap.allocs);
        assert_eq!(
            deep.vm_stats.allocs_of(OpClass::TailCall),
            0,
            "tail calls never touch the heap"
        );
    }

    #[test]
    fn closure_via_pap_extend() {
        // add(a, b) = a + b ; main: c = pap add [10]; papextend c [32]
        let p = CompiledProgram {
            fns: vec![
                CompiledFn {
                    name: "main".into(),
                    arity: 0,
                    n_regs: 3,
                    code: vec![
                        Instr::LpInt { dst: Reg(0), v: 10 },
                        Instr::Pap {
                            dst: Reg(1),
                            func: 1,
                            arity: 2,
                            args: vec![Reg(0)],
                        },
                        Instr::LpInt { dst: Reg(2), v: 32 },
                        Instr::PapExtend {
                            dst: Reg(0),
                            closure: Reg(1),
                            args: vec![Reg(2)],
                        },
                        Instr::Ret { src: Reg(0) },
                    ],
                },
                CompiledFn {
                    name: "add".into(),
                    arity: 2,
                    n_regs: 3,
                    code: vec![
                        Instr::CallBuiltin {
                            dst: Reg(2),
                            builtin: lssa_rt::Builtin::NatAdd,
                            args: vec![Reg(0), Reg(1)],
                            mask: 0,
                        },
                        Instr::Ret { src: Reg(2) },
                    ],
                },
            ],
            ..CompiledProgram::default()
        };
        let out = run_program(&p, "main", 1000).unwrap();
        assert_eq!(out.rendered, "42");
        assert!(out.vm_stats.allocs_of(OpClass::Closure) >= 1);
    }

    /// Like [`tail_loop`], but the self-call is non-tail (the countdown
    /// result returns through a register), so the site keeps its cache
    /// slot — tail sites no longer get one.
    fn call_loop(n: i64) -> CompiledProgram {
        CompiledProgram {
            fns: vec![
                CompiledFn {
                    name: "main".into(),
                    arity: 0,
                    n_regs: 2,
                    code: vec![
                        Instr::LpInt { dst: Reg(0), v: n },
                        Instr::Call {
                            dst: Reg(1),
                            func: 1,
                            args: vec![Reg(0)],
                        },
                        Instr::Ret { src: Reg(1) },
                    ],
                },
                CompiledFn {
                    name: "loop".into(),
                    arity: 1,
                    n_regs: 4,
                    code: vec![
                        Instr::GetLabel {
                            dst: Reg(1),
                            src: Reg(0),
                        },
                        Instr::ConstInt { dst: Reg(2), v: 0 },
                        Instr::Cmp {
                            pred: CmpPred::Eq,
                            dst: Reg(2),
                            a: Reg(1),
                            b: Reg(2),
                        },
                        Instr::Branch {
                            cond: Reg(2),
                            then_t: 4,
                            else_t: 6,
                        },
                        Instr::LpInt { dst: Reg(3), v: 7 },
                        Instr::Ret { src: Reg(3) },
                        Instr::LpInt { dst: Reg(2), v: 1 },
                        Instr::CallBuiltin {
                            dst: Reg(3),
                            builtin: lssa_rt::Builtin::NatSub,
                            args: vec![Reg(0), Reg(2)],
                            mask: 0,
                        },
                        Instr::Call {
                            dst: Reg(3),
                            func: 1,
                            args: vec![Reg(3)],
                        },
                        Instr::Ret { src: Reg(3) },
                    ],
                },
            ],
            ..CompiledProgram::default()
        }
    }

    #[test]
    fn inline_caches_hit_on_monomorphic_sites() {
        // The non-tail loop's call sites each bind one target, so after
        // the first-execution miss every deeper call must hit — and
        // switching the caches off must change the counters and nothing
        // else.
        let p = call_loop(1_000);
        let run = |cache: bool| {
            run_program_opts(
                &p,
                "main",
                1_000_000,
                DecodeOptions::default(),
                ExecOptions::default().with_inline_cache(cache),
            )
            .unwrap()
        };
        let cached = run(true);
        let uncached = run(false);
        assert_eq!(cached.rendered, "7");
        assert_eq!(cached.rendered, uncached.rendered);
        assert_eq!(cached.stats.instructions, uncached.stats.instructions);
        assert_eq!(uncached.vm_stats.cache_hits, 0);
        assert_eq!(uncached.vm_stats.cache_misses, 0);
        assert!(
            cached.vm_stats.cache_hits >= 999,
            "the monomorphic call site must hit on all but its first execution (got {})",
            cached.vm_stats.cache_hits
        );
        assert!(
            cached.vm_stats.cache_misses <= 3,
            "only first executions may miss (got {})",
            cached.vm_stats.cache_misses
        );
    }

    #[test]
    fn tail_call_sites_probe_no_cache() {
        // Tail-call cells are skipped by cache-slot assignment (static
        // target — a probe buys nothing), so a pure tail loop's only
        // recorded probe is main's entry call missing once.
        let out = run_program(&tail_loop(1_000), "main", 1_000_000).unwrap();
        assert_eq!(out.rendered, "7");
        assert_eq!(out.vm_stats.cache_hits, 0, "tail sites must not probe");
        assert_eq!(
            out.vm_stats.cache_misses, 1,
            "only main's entry call takes a first-execution miss"
        );
    }

    /// `apply5(c) = papextend c [5]`, called with closures over `twice`
    /// and optionally `inc` — one papextend site, one or two targets.
    fn papextend_site(second_target: u32) -> CompiledProgram {
        CompiledProgram {
            fns: vec![
                CompiledFn {
                    name: "main".into(),
                    arity: 0,
                    n_regs: 3,
                    code: vec![
                        Instr::Pap {
                            dst: Reg(0),
                            func: 2,
                            arity: 1,
                            args: vec![],
                        },
                        Instr::Call {
                            dst: Reg(1),
                            func: 1,
                            args: vec![Reg(0)],
                        },
                        Instr::Pap {
                            dst: Reg(0),
                            func: second_target,
                            arity: 1,
                            args: vec![],
                        },
                        Instr::Call {
                            dst: Reg(2),
                            func: 1,
                            args: vec![Reg(0)],
                        },
                        Instr::CallBuiltin {
                            dst: Reg(0),
                            builtin: lssa_rt::Builtin::NatAdd,
                            args: vec![Reg(1), Reg(2)],
                            mask: 0,
                        },
                        Instr::Ret { src: Reg(0) },
                    ],
                },
                CompiledFn {
                    name: "apply5".into(),
                    arity: 1,
                    n_regs: 3,
                    code: vec![
                        Instr::LpInt { dst: Reg(1), v: 5 },
                        Instr::PapExtend {
                            dst: Reg(2),
                            closure: Reg(0),
                            args: vec![Reg(1)],
                        },
                        Instr::Ret { src: Reg(2) },
                    ],
                },
                CompiledFn {
                    name: "twice".into(),
                    arity: 1,
                    n_regs: 2,
                    code: vec![
                        Instr::CallBuiltin {
                            dst: Reg(1),
                            builtin: lssa_rt::Builtin::NatAdd,
                            args: vec![Reg(0), Reg(0)],
                            mask: 0,
                        },
                        Instr::Ret { src: Reg(1) },
                    ],
                },
                CompiledFn {
                    name: "inc".into(),
                    arity: 1,
                    n_regs: 3,
                    code: vec![
                        Instr::LpInt { dst: Reg(1), v: 1 },
                        Instr::CallBuiltin {
                            dst: Reg(2),
                            builtin: lssa_rt::Builtin::NatAdd,
                            args: vec![Reg(0), Reg(1)],
                            mask: 0,
                        },
                        Instr::Ret { src: Reg(2) },
                    ],
                },
            ],
            ..CompiledProgram::default()
        }
    }

    #[test]
    fn papextend_cache_distinguishes_mono_from_polymorphic_sites() {
        // Same closure shape twice: the papextend site misses once, then
        // hits. Cache sites executed: main's two `Call`s (one miss each)
        // and the papextend (miss + hit).
        let mono = run_program(&papextend_site(2), "main", 1000).unwrap();
        assert_eq!(mono.rendered, "20");
        assert_eq!(mono.vm_stats.cache_hits, 1);
        assert_eq!(mono.vm_stats.cache_misses, 3);
        // Two different targets through the one site: the second probe
        // sees a different function and must fall back to the runtime's
        // generic path — no stale-target call, one extra miss.
        let poly = run_program(&papextend_site(3), "main", 1000).unwrap();
        assert_eq!(poly.rendered, "16");
        assert_eq!(poly.vm_stats.cache_hits, 0);
        assert_eq!(poly.vm_stats.cache_misses, 4);
    }

    #[test]
    fn step_budget_enforced() {
        let p = single(vec![Instr::Jump { target: 0 }], 1);
        let e = run_program(&p, "main", 100).unwrap_err();
        assert!(e.message.contains("step budget"));
    }

    #[test]
    fn trap_reports_function() {
        let p = single(vec![Instr::Trap], 1);
        let e = run_program(&p, "main", 100).unwrap_err();
        assert!(e.message.contains("unreachable"), "{e}");
        assert!(e.message.contains("main"), "{e}");
    }

    #[test]
    fn division_by_zero_traps() {
        let p = single(
            vec![
                Instr::ConstInt { dst: Reg(0), v: 1 },
                Instr::ConstInt { dst: Reg(1), v: 0 },
                Instr::Bin {
                    op: BinOp::Div,
                    dst: Reg(0),
                    a: Reg(0),
                    b: Reg(1),
                },
                Instr::Ret { src: Reg(0) },
            ],
            2,
        );
        let e = run_program(&p, "main", 100).unwrap_err();
        assert!(e.message.contains("division"), "{e}");
    }

    #[test]
    fn globals_round_trip() {
        let mut p = single(
            vec![
                Instr::LpInt { dst: Reg(0), v: 5 },
                Instr::GlobalStore {
                    idx: 0,
                    src: Reg(0),
                },
                Instr::GlobalLoad {
                    dst: Reg(1),
                    idx: 0,
                },
                Instr::Ret { src: Reg(1) },
            ],
            2,
        );
        p.globals.push("slot".into());
        assert_eq!(run_program(&p, "main", 100).unwrap().rendered, "5");
    }

    #[test]
    fn vm_is_reusable_after_an_error() {
        // An errored run leaves no residue: the same VM can run again and
        // its frame pool is intact.
        let p = CompiledProgram {
            fns: vec![
                CompiledFn {
                    name: "main".into(),
                    arity: 0,
                    n_regs: 1,
                    code: vec![
                        Instr::LpInt { dst: Reg(0), v: 3 },
                        Instr::Ret { src: Reg(0) },
                    ],
                },
                CompiledFn {
                    name: "boom".into(),
                    arity: 0,
                    n_regs: 1,
                    code: vec![Instr::Trap],
                },
            ],
            ..CompiledProgram::default()
        };
        let d = decode_program(&p);
        let mut vm = Vm::new(&d, 1000);
        assert!(vm.run("boom").is_err());
        let r = vm.run("main").unwrap();
        assert_eq!(vm.heap.render(r), "3");
    }

    #[test]
    fn statistics_table_renders() {
        let out = run_program(&tail_loop(10), "main", 100_000).unwrap();
        let table = out.vm_stats.render_table();
        for needle in ["opcode class", "tail-call", "frames:", "heap:"] {
            assert!(table.contains(needle), "missing {needle}\n{table}");
        }
    }

    // ---- resource governance & fault injection ---------------------------

    /// `rec(n): if n == 0 ret 7 else ret 1 + rec(n - 1)` — a non-tail
    /// recursion whose frame depth grows with `n`.
    fn deep_recursion(n: i64) -> CompiledProgram {
        CompiledProgram {
            fns: vec![
                CompiledFn {
                    name: "main".into(),
                    arity: 0,
                    n_regs: 2,
                    code: vec![
                        Instr::LpInt { dst: Reg(0), v: n },
                        Instr::Call {
                            dst: Reg(1),
                            func: 1,
                            args: vec![Reg(0)],
                        },
                        Instr::Ret { src: Reg(1) },
                    ],
                },
                CompiledFn {
                    name: "rec".into(),
                    arity: 1,
                    n_regs: 4,
                    code: vec![
                        Instr::GetLabel {
                            dst: Reg(1),
                            src: Reg(0),
                        },
                        Instr::ConstInt { dst: Reg(2), v: 0 },
                        Instr::Cmp {
                            pred: CmpPred::Eq,
                            dst: Reg(2),
                            a: Reg(1),
                            b: Reg(2),
                        },
                        Instr::Branch {
                            cond: Reg(2),
                            then_t: 4,
                            else_t: 6,
                        },
                        Instr::LpInt { dst: Reg(3), v: 7 },
                        Instr::Ret { src: Reg(3) },
                        Instr::LpInt { dst: Reg(2), v: 1 },
                        Instr::CallBuiltin {
                            dst: Reg(3),
                            builtin: lssa_rt::Builtin::NatSub,
                            args: vec![Reg(0), Reg(2)],
                            mask: 0,
                        },
                        Instr::Call {
                            dst: Reg(3),
                            func: 1,
                            args: vec![Reg(3)],
                        },
                        Instr::LpInt { dst: Reg(2), v: 1 },
                        Instr::CallBuiltin {
                            dst: Reg(3),
                            builtin: lssa_rt::Builtin::NatAdd,
                            args: vec![Reg(2), Reg(3)],
                            mask: 0,
                        },
                        Instr::Ret { src: Reg(3) },
                    ],
                },
            ],
            ..CompiledProgram::default()
        }
    }

    /// `build(n, acc): if n == 0 ret acc else tail build(n-1, Cons(n, acc))`
    /// — allocates one constructor cell per iteration.
    fn alloc_loop(n: i64) -> CompiledProgram {
        CompiledProgram {
            fns: vec![
                CompiledFn {
                    name: "main".into(),
                    arity: 0,
                    n_regs: 3,
                    code: vec![
                        Instr::LpInt { dst: Reg(0), v: n },
                        Instr::Construct {
                            dst: Reg(1),
                            tag: 0,
                            args: vec![],
                        },
                        Instr::Call {
                            dst: Reg(2),
                            func: 1,
                            args: vec![Reg(0), Reg(1)],
                        },
                        Instr::Ret { src: Reg(2) },
                    ],
                },
                CompiledFn {
                    name: "build".into(),
                    arity: 2,
                    n_regs: 5,
                    code: vec![
                        Instr::GetLabel {
                            dst: Reg(2),
                            src: Reg(0),
                        },
                        Instr::ConstInt { dst: Reg(3), v: 0 },
                        Instr::Cmp {
                            pred: CmpPred::Eq,
                            dst: Reg(3),
                            a: Reg(2),
                            b: Reg(3),
                        },
                        Instr::Branch {
                            cond: Reg(3),
                            then_t: 4,
                            else_t: 5,
                        },
                        Instr::Ret { src: Reg(1) },
                        Instr::Construct {
                            dst: Reg(4),
                            tag: 1,
                            args: vec![Reg(0), Reg(1)],
                        },
                        Instr::LpInt { dst: Reg(3), v: 1 },
                        Instr::CallBuiltin {
                            dst: Reg(3),
                            builtin: lssa_rt::Builtin::NatSub,
                            args: vec![Reg(0), Reg(3)],
                            mask: 0,
                        },
                        Instr::TailCall {
                            func: 1,
                            args: vec![Reg(3), Reg(4)],
                        },
                    ],
                },
            ],
            ..CompiledProgram::default()
        }
    }

    fn both_dispatch_modes() -> [ExecOptions; 2] {
        [
            ExecOptions::default().with_dispatch(DispatchMode::Match),
            ExecOptions::default().with_dispatch(DispatchMode::Threaded),
        ]
    }

    #[test]
    fn step_budget_error_is_structured() {
        let p = single(vec![Instr::Jump { target: 0 }], 1);
        let d = decode_program(&p);
        for opts in both_dispatch_modes() {
            let mut vm = Vm::with_options(&d, 100, opts);
            let e = vm.run("main").unwrap_err();
            assert_eq!(e.kind, VmErrorKind::StepBudget);
            assert_eq!(e.message, lssa_rt::STEP_BUDGET_MSG);
            assert_eq!(vm.stats().instructions, 100, "fails exactly at budget");
        }
    }

    #[test]
    fn limits_steps_tightens_the_constructor_budget() {
        let p = single(vec![Instr::Jump { target: 0 }], 1);
        let d = decode_program(&p);
        let opts = ExecOptions::default().with_limits(JobLimits::default().with_steps(37));
        let mut vm = Vm::with_options(&d, 1_000_000, opts);
        let e = vm.run("main").unwrap_err();
        assert_eq!(e.kind, VmErrorKind::StepBudget);
        assert_eq!(vm.stats().instructions, 37);
    }

    #[test]
    fn heap_budget_aborts_and_purge_rebalances() {
        let d = decode_program(&alloc_loop(1_000_000));
        for opts in both_dispatch_modes() {
            let opts = opts.with_limits(JobLimits::default().with_heap_bytes(4096));
            let mut vm = Vm::with_options(&d, u64::MAX, opts);
            let e = vm.run("main").unwrap_err();
            assert_eq!(e.kind, VmErrorKind::HeapBudget, "{e}");
            let stats = vm.heap.stats();
            assert!(stats.live > 0, "abort leaves the list alive");
            assert_eq!(stats.live, vm.heap.live_objects());
            vm.purge();
            let after = vm.heap.stats();
            assert_eq!(after.live, 0);
            assert_eq!(after.allocs, after.frees, "drop-all must balance");
        }
    }

    #[test]
    fn depth_budget_identical_across_dispatch_modes() {
        let d = decode_program(&deep_recursion(1_000_000));
        let mut reference = None;
        for opts in both_dispatch_modes() {
            let opts = opts.with_limits(JobLimits::default().with_max_depth(64));
            let mut vm = Vm::with_options(&d, u64::MAX, opts);
            let e = vm.run("main").unwrap_err();
            assert_eq!(e.kind, VmErrorKind::DepthBudget, "{e}");
            let steps = vm.stats().instructions;
            match reference {
                None => reference = Some((e, steps)),
                Some((ref re, rs)) => {
                    assert_eq!(*re, e);
                    assert_eq!(rs, steps, "modes must fail at the same step");
                }
            }
            // Within budget the same VM still works after the abort.
            vm.purge();
            assert!(vm.heap.stats().live == 0);
        }
    }

    #[test]
    fn cancel_token_aborts_within_a_poll_interval() {
        let p = single(vec![Instr::Jump { target: 0 }], 1);
        let d = decode_program(&p);
        let token = CancelToken::new();
        token.cancel();
        let mut vm = Vm::new(&d, u64::MAX);
        vm.set_cancel_token(token);
        let e = vm.run("main").unwrap_err();
        assert_eq!(e.kind, VmErrorKind::Cancelled);
        assert!(vm.stats().instructions <= POLL_INTERVAL);
    }

    #[test]
    fn planned_cancellation_is_deterministic() {
        let p = single(vec![Instr::Jump { target: 0 }], 1);
        let d = decode_program(&p);
        for opts in both_dispatch_modes() {
            let opts = opts.with_fault(FaultPlan {
                cancel_at: Some(5000),
                ..FaultPlan::default()
            });
            let mut vm = Vm::with_options(&d, u64::MAX, opts);
            let e = vm.run("main").unwrap_err();
            assert_eq!(e.kind, VmErrorKind::Cancelled);
            assert_eq!(vm.stats().instructions, 5000);
        }
    }

    #[test]
    fn zero_deadline_trips_at_first_checkpoint() {
        let p = single(vec![Instr::Jump { target: 0 }], 1);
        let d = decode_program(&p);
        let opts = ExecOptions::default()
            .with_limits(JobLimits::default().with_deadline(Some(Duration::ZERO)));
        let mut vm = Vm::with_options(&d, u64::MAX, opts);
        let e = vm.run("main").unwrap_err();
        assert_eq!(e.kind, VmErrorKind::Deadline);
        assert_eq!(vm.stats().instructions, POLL_INTERVAL);
    }

    #[test]
    fn planted_panic_fires_and_vm_survives() {
        let p = single(vec![Instr::Jump { target: 0 }], 1);
        let d = decode_program(&p);
        let opts = ExecOptions::default().with_fault(FaultPlan {
            panic_at: Some(2048),
            ..FaultPlan::default()
        });
        let mut vm = Vm::with_options(&d, u64::MAX, opts);
        let caught =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| vm.run("main"))).unwrap_err();
        let msg = caught
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| caught.downcast_ref::<&str>().map(|s| (*s).to_string()))
            .unwrap_or_default();
        assert!(msg.contains("planted panic at step 2048"), "{msg}");
        // The VM object itself survived: purge and probe it.
        vm.purge();
        assert_eq!(vm.heap.stats().live, 0);
        vm.clear_fault();
        vm.set_step_budget(vm.stats().instructions + 10);
        let e = vm.run("main").unwrap_err();
        assert_eq!(e.kind, VmErrorKind::StepBudget, "probe hits the budget");
    }

    #[test]
    fn exhaust_at_forces_step_budget() {
        let d = decode_program(&tail_loop(1_000_000));
        let opts = ExecOptions::default().with_fault(FaultPlan {
            exhaust_at: Some(1234),
            ..FaultPlan::default()
        });
        let mut vm = Vm::with_options(&d, u64::MAX, opts);
        let e = vm.run("main").unwrap_err();
        assert_eq!(e.kind, VmErrorKind::StepBudget);
        assert_eq!(vm.stats().instructions, 1234);
    }

    #[test]
    fn governed_success_is_unchanged() {
        // Limits far above what the program needs: result and statistics
        // must be identical to the ungoverned run.
        let d = decode_program(&tail_loop(500));
        let plain = {
            let mut vm = Vm::new(&d, u64::MAX);
            let r = vm.run("main").unwrap();
            let rendered = vm.heap.render(r);
            vm.heap.dec(r);
            (rendered, vm.stats().instructions)
        };
        let limits = JobLimits::default()
            .with_steps(1_000_000)
            .with_heap_bytes(1 << 20)
            .with_max_depth(1 << 20);
        let mut vm = Vm::with_options(&d, u64::MAX, ExecOptions::default().with_limits(limits));
        let r = vm.run("main").unwrap();
        assert_eq!(vm.heap.render(r), plain.0);
        vm.heap.dec(r);
        assert_eq!(vm.stats().instructions, plain.1);
        assert_eq!(vm.heap.stats().live, 0);
    }
}
