//! The function-body arena: operations, blocks, regions, and SSA values.
//!
//! All IR entities of one function live in a single [`Body`] and are
//! addressed by typed indices ([`OpId`], [`BlockId`], [`RegionId`],
//! [`ValueId`]). Region 0 is the function's root region; its first block is
//! the entry block, whose arguments are the function parameters.
//!
//! Erased operations leave tombstones (the arena never shrinks); the
//! printer, verifier, and walkers skip them, and the body maintains a
//! lazily-compacted live-op index so use-scans ([`Body::replace_all_uses`],
//! [`Body::use_counts`], [`Body::users_of`]) stop paying for tombstones
//! shortly after erasure instead of rescanning the whole arena forever.
//!
//! Per-op lists (operands, results, successors, regions, attributes) use
//! [`InlineVec`] storage: small lists — the overwhelmingly common case —
//! live inside `OpData` itself, so building or cloning an op does not
//! allocate.

use crate::attr::{Attr, AttrKey};
use crate::ids::{BlockId, OpId, RegionId, ValueId};
use crate::inline_vec::InlineVec;
use crate::opcode::Opcode;
use crate::types::Type;
use std::collections::HashMap;

/// Operand list storage: binary arithmetic plus most `lp` ops fit inline.
pub type OperandList = InlineVec<ValueId, 4>;
/// Result list storage: every op in the dialect set has zero or one result.
pub type ResultList = InlineVec<ValueId, 2>;
/// Successor list storage: `cf.cond_br` fits inline; jump tables spill.
pub type SuccessorList = InlineVec<Successor, 2>;
/// Nested-region list storage: only `rgn.val` carries a region.
pub type RegionList = InlineVec<RegionId, 1>;
/// Attribute list storage: ops carry at most one attribute today.
pub type AttrList = InlineVec<(AttrKey, Attr), 1>;
/// Successor-argument storage (block-parameter arguments on a CFG edge).
pub type SuccessorArgs = InlineVec<ValueId, 2>;

/// A CFG edge target: destination block plus the arguments passed to its
/// block parameters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Successor {
    /// Destination block.
    pub block: BlockId,
    /// Arguments for the destination's block parameters.
    pub args: SuccessorArgs,
}

impl Successor {
    /// An edge with no arguments.
    pub fn new(block: BlockId) -> Successor {
        Successor {
            block,
            args: SuccessorArgs::new(),
        }
    }

    /// An edge passing `args`.
    pub fn with_args(block: BlockId, args: Vec<ValueId>) -> Successor {
        Successor {
            block,
            args: args.into(),
        }
    }
}

/// Where a value is defined.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ValueDef {
    /// The `idx`-th result of an operation.
    OpResult(OpId, u32),
    /// The `idx`-th argument of a block.
    BlockArg(BlockId, u32),
}

/// Data for an SSA value.
#[derive(Debug, Clone)]
pub struct ValueData {
    /// The value's type.
    pub ty: Type,
    /// The definition site.
    pub def: ValueDef,
}

/// Data for an operation.
#[derive(Debug, Clone)]
pub struct OpData {
    /// The operation code.
    pub opcode: Opcode,
    /// SSA operands.
    pub operands: OperandList,
    /// SSA results.
    pub results: ResultList,
    /// Attached compile-time attributes.
    pub attrs: AttrList,
    /// Nested regions.
    pub regions: RegionList,
    /// CFG successors (terminators only).
    pub successors: SuccessorList,
    /// Owning block (`None` while detached or erased).
    pub parent: Option<BlockId>,
    /// Tombstone flag.
    pub dead: bool,
}

impl OpData {
    /// Looks up an attribute by key.
    pub fn attr(&self, key: AttrKey) -> Option<&Attr> {
        self.attrs.iter().find(|(k, _)| *k == key).map(|(_, a)| a)
    }

    /// The single result, if the op has exactly one.
    pub fn result(&self) -> Option<ValueId> {
        match self.results.as_slice() {
            [r] => Some(*r),
            _ => None,
        }
    }
}

/// Data for a basic block.
#[derive(Debug, Clone, Default)]
pub struct BlockData {
    /// Block arguments (φ-equivalents).
    pub args: Vec<ValueId>,
    /// Operations in order; the last must be a terminator in valid IR.
    pub ops: Vec<OpId>,
    /// Owning region.
    pub parent: Option<RegionId>,
}

/// Data for a region: a nested, single-entry sub-CFG.
#[derive(Debug, Clone, Default)]
pub struct RegionData {
    /// Blocks; the first is the region's entry.
    pub blocks: Vec<BlockId>,
    /// The op owning this region (`None` for the function root region).
    pub parent: Option<OpId>,
}

/// The arena holding one function's IR.
#[derive(Debug, Clone, Default)]
pub struct Body {
    /// Operation arena (with tombstones).
    pub ops: Vec<OpData>,
    /// Block arena.
    pub blocks: Vec<BlockData>,
    /// Region arena. Index 0 is the function root.
    pub regions: Vec<RegionData>,
    /// Value arena.
    pub values: Vec<ValueData>,
    /// Live-op index: ids of non-tombstoned ops, ascending, compacted
    /// lazily (at most 50% tombstones). Maintained by [`Body::create_op`]
    /// / [`Body::erase_op`] so whole-body scans skip tombstones without
    /// walking the arena (see [`Body::live_ops`]).
    live: Vec<OpId>,
    /// Tombstones currently sitting in `live` awaiting compaction.
    live_tombstones: usize,
}

/// The root region of every function body.
pub const ROOT_REGION: RegionId = RegionId(0);

impl Body {
    /// Creates a body with a root region and an entry block whose arguments
    /// have types `params`. Returns the body and the parameter values.
    pub fn new(params: &[Type]) -> (Body, Vec<ValueId>) {
        let mut body = Body::default();
        let root = body.new_region_detached();
        debug_assert_eq!(root, ROOT_REGION);
        let entry = body.new_block(root, params);
        let args = body.blocks[entry.index()].args.clone();
        (body, args)
    }

    /// The entry block of the root region.
    pub fn entry_block(&self) -> BlockId {
        self.regions[ROOT_REGION.index()].blocks[0]
    }

    /// The function parameters (entry block arguments).
    pub fn params(&self) -> &[ValueId] {
        &self.blocks[self.entry_block().index()].args
    }

    // ---- creation --------------------------------------------------------

    fn new_region_detached(&mut self) -> RegionId {
        let id = RegionId(self.regions.len() as u32);
        self.regions.push(RegionData::default());
        id
    }

    /// Creates a new region owned by `op` (appended to the op's region list).
    pub fn new_region(&mut self, op: OpId) -> RegionId {
        let id = self.new_region_detached();
        self.regions[id.index()].parent = Some(op);
        self.ops[op.index()].regions.push(id);
        id
    }

    /// Creates a new block with arguments of the given types, appended to
    /// `region`. Returns the block id.
    pub fn new_block(&mut self, region: RegionId, arg_tys: &[Type]) -> BlockId {
        let id = BlockId(self.blocks.len() as u32);
        self.blocks.push(BlockData {
            args: Vec::new(),
            ops: Vec::new(),
            parent: Some(region),
        });
        for (i, &ty) in arg_tys.iter().enumerate() {
            let v = self.new_value(ty, ValueDef::BlockArg(id, i as u32));
            self.blocks[id.index()].args.push(v);
        }
        self.regions[region.index()].blocks.push(id);
        id
    }

    fn new_value(&mut self, ty: Type, def: ValueDef) -> ValueId {
        let id = ValueId(self.values.len() as u32);
        self.values.push(ValueData { ty, def });
        id
    }

    /// Adds an extra argument to a block, returning the new value.
    pub fn add_block_arg(&mut self, block: BlockId, ty: Type) -> ValueId {
        let idx = self.blocks[block.index()].args.len() as u32;
        let v = self.new_value(ty, ValueDef::BlockArg(block, idx));
        self.blocks[block.index()].args.push(v);
        v
    }

    /// Creates a detached operation. Result values are allocated with the
    /// given types. Attach it with [`Body::push_op`] or [`Body::insert_op`].
    ///
    /// `operands` and `attrs` accept both `Vec`s and the inline list types.
    pub fn create_op(
        &mut self,
        opcode: Opcode,
        operands: impl Into<OperandList>,
        result_tys: &[Type],
        attrs: impl Into<AttrList>,
    ) -> OpId {
        let id = OpId(self.ops.len() as u32);
        self.ops.push(OpData {
            opcode,
            operands: operands.into(),
            results: ResultList::new(),
            attrs: attrs.into(),
            regions: RegionList::new(),
            successors: SuccessorList::new(),
            parent: None,
            dead: false,
        });
        // Ids are allocated in ascending order, so a push keeps the live
        // index sorted.
        self.live.push(id);
        for (i, &ty) in result_tys.iter().enumerate() {
            let v = self.new_value(ty, ValueDef::OpResult(id, i as u32));
            self.ops[id.index()].results.push(v);
        }
        id
    }

    /// Appends a detached op to the end of `block`.
    pub fn push_op(&mut self, block: BlockId, op: OpId) {
        debug_assert!(self.ops[op.index()].parent.is_none(), "op already attached");
        self.ops[op.index()].parent = Some(block);
        self.blocks[block.index()].ops.push(op);
    }

    /// Inserts a detached op into `block` at position `idx`.
    pub fn insert_op(&mut self, block: BlockId, idx: usize, op: OpId) {
        debug_assert!(self.ops[op.index()].parent.is_none(), "op already attached");
        self.ops[op.index()].parent = Some(block);
        self.blocks[block.index()].ops.insert(idx, op);
    }

    /// Inserts a detached op immediately before `before` (which must be
    /// attached).
    pub fn insert_op_before(&mut self, before: OpId, op: OpId) {
        let block = self.ops[before.index()].parent.expect("anchor detached");
        let idx = self.op_index_in_block(before);
        self.insert_op(block, idx, op);
    }

    fn op_index_in_block(&self, op: OpId) -> usize {
        let block = self.ops[op.index()].parent.expect("op detached");
        self.blocks[block.index()]
            .ops
            .iter()
            .position(|&o| o == op)
            .expect("op not in its parent block")
    }

    // ---- erasure -----------------------------------------------------------

    /// Detaches `op` from its block without killing it.
    pub fn detach_op(&mut self, op: OpId) {
        if let Some(block) = self.ops[op.index()].parent.take() {
            self.blocks[block.index()].ops.retain(|&o| o != op);
        }
    }

    /// Erases `op` (and, transitively, its nested regions). The caller must
    /// ensure its results have no remaining uses.
    pub fn erase_op(&mut self, op: OpId) {
        self.detach_op(op);
        let regions = std::mem::take(&mut self.ops[op.index()].regions);
        for r in regions {
            self.erase_region_contents(r);
        }
        self.tombstone(op);
    }

    /// Marks `op` dead and clears its edges. The live index is compacted
    /// lazily — eagerly removing each id would make bulk erasure quadratic
    /// — so it may carry up to 50% tombstones, which scans skip via the
    /// `dead` flag.
    fn tombstone(&mut self, op: OpId) {
        let data = &mut self.ops[op.index()];
        if data.dead {
            return;
        }
        data.dead = true;
        data.operands.clear();
        data.successors.clear();
        self.live_tombstones += 1;
        if self.live_tombstones * 2 > self.live.len() {
            let Body { live, ops, .. } = self;
            live.retain(|id| !ops[id.index()].dead);
            self.live_tombstones = 0;
        }
    }

    fn erase_region_contents(&mut self, region: RegionId) {
        let blocks = std::mem::take(&mut self.regions[region.index()].blocks);
        for b in blocks {
            let ops = std::mem::take(&mut self.blocks[b.index()].ops);
            for op in ops {
                self.ops[op.index()].parent = None;
                let nested = std::mem::take(&mut self.ops[op.index()].regions);
                for r in nested {
                    self.erase_region_contents(r);
                }
                self.tombstone(op);
            }
            self.blocks[b.index()].parent = None;
        }
    }

    /// Detaches a region from its owning op (for region transfer during
    /// lowering). The region stays alive; re-attach with
    /// [`Body::attach_region`].
    pub fn detach_region(&mut self, region: RegionId) {
        if let Some(op) = self.regions[region.index()].parent.take() {
            self.ops[op.index()].regions.retain(|&r| r != region);
        }
    }

    /// Attaches a detached region to `op`.
    pub fn attach_region(&mut self, op: OpId, region: RegionId) {
        debug_assert!(self.regions[region.index()].parent.is_none());
        self.regions[region.index()].parent = Some(op);
        self.ops[op.index()].regions.push(region);
    }

    // ---- uses --------------------------------------------------------------

    /// Replaces every use of `old` with `new` (operands and successor
    /// arguments, across the whole body).
    pub fn replace_all_uses(&mut self, old: ValueId, new: ValueId) {
        for i in 0..self.live.len() {
            let op = &mut self.ops[self.live[i].index()];
            if op.dead {
                continue;
            }
            for o in &mut op.operands {
                if *o == old {
                    *o = new;
                }
            }
            for s in &mut op.successors {
                for a in &mut s.args {
                    if *a == old {
                        *a = new;
                    }
                }
            }
        }
    }

    /// Counts uses of every value (operand and successor-arg positions).
    pub fn use_counts(&self) -> HashMap<ValueId, usize> {
        let mut counts: HashMap<ValueId, usize> = HashMap::new();
        for &id in &self.live {
            let op = &self.ops[id.index()];
            if op.dead || op.parent.is_none() {
                continue;
            }
            for &o in &op.operands {
                *counts.entry(o).or_default() += 1;
            }
            for s in &op.successors {
                for &a in &s.args {
                    *counts.entry(a).or_default() += 1;
                }
            }
        }
        counts
    }

    /// All attached (live) ops that use `v`, in arena order.
    pub fn users_of(&self, v: ValueId) -> Vec<OpId> {
        let mut out = Vec::new();
        for &id in &self.live {
            let op = &self.ops[id.index()];
            if op.dead || op.parent.is_none() {
                continue;
            }
            let uses =
                op.operands.contains(&v) || op.successors.iter().any(|s| s.args.contains(&v));
            if uses {
                out.push(id);
            }
        }
        out
    }

    /// The type of a value.
    pub fn value_type(&self, v: ValueId) -> Type {
        self.values[v.index()].ty
    }

    /// The op defining `v`, if it is an op result.
    pub fn defining_op(&self, v: ValueId) -> Option<OpId> {
        match self.values[v.index()].def {
            ValueDef::OpResult(op, _) => Some(op),
            ValueDef::BlockArg(..) => None,
        }
    }

    // ---- traversal --------------------------------------------------------

    /// All live ops in the region tree, pre-order (op before its regions),
    /// blocks in region order.
    pub fn walk_ops(&self) -> Vec<OpId> {
        let mut out = Vec::new();
        self.walk_region(ROOT_REGION, &mut out);
        out
    }

    /// All live ops inside `region` (recursively).
    pub fn walk_region_ops(&self, region: RegionId) -> Vec<OpId> {
        let mut out = Vec::new();
        self.walk_region(region, &mut out);
        out
    }

    fn walk_region(&self, region: RegionId, out: &mut Vec<OpId>) {
        for &b in &self.regions[region.index()].blocks {
            for &op in &self.blocks[b.index()].ops {
                out.push(op);
                for &r in &self.ops[op.index()].regions {
                    self.walk_region(r, out);
                }
            }
        }
    }

    /// The region containing `block`.
    pub fn block_region(&self, block: BlockId) -> RegionId {
        self.blocks[block.index()].parent.expect("detached block")
    }

    /// The block containing the definition of `v`.
    pub fn defining_block(&self, v: ValueId) -> Option<BlockId> {
        match self.values[v.index()].def {
            ValueDef::OpResult(op, _) => self.ops[op.index()].parent,
            ValueDef::BlockArg(b, _) => Some(b),
        }
    }

    /// The terminator of `block`, if the block is non-empty.
    pub fn terminator(&self, block: BlockId) -> Option<OpId> {
        self.blocks[block.index()]
            .ops
            .last()
            .copied()
            .filter(|&op| self.ops[op.index()].opcode.is_terminator())
    }

    // ---- cloning ------------------------------------------------------------

    /// Deep-clones `region`'s contents into a fresh region owned by `new_parent`.
    ///
    /// `value_map` seeds the remapping of values defined *outside* the region
    /// (e.g. mapping callee parameters to call arguments during inlining);
    /// values defined inside are remapped automatically. Unmapped external
    /// values are left as-is (implicit capture).
    pub fn clone_region_into(
        &mut self,
        region: RegionId,
        new_parent: OpId,
        value_map: &mut HashMap<ValueId, ValueId>,
    ) -> RegionId {
        let new_region = self.new_region(new_parent);
        let mut block_map: HashMap<BlockId, BlockId> = HashMap::new();
        let blocks = self.regions[region.index()].blocks.clone();
        // First pass: create blocks and their arguments.
        for &b in &blocks {
            let arg_tys: Vec<Type> = self.blocks[b.index()]
                .args
                .iter()
                .map(|&a| self.value_type(a))
                .collect();
            let nb = self.new_block(new_region, &arg_tys);
            for (i, &old_arg) in self.blocks[b.index()].args.clone().iter().enumerate() {
                let new_arg = self.blocks[nb.index()].args[i];
                value_map.insert(old_arg, new_arg);
            }
            block_map.insert(b, nb);
        }
        // Second pass: clone ops.
        for &b in &blocks {
            let ops = self.blocks[b.index()].ops.clone();
            let nb = block_map[&b];
            for op in ops {
                let new_op = self.clone_op_rec(op, value_map, &block_map);
                self.push_op(nb, new_op);
            }
        }
        new_region
    }

    fn clone_op_rec(
        &mut self,
        op: OpId,
        value_map: &mut HashMap<ValueId, ValueId>,
        block_map: &HashMap<BlockId, BlockId>,
    ) -> OpId {
        let data = self.ops[op.index()].clone();
        let operands: Vec<ValueId> = data
            .operands
            .iter()
            .map(|v| value_map.get(v).copied().unwrap_or(*v))
            .collect();
        let result_tys: Vec<Type> = data.results.iter().map(|&r| self.value_type(r)).collect();
        let new_op = self.create_op(data.opcode, operands, &result_tys, data.attrs.clone());
        for (i, &old_r) in data.results.iter().enumerate() {
            let new_r = self.ops[new_op.index()].results[i];
            value_map.insert(old_r, new_r);
        }
        for s in &data.successors {
            let args = s
                .args
                .iter()
                .map(|v| value_map.get(v).copied().unwrap_or(*v))
                .collect();
            let block = block_map.get(&s.block).copied().unwrap_or(s.block);
            self.ops[new_op.index()]
                .successors
                .push(Successor { block, args });
        }
        for &r in &data.regions {
            self.clone_region_into(r, new_op, value_map);
        }
        new_op
    }

    /// Number of live, attached ops (for tests and statistics).
    ///
    /// A counting walk — no id list is materialized, so the pass engine's
    /// per-pass before/after instrumentation costs no allocation.
    pub fn live_op_count(&self) -> usize {
        self.count_region_ops(ROOT_REGION)
    }

    fn count_region_ops(&self, region: RegionId) -> usize {
        let mut count = 0;
        for &b in &self.regions[region.index()].blocks {
            count += self.blocks[b.index()].ops.len();
            for &op in &self.blocks[b.index()].ops {
                for &r in &self.ops[op.index()].regions {
                    count += self.count_region_ops(r);
                }
            }
        }
        count
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::AttrKey;

    fn const_op(b: &mut Body, v: i64) -> OpId {
        b.create_op(
            Opcode::ConstI,
            vec![],
            &[Type::I64],
            vec![(AttrKey::Value, Attr::Int(v))],
        )
    }

    #[test]
    fn op_data_stays_compact() {
        // The op-storage compaction budget (InlineVec'd lists, boxed
        // attribute payloads). Growing this grows every op in every module;
        // revisit the inline capacities before raising it.
        assert!(std::mem::size_of::<OpData>() <= 208);
    }

    #[test]
    fn new_body_has_entry_with_params() {
        let (body, params) = Body::new(&[Type::Obj, Type::I64]);
        assert_eq!(params.len(), 2);
        assert_eq!(body.value_type(params[0]), Type::Obj);
        assert_eq!(body.value_type(params[1]), Type::I64);
        assert_eq!(body.params(), params.as_slice());
    }

    #[test]
    fn push_and_walk() {
        let (mut body, _) = Body::new(&[]);
        let e = body.entry_block();
        let c1 = const_op(&mut body, 1);
        let c2 = const_op(&mut body, 2);
        body.push_op(e, c1);
        body.push_op(e, c2);
        assert_eq!(body.walk_ops(), vec![c1, c2]);
    }

    #[test]
    fn insert_before() {
        let (mut body, _) = Body::new(&[]);
        let e = body.entry_block();
        let c1 = const_op(&mut body, 1);
        body.push_op(e, c1);
        let c0 = const_op(&mut body, 0);
        body.insert_op_before(c1, c0);
        assert_eq!(body.blocks[e.index()].ops, vec![c0, c1]);
    }

    #[test]
    fn rauw_rewrites_operands_and_successor_args() {
        let (mut body, _) = Body::new(&[]);
        let e = body.entry_block();
        let c1 = const_op(&mut body, 1);
        let c2 = const_op(&mut body, 2);
        body.push_op(e, c1);
        body.push_op(e, c2);
        let v1 = body.ops[c1.index()].result().unwrap();
        let v2 = body.ops[c2.index()].result().unwrap();
        let b2 = body.new_block(ROOT_REGION, &[Type::I64]);
        let br = body.create_op(Opcode::Br, vec![], &[], vec![]);
        body.ops[br.index()]
            .successors
            .push(Successor::with_args(b2, vec![v1]));
        body.push_op(e, br);
        let add = body.create_op(Opcode::AddI, vec![v1, v1], &[Type::I64], vec![]);
        body.push_op(b2, add);
        body.replace_all_uses(v1, v2);
        assert_eq!(body.ops[add.index()].operands, vec![v2, v2]);
        assert_eq!(body.ops[br.index()].successors[0].args, vec![v2]);
        let counts = body.use_counts();
        assert_eq!(counts.get(&v1), None);
        assert_eq!(counts[&v2], 3);
    }

    #[test]
    fn erase_op_removes_from_walk() {
        let (mut body, _) = Body::new(&[]);
        let e = body.entry_block();
        let c1 = const_op(&mut body, 1);
        body.push_op(e, c1);
        assert_eq!(body.live_op_count(), 1);
        body.erase_op(c1);
        assert_eq!(body.live_op_count(), 0);
        assert!(body.ops[c1.index()].dead);
    }

    #[test]
    fn nested_region_walk_order() {
        let (mut body, _) = Body::new(&[]);
        let e = body.entry_block();
        let rv = body.create_op(Opcode::RgnVal, vec![], &[Type::Rgn], vec![]);
        let inner_region = body.new_region(rv);
        let inner_block = body.new_block(inner_region, &[]);
        let c = const_op(&mut body, 7);
        body.push_op(inner_block, c);
        body.push_op(e, rv);
        let c2 = const_op(&mut body, 8);
        body.push_op(e, c2);
        assert_eq!(body.walk_ops(), vec![rv, c, c2]);
    }

    #[test]
    fn erase_op_with_region_kills_nested_ops() {
        let (mut body, _) = Body::new(&[]);
        let e = body.entry_block();
        let rv = body.create_op(Opcode::RgnVal, vec![], &[Type::Rgn], vec![]);
        let r = body.new_region(rv);
        let bl = body.new_block(r, &[]);
        let c = const_op(&mut body, 7);
        body.push_op(bl, c);
        body.push_op(e, rv);
        body.erase_op(rv);
        assert!(body.ops[c.index()].dead);
        assert_eq!(body.live_op_count(), 0);
    }

    #[test]
    fn region_transfer() {
        let (mut body, _) = Body::new(&[]);
        let e = body.entry_block();
        let a = body.create_op(Opcode::RgnVal, vec![], &[Type::Rgn], vec![]);
        let r = body.new_region(a);
        body.push_op(e, a);
        let b = body.create_op(Opcode::RgnVal, vec![], &[Type::Rgn], vec![]);
        body.push_op(e, b);
        body.detach_region(r);
        assert!(body.ops[a.index()].regions.is_empty());
        body.attach_region(b, r);
        assert_eq!(body.ops[b.index()].regions, vec![r]);
        assert_eq!(body.regions[r.index()].parent, Some(b));
    }

    #[test]
    fn clone_region_remaps_internal_values() {
        let (mut body, _) = Body::new(&[]);
        let e = body.entry_block();
        let holder = body.create_op(Opcode::RgnVal, vec![], &[Type::Rgn], vec![]);
        let r = body.new_region(holder);
        let bl = body.new_block(r, &[Type::I64]);
        let arg = body.blocks[bl.index()].args[0];
        let add = body.create_op(Opcode::AddI, vec![arg, arg], &[Type::I64], vec![]);
        body.push_op(bl, add);
        body.push_op(e, holder);

        let holder2 = body.create_op(Opcode::RgnVal, vec![], &[Type::Rgn], vec![]);
        body.push_op(e, holder2);
        let mut map = HashMap::new();
        let r2 = body.clone_region_into(r, holder2, &mut map);
        assert_ne!(r, r2);
        let bl2 = body.regions[r2.index()].blocks[0];
        let arg2 = body.blocks[bl2.index()].args[0];
        assert_ne!(arg, arg2);
        let add2 = body.blocks[bl2.index()].ops[0];
        assert_eq!(body.ops[add2.index()].operands, vec![arg2, arg2]);
    }

    #[test]
    fn users_of_finds_all() {
        let (mut body, _) = Body::new(&[]);
        let e = body.entry_block();
        let c = const_op(&mut body, 3);
        body.push_op(e, c);
        let v = body.ops[c.index()].result().unwrap();
        let a1 = body.create_op(Opcode::AddI, vec![v, v], &[Type::I64], vec![]);
        let a2 = body.create_op(Opcode::MulI, vec![v, v], &[Type::I64], vec![]);
        body.push_op(e, a1);
        body.push_op(e, a2);
        assert_eq!(body.users_of(v), vec![a1, a2]);
    }
}
