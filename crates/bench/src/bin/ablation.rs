//! Ablation study over the design choices DESIGN.md calls out:
//!
//! - region optimizations (§IV-B) on/off,
//! - generic CFG-level passes on/off,
//! - guaranteed vs heuristic tail calls (§III-E),
//! - the reference-count optimization (§III) on/off (the `-rc-opt` knob
//!   compiles without inc/dec pair elision and dec sinking, so its
//!   instruction-count delta against `full` is the rc-opt win),
//! - decode-time superinstruction fusion on/off (the `-fusion` knob runs
//!   the full compile pipeline but executes the unfused stream, so the
//!   fused rows of the VM tables quantify exactly what fusion buys),
//! - the VM's dispatch-loop knobs: `-threaded` falls back to match
//!   dispatch, `-inline-cache` disables the per-call-site target caches,
//!   `-renumber` disables decode-time register compaction. All three run
//!   the identical program, so their instruction counts match `full` —
//!   the VM statistics tables (cache hit rates, frame-pool bytes) carry
//!   the signal for these rows.
//!
//! Reports deterministic VM instruction counts and static code size per
//! knob, per benchmark — wall-clock-free, so the ablation is exactly
//! reproducible anywhere — followed by a per-pass statistics table per knob
//! (runs, changed, live ops before/after, wall time; aggregated across the
//! workloads) so a regression shows up attributed to the pass that caused
//! it, and by the run-side mirror: the VM's per-opcode-class statistics per
//! knob (executed counts, heap allocations, frame-pool behaviour), so each
//! knob's compile-side cost can be weighed against its run-side effect.
//!
//! ```text
//! cargo run --release -p lssa-bench --bin ablation [-- --scale test]
//! ```

use lssa_core::{PipelineOptions, PipelineReport};
use lssa_driver::pipelines::{compile_with_report, Backend, CompilerConfig};
use lssa_driver::workloads::{all, Scale};
use lssa_lambda::SimplifyOptions;
use lssa_vm::{DecodeOptions, DispatchMode, ExecOptions};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = if args
        .windows(2)
        .any(|w| w[0] == "--scale" && w[1] == "bench")
    {
        Scale::Bench
    } else {
        Scale::Test
    };
    let fused = DecodeOptions::fused();
    let exec = ExecOptions::default();
    let knobs: Vec<(&str, PipelineOptions, DecodeOptions, ExecOptions)> = vec![
        ("full", PipelineOptions::full(), fused, exec),
        (
            "-region-opts",
            PipelineOptions {
                region_opts: false,
                ..PipelineOptions::full()
            },
            fused,
            exec,
        ),
        (
            "-generic-opts",
            PipelineOptions {
                generic_opts: false,
                ..PipelineOptions::full()
            },
            fused,
            exec,
        ),
        (
            "-guaranteed-tco",
            PipelineOptions {
                guaranteed_tco: false,
                ..PipelineOptions::full()
            },
            fused,
            exec,
        ),
        (
            "-rc-opt",
            PipelineOptions {
                rc_opt: false,
                ..PipelineOptions::full()
            },
            fused,
            exec,
        ),
        (
            "-fusion",
            PipelineOptions::full(),
            DecodeOptions::no_fuse().with_renumber(true),
            exec,
        ),
        (
            "-threaded",
            PipelineOptions::full(),
            fused,
            exec.with_dispatch(DispatchMode::Match),
        ),
        (
            "-inline-cache",
            PipelineOptions::full(),
            fused,
            exec.with_inline_cache(false),
        ),
        (
            "-renumber",
            PipelineOptions::full(),
            fused.with_renumber(false),
            exec,
        ),
        ("none", PipelineOptions::no_opt(), fused, exec),
    ];
    println!("Ablation over the rgn pipeline's design knobs (instruction counts, deterministic)");
    println!();
    print!("{:<20}", "benchmark");
    for (label, _, _, _) in &knobs {
        print!(" {label:>16}");
    }
    println!();
    let mut knob_reports: Vec<PipelineReport> =
        knobs.iter().map(|_| PipelineReport::default()).collect();
    let mut knob_vm_stats: Vec<lssa_vm::VmStatistics> = knobs
        .iter()
        .map(|_| lssa_vm::VmStatistics::default())
        .collect();
    for w in all(scale) {
        print!("{:<20}", w.name);
        for (i, (_, opts, decode, exec)) in knobs.iter().enumerate() {
            // The RC-linearity checker rides along on every knob so the
            // per-pass tables below report its cost (`verify-rc-us`) — and
            // every ablation run doubles as a full-matrix RC verification.
            let opts = PipelineOptions {
                verify_rc: true,
                ..*opts
            };
            let config = CompilerConfig {
                simplify: Some(SimplifyOptions::all()),
                backend: Backend::Mlir(opts),
            };
            let (program, report) = compile_with_report(&w.src, config).expect("compile");
            knob_reports[i].merge(&report.expect("mlir backend reports statistics"));
            let out =
                lssa_vm::run_program_opts(&program, "main", lssa_bench::MAX_STEPS, *decode, *exec)
                    .expect("run");
            knob_vm_stats[i].merge(&out.vm_stats);
            print!(" {:>10}/{:<5}", out.stats.instructions, program.code_size());
        }
        println!();
    }
    println!();
    println!("cells are: dynamic instructions / static code size");
    println!("expected shape: -region-opts and none never beat full; -guaranteed-tco only");
    println!("affects stack depth (instruction counts are within noise of full); -fusion");
    println!("executes the same program as full but without superinstructions, so its");
    println!("dynamic count is higher at identical static code size; -threaded,");
    println!("-inline-cache and -renumber execute the identical stream (identical counts) —");
    println!("their effect is wall-clock and frame-pool only, see the VM tables below.");
    println!();
    println!("Per-pass statistics per knob (aggregated across the workloads above)");
    for ((label, _, _, _), report) in knobs.iter().zip(&knob_reports) {
        println!();
        println!("=== {label} ===");
        print!("{}", report.render_table());
    }
    println!();
    println!("Per-opcode-class VM statistics per knob (run-side costs, aggregated)");
    for ((label, _, _, _), stats) in knobs.iter().zip(&knob_vm_stats) {
        println!();
        println!("=== {label} ===");
        print!("{}", stats.render_table());
    }
}
