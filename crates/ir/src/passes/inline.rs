//! A conservative inliner.
//!
//! Inlines `func.call` sites whose callee is a small, single-block,
//! region-free function ending in `func.return` — exactly the shape produced
//! after the `rgn`→CFG lowering for leaf functions. This mirrors MLIR's
//! builtin inliner in the role Figure 11 assigns it; the restriction keeps
//! the transformation obviously sound (no block splitting required).

use crate::body::Body;
use crate::ids::{OpId, ValueId};
use crate::module::Module;
use crate::opcode::Opcode;
use crate::pass::Pass;
use std::collections::HashMap;

/// The inlining pass.
#[derive(Debug, Clone, Copy)]
pub struct InlinePass {
    /// Maximum callee size (live op count, excluding the return).
    pub max_callee_ops: usize,
}

impl Default for InlinePass {
    fn default() -> InlinePass {
        InlinePass { max_callee_ops: 24 }
    }
}

impl Pass for InlinePass {
    fn name(&self) -> &'static str {
        "inline"
    }

    fn run_on(&self, module: &mut Module) -> bool {
        let mut changed = false;
        // Snapshot which callees are inlinable, then rewrite call sites.
        let inlinable: Vec<Option<InlinableCallee>> = module
            .funcs
            .iter()
            .map(|f| InlinableCallee::extract(f.body.as_ref(), self.max_callee_ops))
            .collect();
        for i in 0..module.funcs.len() {
            let Some(mut body) = module.funcs[i].body.take() else {
                continue;
            };
            let caller = module.funcs[i].name;
            loop {
                let mut did = false;
                for op in body.walk_ops() {
                    if body.ops[op.index()].dead || body.ops[op.index()].opcode != Opcode::Call {
                        continue;
                    }
                    let Some(callee) = body.ops[op.index()]
                        .attr(crate::attr::AttrKey::Callee)
                        .and_then(|a| a.as_sym())
                    else {
                        continue;
                    };
                    if callee == caller {
                        continue; // no self-inlining
                    }
                    let Some(pos) = module.func_position(callee) else {
                        continue;
                    };
                    let Some(snippet) = &inlinable[pos] else {
                        continue;
                    };
                    inline_at(&mut body, op, snippet);
                    did = true;
                    changed = true;
                    break; // op list changed; re-walk
                }
                if !did {
                    break;
                }
            }
            module.funcs[i].body = Some(body);
        }
        changed
    }
}

/// A callee captured in an inlinable form.
#[derive(Debug, Clone)]
struct InlinableCallee {
    params: Vec<ValueId>,
    /// Ops in order, excluding the terminator.
    ops: Vec<crate::body::OpData>,
    /// Map from the callee's value ids to result indices of `ops`.
    returned: ValueId,
    /// The callee body the snippets refer into (for types).
    body: Body,
}

impl InlinableCallee {
    fn extract(body: Option<&Body>, max_ops: usize) -> Option<InlinableCallee> {
        let body = body?;
        let root = &body.regions[crate::body::ROOT_REGION.index()];
        if root.blocks.len() != 1 {
            return None;
        }
        let entry = root.blocks[0];
        let ops = &body.blocks[entry.index()].ops;
        if ops.is_empty() || ops.len() > max_ops + 1 {
            return None;
        }
        let term = *ops.last().unwrap();
        if body.ops[term.index()].opcode != Opcode::Return {
            return None;
        }
        let mut cloned = Vec::new();
        for &op in &ops[..ops.len() - 1] {
            let data = &body.ops[op.index()];
            if !data.regions.is_empty() || !data.successors.is_empty() {
                return None;
            }
            cloned.push(data.clone());
        }
        Some(InlinableCallee {
            params: body.params().to_vec(),
            ops: cloned,
            returned: body.ops[term.index()].operands[0],
            body: body.clone(),
        })
    }
}

fn inline_at(body: &mut Body, call: OpId, snippet: &InlinableCallee) {
    let args = body.ops[call.index()].operands.clone();
    let mut map: HashMap<ValueId, ValueId> = HashMap::new();
    for (&p, &a) in snippet.params.iter().zip(&args) {
        map.insert(p, a);
    }
    for data in &snippet.ops {
        let operands: Vec<ValueId> = data
            .operands
            .iter()
            .map(|v| *map.get(v).expect("callee op uses unmapped value"))
            .collect();
        let result_tys: Vec<_> = data
            .results
            .iter()
            .map(|&r| snippet.body.value_type(r))
            .collect();
        let new_op = body.create_op(data.opcode, operands, &result_tys, data.attrs.clone());
        body.insert_op_before(call, new_op);
        for (i, &old_r) in data.results.iter().enumerate() {
            map.insert(old_r, body.ops[new_op.index()].results[i]);
        }
    }
    let returned = *map
        .get(&snippet.returned)
        .expect("callee returns unmapped value");
    let call_result = body.ops[call.index()].result().unwrap();
    body.replace_all_uses(call_result, returned);
    body.erase_op(call);
}

/// Convenience entry point used by callees of this crate.
pub fn inline_module(module: &mut Module, max_callee_ops: usize) -> bool {
    InlinePass { max_callee_ops }.run_on(module)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::Builder;
    use crate::ids::Symbol;
    use crate::types::{Signature, Type};

    fn make_square(m: &mut Module) -> Symbol {
        let (mut body, params) = Body::new(&[Type::I64]);
        let entry = body.entry_block();
        let mut b = Builder::at_end(&mut body, entry);
        let s = b.muli(params[0], params[0]);
        b.ret(s);
        m.add_function("square", Signature::new(vec![Type::I64], Type::I64), body)
    }

    #[test]
    fn small_leaf_is_inlined() {
        let mut m = Module::new();
        let square = make_square(&mut m);
        let (mut body, params) = Body::new(&[Type::I64]);
        let entry = body.entry_block();
        let mut b = Builder::at_end(&mut body, entry);
        let r = b.call(square, vec![params[0]], Type::I64);
        let one = b.const_i(1, Type::I64);
        let s = b.addi(r, one);
        b.ret(s);
        m.add_function("f", Signature::new(vec![Type::I64], Type::I64), body);

        assert!(InlinePass::default().run(&mut m).changed);
        crate::verifier::verify_module(&m).unwrap();
        let body = m.func_by_name("f").unwrap().body.as_ref().unwrap();
        let has_call = body
            .walk_ops()
            .iter()
            .any(|&op| body.ops[op.index()].opcode == Opcode::Call);
        assert!(!has_call, "call must be inlined");
        let has_mul = body
            .walk_ops()
            .iter()
            .any(|&op| body.ops[op.index()].opcode == Opcode::MulI);
        assert!(has_mul, "callee body must be spliced in");
    }

    #[test]
    fn recursive_call_not_inlined() {
        let mut m = Module::new();
        // f calls itself — must not inline.
        let name = m.intern("selfrec");
        let (mut body, params) = Body::new(&[Type::I64]);
        let entry = body.entry_block();
        let mut b = Builder::at_end(&mut body, entry);
        let r = b.call(name, vec![params[0]], Type::I64);
        b.ret(r);
        m.add_function("selfrec", Signature::new(vec![Type::I64], Type::I64), body);
        assert!(!InlinePass::default().run(&mut m).changed);
    }

    #[test]
    fn large_callee_not_inlined() {
        let mut m = Module::new();
        let (mut body, params) = Body::new(&[Type::I64]);
        let entry = body.entry_block();
        let mut b = Builder::at_end(&mut body, entry);
        let mut acc = params[0];
        for _ in 0..40 {
            acc = b.addi(acc, params[0]);
        }
        b.ret(acc);
        let big = m.add_function("big", Signature::new(vec![Type::I64], Type::I64), body);

        let (mut body, params) = Body::new(&[Type::I64]);
        let entry = body.entry_block();
        let mut b = Builder::at_end(&mut body, entry);
        let r = b.call(big, vec![params[0]], Type::I64);
        b.ret(r);
        m.add_function("f", Signature::new(vec![Type::I64], Type::I64), body);

        assert!(!InlinePass::default().run(&mut m).changed);
    }

    #[test]
    fn extern_callee_not_inlined() {
        let mut m = Module::new();
        let ext = m.declare_extern("rt_fn", Signature::new(vec![Type::I64], Type::I64));
        let (mut body, params) = Body::new(&[Type::I64]);
        let entry = body.entry_block();
        let mut b = Builder::at_end(&mut body, entry);
        let r = b.call(ext, vec![params[0]], Type::I64);
        b.ret(r);
        m.add_function("f", Signature::new(vec![Type::I64], Type::I64), body);
        assert!(!InlinePass::default().run(&mut m).changed);
    }

    #[test]
    fn transitive_chain_inlines_fully() {
        let mut m = Module::new();
        let square = make_square(&mut m);
        // g(x) = square(x) + 1, f(x) = g(x) — f should end up call-free
        // (inliner fixpoints per function but callee snapshots are pre-pass,
        // so run the pass twice).
        let (mut body, params) = Body::new(&[Type::I64]);
        let entry = body.entry_block();
        let mut b = Builder::at_end(&mut body, entry);
        let r = b.call(square, vec![params[0]], Type::I64);
        let one = b.const_i(1, Type::I64);
        let s = b.addi(r, one);
        b.ret(s);
        let g = m.add_function("g", Signature::new(vec![Type::I64], Type::I64), body);

        let (mut body, params) = Body::new(&[Type::I64]);
        let entry = body.entry_block();
        let mut b = Builder::at_end(&mut body, entry);
        let r = b.call(g, vec![params[0]], Type::I64);
        b.ret(r);
        m.add_function("f", Signature::new(vec![Type::I64], Type::I64), body);

        InlinePass::default().run(&mut m);
        InlinePass::default().run(&mut m);
        crate::verifier::verify_module(&m).unwrap();
        let body = m.func_by_name("f").unwrap().body.as_ref().unwrap();
        let has_call = body
            .walk_ops()
            .iter()
            .any(|&op| body.ops[op.index()].opcode == Opcode::Call);
        assert!(!has_call);
    }
}
