//! Regression tests for the `gauntlet` binary: argument handling, the
//! fault-injection pass itself on a small case count, and byte-identity of
//! the per-seed report across `--jobs` values (the executable face of the
//! determinism the harness also checks internally).

use std::process::Command;

fn gauntlet() -> Command {
    Command::new(env!("CARGO_BIN_EXE_gauntlet"))
}

#[test]
fn unparseable_seed_is_rejected() {
    let out = gauntlet().args(["--seed", "banana"]).output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--seed"), "{stderr}");
    assert!(stderr.contains("usage"), "{stderr}");
}

#[test]
fn zero_jobs_is_rejected() {
    let out = gauntlet().args(["--jobs", "0"]).output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--jobs"));
}

#[test]
fn unknown_flag_is_rejected() {
    let out = gauntlet().args(["--frobnicate"]).output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown argument"));
}

#[test]
fn small_run_passes_with_zero_violations() {
    let out = gauntlet()
        .args(["--seed", "7", "--count", "48", "--jobs", "2"])
        .output()
        .unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "gauntlet failed:\n{stdout}\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(stdout.contains("GAUNTLET PASS"), "{stdout}");
}

#[test]
fn reports_are_identical_across_job_counts() {
    let report = |jobs: &str, path: &std::path::Path| {
        let out = gauntlet()
            .args(["--seed", "3", "--count", "64", "--no-determinism-check"])
            .args(["--jobs", jobs])
            .arg("--out")
            .arg(path)
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "gauntlet --jobs {jobs} failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let body = std::fs::read_to_string(path).unwrap();
        // Drop the header line, which records the --jobs value itself.
        body.lines()
            .filter(|l| !l.starts_with("gauntlet seed="))
            .collect::<Vec<_>>()
            .join("\n")
    };
    let dir = std::env::temp_dir();
    let serial = report("1", &dir.join("gauntlet_cli_serial.txt"));
    let sharded = report("4", &dir.join("gauntlet_cli_sharded.txt"));
    assert_eq!(
        serial, sharded,
        "per-seed report must be byte-identical across --jobs values"
    );
}
