//! Smoke tests for the `lssa` command-line driver.

use std::io::Write;
use std::process::Command;

fn lssa() -> Command {
    Command::new(env!("CARGO_BIN_EXE_lssa"))
}

fn write_temp(name: &str, contents: &str) -> std::path::PathBuf {
    let path = std::env::temp_dir().join(format!("lssa-cli-{name}-{}.fl", std::process::id()));
    let mut f = std::fs::File::create(&path).unwrap();
    f.write_all(contents.as_bytes()).unwrap();
    path
}

const PROGRAM: &str = r#"
inductive List := Nil | Cons(h, t)
def len(xs) := case xs of | Nil => 0 | Cons(h, t) => 1 + len(t) end
def main() := len(Cons(1, Cons(2, Cons(3, Nil))))
"#;

#[test]
fn run_prints_result() {
    let path = write_temp("run", PROGRAM);
    let out = lssa().args(["run"]).arg(&path).output().unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert_eq!(String::from_utf8_lossy(&out.stdout).trim(), "3");
    std::fs::remove_file(path).ok();
}

#[test]
fn run_all_backends() {
    let path = write_temp("backends", PROGRAM);
    for backend in ["leanc", "mlir", "rgn-only", "none"] {
        let out = lssa()
            .args(["run"])
            .arg(&path)
            .args(["--backend", backend])
            .output()
            .unwrap();
        assert!(out.status.success(), "{backend}");
        assert_eq!(
            String::from_utf8_lossy(&out.stdout).trim(),
            "3",
            "{backend}"
        );
    }
    std::fs::remove_file(path).ok();
}

#[test]
fn dump_stages_emit_expected_dialects() {
    let path = write_temp("dump", PROGRAM);
    for (stage, needle) in [
        ("lambda", "case x0 of"),
        ("lp", "lp.switch"),
        ("rgn", "rgn.run"),
        ("cfg", "cf."),
    ] {
        let out = lssa()
            .args(["dump"])
            .arg(&path)
            .args(["--stage", stage])
            .output()
            .unwrap();
        assert!(out.status.success(), "{stage}");
        let text = String::from_utf8_lossy(&out.stdout);
        assert!(text.contains(needle), "{stage}: missing {needle}\n{text}");
    }
    std::fs::remove_file(path).ok();
}

#[test]
fn diff_reports_pass() {
    let path = write_temp("diff", PROGRAM);
    let out = lssa().args(["diff"]).arg(&path).output().unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("PASS"));
    std::fs::remove_file(path).ok();
}

#[test]
fn pass_stats_prints_pipeline_tables() {
    let path = write_temp("stats", PROGRAM);
    let out = lssa()
        .args(["run"])
        .arg(&path)
        .args(["--pass-stats"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    for needle in ["pipeline `rgn-opt`", "pipeline `cleanup`", "ops-in", "dce"] {
        assert!(text.contains(needle), "missing {needle}\n{text}");
    }
    std::fs::remove_file(path).ok();
}

#[test]
fn vm_stats_prints_opcode_class_table() {
    let path = write_temp("vmstats", PROGRAM);
    let out = lssa()
        .args(["run"])
        .arg(&path)
        .args(["--vm-stats"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    for needle in ["opcode class", "executed", "frames:", "heap:", "max depth"] {
        assert!(text.contains(needle), "missing {needle}\n{text}");
    }
    std::fs::remove_file(path).ok();
}

#[test]
fn vm_stats_shows_fusion_and_no_fuse_disables_it() {
    let path = write_temp("fuse", PROGRAM);
    let out = lssa()
        .args(["run"])
        .arg(&path)
        .args(["--vm-stats"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("fused:"), "{text}");
    assert!(!text.contains("fused: 0 superinstruction"), "{text}");
    let out = lssa()
        .args(["run"])
        .arg(&path)
        .args(["--vm-stats", "--no-fuse"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("fused: 0 superinstruction"), "{text}");
    std::fs::remove_file(path).ok();
}

#[test]
fn bench_json_writes_records() {
    let json_path =
        std::env::temp_dir().join(format!("lssa-cli-bench-{}.json", std::process::id()));
    let out = lssa()
        .args(["bench", "filter", "--scale", "quick", "--json", "--out"])
        .arg(&json_path)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let json = std::fs::read_to_string(&json_path).unwrap();
    for needle in [
        "\"scale\": \"test\"",
        "\"name\": \"filter\"",
        "\"base\":",
        "\"threaded\":",
        "\"threaded_cache\":",
        "\"full\":",
        "\"full_nofuse\":",
        "\"cache_hits\":",
        "\"speedup\":",
        "\"geomean_speedup\":",
    ] {
        assert!(json.contains(needle), "missing {needle}\n{json}");
    }
    // `bench --check` against the file just written passes (counters are
    // deterministic; the wall tolerance absorbs timer noise).
    let out = lssa()
        .args([
            "bench",
            "filter",
            "--scale",
            "quick",
            "--check",
            "--tolerance",
            "500",
            "--out",
        ])
        .arg(&json_path)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stderr).contains("checked"));
    // A corrupted instruction count is a regression: non-zero exit.
    let tampered = json.replacen("\"instructions\": ", "\"instructions\": 9", 1);
    std::fs::write(&json_path, tampered).unwrap();
    let out = lssa()
        .args([
            "bench",
            "filter",
            "--scale",
            "quick",
            "--check",
            "--tolerance",
            "500",
            "--out",
        ])
        .arg(&json_path)
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("REGRESSION"));
    std::fs::remove_file(json_path).ok();
    // A single-workload run without --out must refuse rather than clobber
    // the committed full-suite BENCH_<scale>.json baseline.
    let out = lssa()
        .args(["bench", "filter", "--scale", "quick", "--json"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--out"));
    // And --json refuses --no-fuse (it always measures both modes).
    let out = lssa()
        .args(["bench", "all", "--scale", "quick", "--json", "--no-fuse"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--no-fuse"));
}

#[test]
fn print_ir_after_all_dumps_to_stderr() {
    let path = write_temp("irdump", PROGRAM);
    let out = lssa()
        .args(["run"])
        .arg(&path)
        .args(["--print-ir-after-all"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("IR dump after"), "{err}");
    assert!(err.contains("func.return"), "{err}");
    // The result still lands on stdout.
    assert_eq!(String::from_utf8_lossy(&out.stdout).trim(), "3");
    // And the leanc backend rejects the flag (no pipeline to dump).
    let out = lssa()
        .args(["run"])
        .arg(&path)
        .args(["--backend", "leanc", "--print-ir-after-all"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    std::fs::remove_file(path).ok();
}

fn write_lssa(name: &str, contents: &str) -> std::path::PathBuf {
    let path = std::env::temp_dir().join(format!("lssa-cli-{name}-{}.lssa", std::process::id()));
    std::fs::write(&path, contents).unwrap();
    path
}

const LSSA_PROGRAM: &str = "(def main ()
  (let x0 40
  (let x1 2
  (let x2 (call lean_nat_add x0 x1)
  (ret x2)))))
";

const LSSA_ILL_FORMED: &str = "(def main ()\n  (ret x7))\n";

#[test]
fn check_passes_clean_lssa_and_flags_defects() {
    let good = write_lssa("check-good", LSSA_PROGRAM);
    let out = lssa().args(["check"]).arg(&good).output().unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(out.stdout.is_empty(), "clean check must print nothing");

    let bad = write_lssa("check-bad", LSSA_ILL_FORMED);
    let out = lssa().args(["check"]).arg(&bad).output().unwrap();
    assert!(!out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("error[E0101]"), "{text}");
    assert!(
        text.contains(":2:8:"),
        "human format carries line:col\n{text}"
    );
    std::fs::remove_file(good).ok();
    std::fs::remove_file(bad).ok();
}

#[test]
fn check_json_is_machine_readable() {
    let bad = write_lssa("check-json", LSSA_ILL_FORMED);
    let out = lssa()
        .args(["check"])
        .arg(&bad)
        .args(["--format", "json"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 1, "{text}");
    assert!(lines[0].starts_with("{\"code\":\"E0101\""), "{text}");
    assert!(lines[0].contains("\"span\":{\"start\":"), "{text}");
    assert!(lines[0].contains("\"line\":2,\"col\":8"), "{text}");
    std::fs::remove_file(bad).ok();
}

#[test]
fn fmt_prints_canonical_form_and_write_check_cycle() {
    let path = write_lssa("fmt", "(def main()(let x0 1(ret x0)))");
    // Default: canonical form on stdout, file untouched.
    let out = lssa().args(["fmt"]).arg(&path).output().unwrap();
    assert!(out.status.success());
    let formatted = String::from_utf8_lossy(&out.stdout).to_string();
    assert_eq!(formatted, "(def main ()\n  (let x0 1\n  (ret x0)))\n");
    // --check flags the drift without touching the file.
    let out = lssa()
        .args(["fmt"])
        .arg(&path)
        .args(["--check"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    // --write rewrites; --check then passes.
    let out = lssa()
        .args(["fmt"])
        .arg(&path)
        .args(["--write"])
        .output()
        .unwrap();
    assert!(out.status.success());
    assert_eq!(std::fs::read_to_string(&path).unwrap(), formatted);
    let out = lssa()
        .args(["fmt"])
        .arg(&path)
        .args(["--check"])
        .output()
        .unwrap();
    assert!(out.status.success());
    std::fs::remove_file(path).ok();
}

#[test]
fn fmt_formats_ill_scoped_but_rejects_broken_syntax() {
    // Wellformedness problems don't block formatting…
    let path = write_lssa("fmt-illformed", LSSA_ILL_FORMED);
    let out = lssa().args(["fmt"]).arg(&path).output().unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("(ret x7)"));
    std::fs::remove_file(path).ok();
    // …but unbalanced parentheses do.
    let path = write_lssa("fmt-broken", "(def main () (ret x0");
    let out = lssa().args(["fmt"]).arg(&path).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("error[E0003]"));
    std::fs::remove_file(path).ok();
}

#[test]
fn run_executes_lssa_files_on_every_backend() {
    let path = write_lssa("run", LSSA_PROGRAM);
    for backend in ["leanc", "mlir", "rgn-only", "none"] {
        let out = lssa()
            .args(["run"])
            .arg(&path)
            .args(["--backend", backend])
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "{backend}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        assert_eq!(
            String::from_utf8_lossy(&out.stdout).trim(),
            "42",
            "{backend}"
        );
    }
    std::fs::remove_file(path).ok();
}

#[test]
fn run_reports_lssa_wellformedness_with_check_codes() {
    // Regression: `run` on an ill-formed `.lssa` file must exit 1 and
    // report the same stable code `check` does — as a diagnostic, not a
    // usage error.
    let path = write_lssa("run-illformed", LSSA_ILL_FORMED);
    let out = lssa().args(["run"]).arg(&path).output().unwrap();
    assert_eq!(out.status.code(), Some(1));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("error[E0101]"), "{err}");
    assert!(err.contains("use of x7 out of scope"), "{err}");
    assert!(
        !err.contains("usage:"),
        "diagnostics must not trigger usage spam\n{err}"
    );
    std::fs::remove_file(path).ok();
}

#[test]
fn diff_and_bench_accept_lssa_files() {
    let path = write_lssa("diff", LSSA_PROGRAM);
    let out = lssa().args(["diff"]).arg(&path).output().unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("PASS"));

    let out = lssa().args(["bench"]).arg(&path).output().unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert_eq!(text.lines().count(), 4, "one line per config\n{text}");
    assert!(text.contains("result=42"), "{text}");

    // The JSON baseline is keyed by workload name: .lssa files refuse it.
    let out = lssa()
        .args(["bench"])
        .arg(&path)
        .args(["--json"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    std::fs::remove_file(path).ok();
}

#[test]
fn unknown_command_fails_with_usage() {
    let out = lssa().args(["frobnicate"]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));
}

#[test]
fn parse_error_is_reported() {
    let path = write_temp("bad", "def !");
    let out = lssa().args(["run"]).arg(&path).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("error"));
    std::fs::remove_file(path).ok();
}
