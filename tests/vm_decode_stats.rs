//! End-to-end guards for the decoded-bytecode VM:
//!
//! - decoding is lossless on real pipeline output (decode → encode
//!   round-trips every instruction of every compiled workload function);
//! - running the decoded form produces the workloads' recorded checksums
//!   (the enum form and the decoded form execute identically);
//! - deep tail recursion compiled by the full pipeline keeps the frame
//!   pool at a constant high-water mark with zero steady-state heap
//!   allocation — the `musttail` guarantee, now provable from
//!   `VmStatistics` instead of by stack-overflow absence.

use lambda_ssa::driver::pipelines::{compile, CompilerConfig};
use lambda_ssa::driver::workloads::{all, Scale};
use lambda_ssa::vm::{
    decode_program, decode_program_with, run_decoded, run_decoded_with, DecodeOptions,
    DispatchMode, ExecOptions, OpClass,
};

const MAX_STEPS: u64 = 500_000_000;

#[test]
fn decode_round_trips_compiled_workloads() {
    for w in all(Scale::Test) {
        let program =
            compile(&w.src, CompilerConfig::mlir()).unwrap_or_else(|e| panic!("{}: {e}", w.name));
        // Round-tripping is defined on the unfused stream (fused cells have
        // no single enum counterpart); fused-vs-unfused equivalence is
        // covered by `fuse_differential.rs`.
        let decoded = decode_program_with(&program, DecodeOptions::no_fuse());
        assert_eq!(decoded.fns.len(), program.fns.len());
        for (df, f) in decoded.fns.iter().zip(&program.fns) {
            assert_eq!(df.name, f.name, "{}", w.name);
            assert_eq!(df.arity, f.arity);
            assert_eq!(df.n_regs, f.n_regs);
            assert_eq!(df.code.len(), f.code.len());
            for (i, original) in f.code.iter().enumerate() {
                assert_eq!(
                    &df.encode(i),
                    original,
                    "{}: @{} instruction {i} does not round-trip",
                    w.name,
                    f.name
                );
            }
        }
        // And the decoded form executes to the recorded checksum.
        let out =
            run_decoded(&decoded, "main", MAX_STEPS).unwrap_or_else(|e| panic!("{}: {e}", w.name));
        assert_eq!(out.rendered, w.expected_test, "{}", w.name);
        assert_eq!(out.stats.heap.live, 0, "{}: leak", w.name);
        // The fused stream is strictly shorter statically and dynamically,
        // and produces the same checksum.
        let fused = decode_program(&program);
        assert!(
            fused.fusion.cells_saved > 0,
            "{}: fusion found nothing to fuse",
            w.name
        );
        let fused_out =
            run_decoded(&fused, "main", MAX_STEPS).unwrap_or_else(|e| panic!("{}: {e}", w.name));
        assert_eq!(fused_out.rendered, w.expected_test, "{}", w.name);
        assert!(
            fused_out.stats.instructions < out.stats.instructions,
            "{}: fused dispatch must execute fewer cells",
            w.name
        );
    }
}

#[test]
fn compiled_tail_recursion_runs_in_constant_frames() {
    // A tail-recursive countdown over raw machine arithmetic: after TCO the
    // loop body is pure arith + tail call, so the steady state must not
    // allocate at all — under either dispatch mode.
    let src_for = |n: u64| {
        format!(
            "def loop(n, acc) := if n == 0 then acc else loop(n - 1, acc + n)\n\
             def main() := loop({n}, 0)"
        )
    };
    for dispatch in [DispatchMode::Threaded, DispatchMode::Match] {
        let exec = ExecOptions::default().with_dispatch(dispatch);
        let run = |n: u64| {
            let program = compile(&src_for(n), CompilerConfig::mlir()).expect("compile");
            let decoded = decode_program(&program);
            run_decoded_with(&decoded, "main", MAX_STEPS, exec).expect("run")
        };
        let shallow = run(1_000);
        let deep = run(100_000);
        assert_eq!(deep.rendered, "5000050000");
        for out in [&shallow, &deep] {
            assert!(
                out.vm_stats.executed_of(OpClass::TailCall) > 0,
                "the pipeline must compile the recursion to tail calls"
            );
            assert!(
                out.vm_stats.max_depth <= 3,
                "frame-pool high-water mark must not grow with depth (got {})",
                out.vm_stats.max_depth
            );
            assert_eq!(
                out.vm_stats.frame_allocs, out.vm_stats.max_depth,
                "only the high-water mark's worth of frames is ever allocated"
            );
        }
        // Zero steady-state allocations of any kind ({dispatch:?}): 100x
        // the iterations, identical heap-allocation count, identical
        // frame-pool footprint. A recycled frame re-allocates only when
        // wired wider than ever before, so the pool's retained bytes must
        // not grow with depth either.
        assert_eq!(
            deep.vm_stats.heap.allocs, shallow.vm_stats.heap.allocs,
            "tail-call fast path must not allocate per iteration ({dispatch:?})"
        );
        assert_eq!(deep.vm_stats.allocs_of(OpClass::TailCall), 0);
        assert_eq!(
            deep.vm_stats.frame_pool_bytes, shallow.vm_stats.frame_pool_bytes,
            "frame-pool footprint must not grow with loop depth ({dispatch:?})"
        );
        assert_eq!(
            deep.vm_stats.max_frame_width, shallow.vm_stats.max_frame_width,
            "widest frame must not grow with loop depth ({dispatch:?})"
        );
        assert!(
            deep.vm_stats.tail_frame_reuses > shallow.vm_stats.tail_frame_reuses,
            "the deep loop must reuse its frame in place ({dispatch:?})"
        );
    }
}

#[test]
fn renumbering_shrinks_frames_without_changing_results() {
    // Real pipeline output: fusion swallows intermediates, renumbering
    // then compacts the register file. The compacted program must execute
    // identically with a strictly smaller (never larger) frame pool.
    for w in all(Scale::Test) {
        let program =
            compile(&w.src, CompilerConfig::mlir()).unwrap_or_else(|e| panic!("{}: {e}", w.name));
        let plain = decode_program_with(&program, DecodeOptions::fused().with_renumber(false));
        let compact = decode_program_with(&program, DecodeOptions::fused());
        assert!(
            compact.renumber.regs_after <= compact.renumber.regs_before,
            "{}: renumbering grew a register file",
            w.name
        );
        for (p, c) in plain.fns.iter().zip(&compact.fns) {
            assert!(c.n_regs <= p.n_regs, "{}/@{}", w.name, p.name);
        }
        let plain_out = run_decoded(&plain, "main", MAX_STEPS).expect("plain run");
        let compact_out = run_decoded(&compact, "main", MAX_STEPS).expect("compact run");
        assert_eq!(plain_out.rendered, compact_out.rendered, "{}", w.name);
        assert_eq!(
            plain_out.stats.instructions, compact_out.stats.instructions,
            "{}: renumbering must not change what executes",
            w.name
        );
        assert!(
            compact_out.vm_stats.frame_pool_bytes <= plain_out.vm_stats.frame_pool_bytes,
            "{}: compaction must never retain a larger frame pool",
            w.name
        );
        assert_eq!(
            compact_out.vm_stats.regs_saved,
            compact.renumber.regs_saved(),
            "{}",
            w.name
        );
    }
}
