//! End-to-end pass pipelines: λrc → lp → rgn → CFG.
//!
//! This is the "MLIR backend" of the paper (Figure 3's lower path), with the
//! knobs the evaluation turns:
//!
//! - `region_opts` — the §IV-B region optimizations (DRE via DCE, select /
//!   switch folding, run-of-known-region inlining, GRN). Figure 10 compares
//!   pipelines with and without these.
//! - `generic_opts` — MLIR's stock CFG-level passes (canonicalize, CSE, DCE,
//!   CFG simplification, inlining) that Figure 11 credits to the ecosystem.
//! - `guaranteed_tco` — `musttail` semantics (§III-E); the heuristic
//!   alternative models the C backend.
//! - `rc_opt` — the §III reference-count optimization (borrow-driven
//!   inc/dec pair elision and dec sinking) as a CFG-level pass.
//!
//! The phases are expressed as *named pipelines* on the instrumented
//! [`PassManager`] engine — `rgn-opt`, `lower-cfg`, `generic-opt`,
//! `rc-opt`, `tco`, `cleanup` — each driven to a fixpoint where iteration
//! matters.
//! [`compile_with_report`] returns the collected [`PipelineReport`] so
//! drivers (the `lssa` CLI's `--pass-stats`, the `ablation` binary) can
//! show per-pass statistics, and `print_ir_after_all` streams the module
//! after every pass for debugging.

use crate::lp::from_lambda;
use crate::rgn::{self, GrnPass, RgnToCfgPass, TcoPass};
use lssa_ir::module::Module;
use lssa_ir::pass::{PassManager, PipelineRunReport};
use lssa_ir::passes::{CanonicalizePass, CsePass, DcePass, InlinePass, RcOptPass, SimplifyCfgPass};
use lssa_lambda::ast::Program;

/// Fixpoint bound for the `rgn-opt` pipeline (GRN can expose new folds and
/// vice versa; historically this was a hard-coded 3-iteration loop).
pub const RGN_OPT_MAX_ITERS: usize = 3;

/// Fixpoint bound for the post-TCO `cleanup` pipeline. Generous: the
/// pipeline idempotence property (see [`reoptimize`]) relies on actually
/// reaching the fixpoint, and each constituent pass already fixpoints
/// internally, so convergence normally takes two or three sweeps.
pub const CLEANUP_MAX_ITERS: usize = 8;

/// Pipeline configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PipelineOptions {
    /// Run the rgn-dialect region optimizations (§IV-B).
    pub region_opts: bool,
    /// Run the generic CFG-level optimizations.
    pub generic_opts: bool,
    /// Guarantee all tail calls (vs. self-recursion only).
    pub guaranteed_tco: bool,
    /// Run the reference-count optimization (§III): borrow-driven
    /// `lp.inc`/`lp.dec` pair elision and dec sinking.
    pub rc_opt: bool,
    /// Verify the module between phases (slow; meant for tests).
    pub verify: bool,
    /// Run the RC-linearity checker after `rc-opt` and every later pass
    /// (slow; on under `--pass-stats` and in verification test runs). A
    /// definite inc/dec imbalance in compiler output panics with the
    /// offending function and block path.
    pub verify_rc: bool,
    /// Dump the module to stderr after every pass (the CLI's
    /// `--print-ir-after-all`).
    pub print_ir_after_all: bool,
}

impl Default for PipelineOptions {
    fn default() -> PipelineOptions {
        PipelineOptions::full()
    }
}

impl PipelineOptions {
    /// The full MLIR-style pipeline.
    pub fn full() -> PipelineOptions {
        PipelineOptions {
            region_opts: true,
            generic_opts: true,
            guaranteed_tco: true,
            rc_opt: true,
            verify: false,
            verify_rc: false,
            print_ir_after_all: false,
        }
    }

    /// Lowering only — no optimization at any level (Figure 10's variant c).
    pub fn no_opt() -> PipelineOptions {
        PipelineOptions {
            region_opts: false,
            generic_opts: false,
            rc_opt: false,
            ..PipelineOptions::full()
        }
    }

    /// Region optimizations off, generic CFG passes on.
    pub fn without_region_opts() -> PipelineOptions {
        PipelineOptions {
            region_opts: false,
            ..PipelineOptions::full()
        }
    }
}

/// Statistics for a whole [`compile_with_report`] run: one
/// [`PipelineRunReport`] per executed phase, in execution order.
#[derive(Debug, Clone, Default)]
pub struct PipelineReport {
    /// Per-phase reports (`rgn-opt`, `lower-cfg`, `generic-opt`, `tco`,
    /// `cleanup` — phases disabled by the options are absent).
    pub phases: Vec<PipelineRunReport>,
}

impl PipelineReport {
    /// Renders every phase's statistics table, concatenated.
    pub fn render_table(&self) -> String {
        self.phases
            .iter()
            .map(|p| p.render_table())
            .collect::<Vec<_>>()
            .join("\n")
    }

    /// Folds another compilation's report into this one, phase by phase
    /// (matched by pipeline name) — used to aggregate statistics across a
    /// benchmark suite.
    pub fn merge(&mut self, other: &PipelineReport) {
        for phase in &other.phases {
            match self
                .phases
                .iter_mut()
                .find(|p| p.pipeline == phase.pipeline)
            {
                Some(mine) => mine.merge(phase),
                None => self.phases.push(phase.clone()),
            }
        }
    }

    /// Total wall time across phases.
    pub fn total_duration(&self) -> std::time::Duration {
        self.phases.iter().map(|p| p.duration).sum()
    }
}

fn with_dump(pm: PassManager, opts: PipelineOptions) -> PassManager {
    if !opts.print_ir_after_all {
        return pm;
    }
    pm.dump_after_each(|path, module| {
        eprintln!(
            "// -----// IR dump after {path} //----- //\n{}",
            lssa_ir::printer::print_module(module)
        );
    })
}

/// The `rgn-opt` pipeline: region optimizations (§IV-B) as rewrites over
/// the canonicalization driver, plus GRN and DCE.
pub fn rgn_opt_pipeline(opts: PipelineOptions) -> PassManager {
    with_dump(
        PassManager::named("rgn-opt")
            .verify_each(opts.verify)
            .fixpoint(RGN_OPT_MAX_ITERS)
            .add(CanonicalizePass::with_extra(rgn::opt::all_patterns))
            .add(GrnPass)
            .add(CanonicalizePass::with_extra(rgn::opt::all_patterns))
            .add(DcePass),
        opts,
    )
}

/// The `generic-opt` pipeline: MLIR's stock CFG-level passes (Figure 11's
/// "MLIR builtin" credit), run as a single sweep like MLIR's default
/// pipeline — the trailing [`cleanup_pipeline`] fixpoints the cheap passes.
pub fn generic_opt_pipeline(opts: PipelineOptions) -> PassManager {
    with_dump(
        PassManager::named("generic-opt")
            .verify_each(opts.verify)
            .add(SimplifyCfgPass)
            .add(CanonicalizePass::new())
            .add(CsePass)
            .add(DcePass)
            .add(InlinePass::default())
            .add(CanonicalizePass::new())
            .add(DcePass),
        opts,
    )
}

/// The `rc-opt` pipeline: the §III reference-count optimization. A single
/// sweep — the pass drives each block to its own fixpoint internally, so
/// one sweep is already idempotent.
pub fn rc_opt_pipeline(opts: PipelineOptions) -> PassManager {
    with_dump(
        PassManager::named("rc-opt")
            .verify_each(opts.verify)
            .verify_rc(opts.verify_rc)
            .add(RcOptPass::default()),
        opts,
    )
}

/// The `cleanup` pipeline: the inliner-free subset of the generic passes,
/// safe to fixpoint after TCO (none of them can grow the module).
pub fn cleanup_pipeline(opts: PipelineOptions) -> PassManager {
    with_dump(
        PassManager::named("cleanup")
            .verify_each(opts.verify)
            .verify_rc(opts.verify_rc)
            .fixpoint(CLEANUP_MAX_ITERS)
            .add(SimplifyCfgPass)
            .add(CanonicalizePass::new())
            .add(CsePass)
            .add(DcePass),
        opts,
    )
}

/// Re-runs the final `cleanup` fixpoint on an already-compiled module.
///
/// Because [`compile`] ends (when `generic_opts` is on) with exactly this
/// pipeline driven to convergence, running it again on the compiler's own
/// output must report `changed == false` — the pipeline idempotence
/// property the test suite checks on generated programs.
pub fn reoptimize(module: &mut Module, opts: PipelineOptions) -> PipelineRunReport {
    cleanup_pipeline(opts).run(module)
}

/// Compiles a λrc program through lp and rgn down to a flat-CFG module.
///
/// # Panics
///
/// Panics if `opts.verify` is set and a phase produces invalid IR (compiler
/// bug), or on malformed input programs.
pub fn compile(program: &Program, opts: PipelineOptions) -> Module {
    compile_with_report(program, opts).0
}

/// [`compile`], also returning per-pass statistics for every phase.
///
/// # Panics
///
/// Panics under the same conditions as [`compile`].
pub fn compile_with_report(program: &Program, opts: PipelineOptions) -> (Module, PipelineReport) {
    let mut report = PipelineReport::default();
    // λrc → lp (Figure 3).
    let mut module = from_lambda::lower_program(program);
    maybe_verify(&module, opts, "lp lowering");
    // lp → rgn (Figure 8).
    rgn::from_lp::lower_module(&mut module);
    maybe_verify(&module, opts, "rgn lowering");
    // Region optimizations (§IV-B), to a fixpoint: GRN can expose new folds
    // and vice versa.
    if opts.region_opts {
        report.phases.push(rgn_opt_pipeline(opts).run(&mut module));
    }
    // rgn → CFG (§IV-C).
    report
        .phases
        .push(with_dump(PassManager::named("lower-cfg").add(RgnToCfgPass), opts).run(&mut module));
    maybe_verify(&module, opts, "CFG lowering");
    // Generic CFG-level cleanups (Figure 11's "MLIR builtin" passes).
    if opts.generic_opts {
        report
            .phases
            .push(generic_opt_pipeline(opts).run(&mut module));
    }
    // Reference-count optimization (§III): after generic-opt (whose
    // CSE/DCE/inlining expose same-block pairs), before tco, with the
    // trailing cleanup still running behind it.
    if opts.rc_opt {
        report.phases.push(rc_opt_pipeline(opts).run(&mut module));
    }
    // Tail calls (§III-E).
    report.phases.push(
        with_dump(
            PassManager::named("tco")
                .verify_rc(opts.verify_rc)
                .add(TcoPass {
                    only_self: !opts.guaranteed_tco,
                }),
            opts,
        )
        .run(&mut module),
    );
    // Final cleanup to a fixpoint — the anchor of the idempotence property
    // (see [`reoptimize`]).
    if opts.generic_opts {
        report.phases.push(reoptimize(&mut module, opts));
    }
    maybe_verify(&module, opts, "final");
    (module, report)
}

/// Compiles a batch of λrc programs with one call, merging every
/// compilation's per-pass statistics into a single [`PipelineReport`]
/// (phase by phase, see [`PipelineReport::merge`]).
///
/// This is the core-level batch entry point for callers that already hold
/// lowered λrc programs. For whole-source batches, `lssa-driver`'s
/// `pipelines::compile_batch` is the source-level analogue: it adds
/// parsing, per-source error capture, and the shared parallel executor
/// (and therefore drives compilations itself rather than through this
/// function).
///
/// # Panics
///
/// Panics under the same conditions as [`compile`].
pub fn compile_batch(programs: &[Program], opts: PipelineOptions) -> (Vec<Module>, PipelineReport) {
    let mut merged = PipelineReport::default();
    let modules = programs
        .iter()
        .map(|p| {
            let (module, report) = compile_with_report(p, opts);
            merged.merge(&report);
            module
        })
        .collect();
    (modules, merged)
}

fn maybe_verify(module: &Module, opts: PipelineOptions, phase: &str) {
    if !opts.verify {
        return;
    }
    if let Err(errs) = lssa_ir::verifier::verify_module(module) {
        let msgs: Vec<String> = errs.iter().map(|e| e.to_string()).collect();
        panic!(
            "verification failed after {phase}:\n{}\n{}",
            msgs.join("\n"),
            lssa_ir::printer::print_module(module)
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lssa_ir::opcode::Opcode;
    use lssa_lambda::{insert_rc, parse_program};

    fn compile_src(src: &str, opts: PipelineOptions) -> Module {
        let p = parse_program(src).unwrap();
        lssa_lambda::check_program(&p).unwrap();
        let rc = insert_rc(&p);
        compile(
            &rc,
            PipelineOptions {
                verify: true,
                ..opts
            },
        )
    }

    const LIST_SUM: &str = r#"
inductive List := Nil | Cons(h, t)
def build(n) := if n == 0 then Nil else Cons(n, build(n - 1))
def sum(xs) :=
  case xs of
  | Nil => 0
  | Cons(h, t) => h + sum(t)
  end
def main() := sum(build(20))
"#;

    #[test]
    fn full_pipeline_verifies() {
        let m = compile_src(LIST_SUM, PipelineOptions::full());
        assert!(m.func_by_name("main").is_some());
    }

    #[test]
    fn no_opt_pipeline_verifies() {
        compile_src(LIST_SUM, PipelineOptions::no_opt());
    }

    #[test]
    fn without_region_opts_verifies() {
        compile_src(LIST_SUM, PipelineOptions::without_region_opts());
    }

    #[test]
    fn optimized_is_no_larger_than_unoptimized() {
        let opt = compile_src(LIST_SUM, PipelineOptions::full());
        let raw = compile_src(LIST_SUM, PipelineOptions::no_opt());
        assert!(
            opt.live_op_count() <= raw.live_op_count(),
            "optimization must not grow code: {} vs {}",
            opt.live_op_count(),
            raw.live_op_count()
        );
    }

    #[test]
    fn constant_program_folds_completely() {
        // With folding + region opts, a constant case collapses.
        let m = compile_src(
            "def main() := if true then 40 + 2 else 0",
            PipelineOptions::full(),
        );
        let body = m.func_by_name("main").unwrap().body.as_ref().unwrap();
        // No branches survive.
        let has_branch = body.walk_ops().iter().any(|&op| {
            matches!(
                body.ops[op.index()].opcode,
                Opcode::CondBr | Opcode::SwitchBr
            )
        });
        assert!(!has_branch);
    }

    #[test]
    fn closures_compile_through_pipeline() {
        compile_src(
            r#"
def k(x, y) := x
def ap42(f) := f(42)
def main() := ap42(k(10))
"#,
            PipelineOptions::full(),
        );
    }

    #[test]
    fn report_names_every_enabled_phase() {
        let p = parse_program(LIST_SUM).unwrap();
        let rc = insert_rc(&p);
        let (_, report) = compile_with_report(&rc, PipelineOptions::full());
        let names: Vec<&str> = report.phases.iter().map(|p| p.pipeline.as_str()).collect();
        assert_eq!(
            names,
            vec![
                "rgn-opt",
                "lower-cfg",
                "generic-opt",
                "rc-opt",
                "tco",
                "cleanup"
            ]
        );
        // Every phase recorded per-pass rows with sensible op counts.
        for phase in &report.phases {
            assert!(!phase.passes.is_empty(), "{}", phase.pipeline);
            for s in &phase.passes {
                assert!(s.runs >= 1, "{}/{}", phase.pipeline, s.pass);
            }
        }
        let (_, minimal) = compile_with_report(&rc, PipelineOptions::no_opt());
        let names: Vec<&str> = minimal.phases.iter().map(|p| p.pipeline.as_str()).collect();
        assert_eq!(names, vec!["lower-cfg", "tco"]);
    }

    #[test]
    fn compile_batch_merges_reports_across_programs() {
        let a = insert_rc(&parse_program(LIST_SUM).unwrap());
        let b = insert_rc(&parse_program("def main() := 6 * 7").unwrap());
        let (modules, report) = compile_batch(&[a.clone(), b], PipelineOptions::full());
        assert_eq!(modules.len(), 2);
        assert!(modules.iter().all(|m| m.func_by_name("main").is_some()));
        // Each phase appears once, with both compilations folded in.
        let names: Vec<&str> = report.phases.iter().map(|p| p.pipeline.as_str()).collect();
        assert_eq!(
            names,
            vec![
                "rgn-opt",
                "lower-cfg",
                "generic-opt",
                "rc-opt",
                "tco",
                "cleanup"
            ]
        );
        let (_, single) = compile_with_report(&a, PipelineOptions::full());
        let batch_lower = report
            .phases
            .iter()
            .find(|p| p.pipeline == "lower-cfg")
            .unwrap();
        let single_lower = single
            .phases
            .iter()
            .find(|p| p.pipeline == "lower-cfg")
            .unwrap();
        assert!(
            batch_lower.passes[0].runs > single_lower.passes[0].runs,
            "merged report must accumulate runs across the batch"
        );
    }

    #[test]
    fn compile_output_is_a_cleanup_fixpoint() {
        let p = parse_program(LIST_SUM).unwrap();
        let rc = insert_rc(&p);
        let opts = PipelineOptions {
            verify: true,
            ..PipelineOptions::full()
        };
        let (mut module, report) = compile_with_report(&rc, opts);
        let cleanup = report.phases.last().unwrap();
        assert_eq!(cleanup.pipeline, "cleanup");
        assert!(cleanup.converged, "cleanup must reach its fixpoint");
        let again = reoptimize(&mut module, opts);
        assert!(!again.changed, "{}", again.render_table());
    }
}
