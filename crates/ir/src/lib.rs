//! # lssa-ir: an SSA+regions compiler IR
//!
//! Stand-in for the MLIR infrastructure the paper builds on: a minimal
//! SSA-based IR with *nested regions* as a first-class concept, a canonical
//! textual format with both a printer and a parser, a verifier enforcing
//! SSA dominance and the `rgn` dialect's use restrictions, and a pass /
//! pattern-rewrite framework with the classical optimizations the paper
//! reuses from MLIR (DCE, CSE, canonicalization, inlining).
//!
//! The operation set covers five dialects — `arith`, `cf`, `func`, `lp`,
//! `rgn` — see [`opcode::Opcode`].
//!
//! ```
//! use lssa_ir::prelude::*;
//!
//! let mut module = Module::new();
//! let (mut body, params) = Body::new(&[Type::I64]);
//! let entry = body.entry_block();
//! let mut b = Builder::at_end(&mut body, entry);
//! let one = b.const_i(1, Type::I64);
//! let sum = b.addi(params[0], one);
//! b.ret(sum);
//! module.add_function("inc", Signature::new(vec![Type::I64], Type::I64), body);
//! lssa_ir::verifier::verify_module(&module).unwrap();
//! let text = lssa_ir::printer::print_module(&module);
//! let reparsed = lssa_ir::parser::parse_module(&text).unwrap();
//! assert_eq!(text, lssa_ir::printer::print_module(&reparsed));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod analysis;
pub mod attr;
pub mod body;
pub mod builder;
pub mod dom;
pub mod ids;
pub mod inline_vec;
pub mod module;
pub mod opcode;
pub mod parser;
pub mod pass;
pub mod passes;
pub mod printer;
pub mod rewrite;
pub mod types;
pub mod verifier;

/// Commonly used items.
pub mod prelude {
    pub use crate::analysis::{BlockGraph, Liveness, RcVerdict, UseDefChains};
    pub use crate::attr::{Attr, AttrKey, CmpPred};
    pub use crate::body::{Body, OpData, Successor, ValueDef, ROOT_REGION};
    pub use crate::builder::Builder;
    pub use crate::ids::{BlockId, Interner, OpId, RegionId, Symbol, ValueId};
    pub use crate::inline_vec::InlineVec;
    pub use crate::module::{Function, Global, Module};
    pub use crate::opcode::{Opcode, Purity};
    pub use crate::pass::{Pass, PassManager, PassStatistics, PipelineRunReport};
    pub use crate::types::{Signature, Type};
}
