//! `lssa-syntax`: the `.lssa` text frontend for λpure/λrc programs.
//!
//! The in-memory [`lssa_lambda::ast`] IR finally gets a surface: a small
//! S-expression syntax with
//!
//! - a lexer that attaches a byte [`span::Span`] to every token,
//! - an S-expression reader with parenthesis-error recovery
//!   ([`sexp::read`]),
//! - a recursive-descent lowering to the existing AST that doubles as a
//!   wellformedness checker with *spans* ([`parse::parse_source`]) — its
//!   `E01xx` codes are shared verbatim with the span-free AST checker in
//!   [`lssa_lambda::wellformed`], so `lssa check file.lssa` and
//!   `lssa run file.lssa` name defects identically,
//! - a canonical, idempotent formatter ([`printer::print_program`]) with the
//!   round-trip guarantee `parse(print(p)) == p` (including the
//!   `next_var`/`next_join` id bounds), and
//! - a [`diag::Diagnostic`] type rendered either human-readable
//!   (`file:line:col: error[E0101]: …`) or as JSON lines for tooling.
//!
//! ```
//! let src = "(def main () (let x0 42 (ret x0)))";
//! let program = lssa_syntax::parse_program(src).unwrap();
//! assert_eq!(program.fns[0].name, "main");
//! let printed = lssa_syntax::print_program(&program);
//! assert_eq!(lssa_syntax::parse_program(&printed).unwrap(), program);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod diag;
pub mod lexer;
pub mod lint;
pub mod parse;
pub mod printer;
pub mod sexp;
pub mod span;

pub use diag::{render_all, Diagnostic, RenderFormat, Severity};
pub use lint::lint_source;
pub use parse::{check_source, parse_program, parse_source, ParseOutcome};
pub use printer::{format_source, print_fn_def, print_program};
pub use span::{LineIndex, Span};
