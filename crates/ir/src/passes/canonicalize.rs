//! Canonicalization: constant folding and peephole simplification, built on
//! the greedy pattern driver.
//!
//! The `select`/`switch_val` folds here are exactly the hooks the paper's
//! Figure 1 relies on: because region values flow through ordinary
//! `arith.select` / `arith.switch_val`, folding a selector on a constant
//! (case elimination) or on identical branches (common-branch elimination)
//! needs *no region-specific code* — these generic patterns do it.

use crate::attr::{Attr, AttrKey};
use crate::body::Body;
use crate::ids::{OpId, ValueId};
use crate::module::Module;
use crate::opcode::Opcode;
use crate::pass::{for_each_function, Pass};
use crate::passes::const_int_value;
use crate::rewrite::{apply_patterns_greedily, RewriteCtx, RewritePattern};
use crate::types::Type;

/// Returns the standard canonicalization pattern set.
pub fn canonicalization_patterns() -> Vec<Box<dyn RewritePattern>> {
    vec![
        Box::new(FoldBinaryArith),
        Box::new(FoldCmp),
        Box::new(ArithIdentity),
        Box::new(FoldSelect),
        Box::new(FoldSwitchVal),
        Box::new(FoldIntCast),
        Box::new(FoldCondBr),
        Box::new(FoldSwitchBr),
    ]
}

/// The canonicalization pass. Extra pattern sets (e.g. the `rgn` dialect's)
/// can be appended via the factory.
pub struct CanonicalizePass {
    extra: fn() -> Vec<Box<dyn RewritePattern>>,
}

impl std::fmt::Debug for CanonicalizePass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("CanonicalizePass")
    }
}

impl Default for CanonicalizePass {
    fn default() -> CanonicalizePass {
        CanonicalizePass::new()
    }
}

impl CanonicalizePass {
    /// Standard pattern set only.
    pub fn new() -> CanonicalizePass {
        CanonicalizePass { extra: Vec::new }
    }

    /// Standard patterns plus a dialect-specific set.
    pub fn with_extra(extra: fn() -> Vec<Box<dyn RewritePattern>>) -> CanonicalizePass {
        CanonicalizePass { extra }
    }
}

impl Pass for CanonicalizePass {
    fn name(&self) -> &'static str {
        "canonicalize"
    }

    fn run_on(&self, module: &mut Module) -> bool {
        let mut patterns = canonicalization_patterns();
        patterns.extend((self.extra)());
        for_each_function(module, |m, body| {
            let ctx = RewriteCtx { module: m };
            apply_patterns_greedily(body, &ctx, &patterns)
        })
    }
}

fn replace_with_const(body: &mut Body, op: OpId, value: i64, ty: Type) {
    let new = body.create_op(
        Opcode::ConstI,
        vec![],
        &[ty],
        vec![(AttrKey::Value, Attr::Int(ty.wrap(value)))],
    );
    body.insert_op_before(op, new);
    let new_res = body.ops[new.index()].result().unwrap();
    let old_res = body.ops[op.index()].result().unwrap();
    body.replace_all_uses(old_res, new_res);
    body.erase_op(op);
}

fn replace_with_value(body: &mut Body, op: OpId, v: ValueId) {
    let old = body.ops[op.index()].result().unwrap();
    body.replace_all_uses(old, v);
    body.erase_op(op);
}

/// Folds binary integer arithmetic on two constants.
struct FoldBinaryArith;

impl RewritePattern for FoldBinaryArith {
    fn name(&self) -> &'static str {
        "fold-binary-arith"
    }

    fn match_and_rewrite(&self, body: &mut Body, op: OpId, _ctx: &RewriteCtx<'_>) -> bool {
        let opcode = body.ops[op.index()].opcode;
        let f: fn(i64, i64) -> Option<i64> = match opcode {
            Opcode::AddI => |a, b| Some(a.wrapping_add(b)),
            Opcode::SubI => |a, b| Some(a.wrapping_sub(b)),
            Opcode::MulI => |a, b| Some(a.wrapping_mul(b)),
            Opcode::DivI => |a, b| a.checked_div(b),
            Opcode::RemI => |a, b| a.checked_rem(b),
            Opcode::AndI => |a, b| Some(a & b),
            Opcode::OrI => |a, b| Some(a | b),
            Opcode::XorI => |a, b| Some(a ^ b),
            _ => return false,
        };
        let [a, b] = body.ops[op.index()].operands[..] else {
            return false;
        };
        let (Some(va), Some(vb)) = (const_int_value(body, a), const_int_value(body, b)) else {
            return false;
        };
        let Some(v) = f(va, vb) else { return false };
        let ty = body.value_type(a);
        replace_with_const(body, op, v, ty);
        true
    }
}

/// Folds comparisons on two constants.
struct FoldCmp;

impl RewritePattern for FoldCmp {
    fn name(&self) -> &'static str {
        "fold-cmp"
    }

    fn match_and_rewrite(&self, body: &mut Body, op: OpId, _ctx: &RewriteCtx<'_>) -> bool {
        if body.ops[op.index()].opcode != Opcode::CmpI {
            return false;
        }
        let [a, b] = body.ops[op.index()].operands[..] else {
            return false;
        };
        let Some(pred) = body.ops[op.index()]
            .attr(AttrKey::Pred)
            .and_then(|p| p.as_pred())
        else {
            return false;
        };
        if let (Some(va), Some(vb)) = (const_int_value(body, a), const_int_value(body, b)) {
            replace_with_const(body, op, pred.eval(va, vb) as i64, Type::I1);
            return true;
        }
        // x == x, x <= x, x >= x fold even without constants.
        if a == b {
            use crate::attr::CmpPred::*;
            let v = match pred {
                Eq | Sle | Sge => 1,
                Ne | Slt | Sgt => 0,
            };
            replace_with_const(body, op, v, Type::I1);
            return true;
        }
        false
    }
}

/// Algebraic identities: `x+0`, `x-0`, `x*1`, `x*0`, `x|0`, `x^0`, `x&x`…
struct ArithIdentity;

impl RewritePattern for ArithIdentity {
    fn name(&self) -> &'static str {
        "arith-identity"
    }

    fn match_and_rewrite(&self, body: &mut Body, op: OpId, _ctx: &RewriteCtx<'_>) -> bool {
        let opcode = body.ops[op.index()].opcode;
        let [a, b] = body.ops[op.index()].operands[..] else {
            return false;
        };
        let ca = const_int_value(body, a);
        let cb = const_int_value(body, b);
        let ty = body.value_type(a);
        match opcode {
            Opcode::AddI | Opcode::OrI | Opcode::XorI => {
                if cb == Some(0) {
                    replace_with_value(body, op, a);
                    return true;
                }
                if ca == Some(0) {
                    replace_with_value(body, op, b);
                    return true;
                }
            }
            Opcode::SubI => {
                if cb == Some(0) {
                    replace_with_value(body, op, a);
                    return true;
                }
                if a == b {
                    replace_with_const(body, op, 0, ty);
                    return true;
                }
            }
            Opcode::MulI => {
                if cb == Some(1) {
                    replace_with_value(body, op, a);
                    return true;
                }
                if ca == Some(1) {
                    replace_with_value(body, op, b);
                    return true;
                }
                if cb == Some(0) || ca == Some(0) {
                    replace_with_const(body, op, 0, ty);
                    return true;
                }
            }
            Opcode::AndI => {
                if a == b {
                    replace_with_value(body, op, a);
                    return true;
                }
                if cb == Some(0) || ca == Some(0) {
                    replace_with_const(body, op, 0, ty);
                    return true;
                }
            }
            _ => {}
        }
        false
    }
}

/// `select(true, a, b) → a`, `select(false, a, b) → b`, `select(c, a, a) → a`.
///
/// Applied to region values this is the paper's *case elimination* (constant
/// condition, Fig 1B) and *common branch elimination* (equal branches after
/// region numbering, Fig 1C).
struct FoldSelect;

impl RewritePattern for FoldSelect {
    fn name(&self) -> &'static str {
        "fold-select"
    }

    fn match_and_rewrite(&self, body: &mut Body, op: OpId, _ctx: &RewriteCtx<'_>) -> bool {
        if body.ops[op.index()].opcode != Opcode::Select {
            return false;
        }
        let [c, a, b] = body.ops[op.index()].operands[..] else {
            return false;
        };
        if a == b {
            replace_with_value(body, op, a);
            return true;
        }
        match const_int_value(body, c) {
            Some(0) => {
                replace_with_value(body, op, b);
                true
            }
            Some(_) => {
                replace_with_value(body, op, a);
                true
            }
            None => false,
        }
    }
}

/// `switch_val` on a constant index → the matching branch; all-equal
/// branches → that branch.
struct FoldSwitchVal;

impl RewritePattern for FoldSwitchVal {
    fn name(&self) -> &'static str {
        "fold-switch-val"
    }

    fn match_and_rewrite(&self, body: &mut Body, op: OpId, _ctx: &RewriteCtx<'_>) -> bool {
        if body.ops[op.index()].opcode != Opcode::SwitchVal {
            return false;
        }
        let operands = body.ops[op.index()].operands.clone();
        let Some(cases) = body.ops[op.index()]
            .attr(AttrKey::Cases)
            .and_then(|a| a.as_int_list())
            .map(|c| c.to_vec())
        else {
            return false;
        };
        let vals = &operands[1..];
        if vals.iter().all(|&v| v == vals[0]) {
            replace_with_value(body, op, vals[0]);
            return true;
        }
        if let Some(idx) = const_int_value(body, operands[0]) {
            let chosen = cases
                .iter()
                .position(|&c| c == idx)
                .map(|i| vals[i])
                .unwrap_or(*vals.last().unwrap());
            replace_with_value(body, op, chosen);
            return true;
        }
        // Drop case arms whose value equals the default (shrinks the table).
        let default = *vals.last().unwrap();
        if vals[..vals.len() - 1].contains(&default) {
            let mut new_cases = Vec::new();
            let mut new_vals = Vec::new();
            for (i, &c) in cases.iter().enumerate() {
                if vals[i] != default {
                    new_cases.push(c);
                    new_vals.push(vals[i]);
                }
            }
            let mut ops = vec![operands[0]];
            ops.extend(new_vals);
            ops.push(default);
            let data = &mut body.ops[op.index()];
            data.operands = ops.into();
            for (k, a) in &mut data.attrs {
                if *k == AttrKey::Cases {
                    *a = Attr::IntList(new_cases.clone().into());
                }
            }
            return true;
        }
        false
    }
}

/// Folds `extui`/`trunci` of constants.
struct FoldIntCast;

impl RewritePattern for FoldIntCast {
    fn name(&self) -> &'static str {
        "fold-int-cast"
    }

    fn match_and_rewrite(&self, body: &mut Body, op: OpId, _ctx: &RewriteCtx<'_>) -> bool {
        let opcode = body.ops[op.index()].opcode;
        if !matches!(opcode, Opcode::ExtUI | Opcode::TruncI) {
            return false;
        }
        let [a] = body.ops[op.index()].operands[..] else {
            return false;
        };
        let Some(v) = const_int_value(body, a) else {
            return false;
        };
        let from = body.value_type(a);
        let to = body.value_type(body.ops[op.index()].result().unwrap());
        let folded = match opcode {
            Opcode::ExtUI => {
                // Zero-extension: reinterpret the source bits unsigned.
                let bits = from.bit_width().unwrap();
                if bits == 64 {
                    v
                } else {
                    v & ((1i64 << bits) - 1)
                }
            }
            Opcode::TruncI => to.wrap(v),
            _ => unreachable!(),
        };
        replace_with_const(body, op, folded, to);
        true
    }
}

/// `cond_br` on a constant → `br`; identical destinations → `br`.
struct FoldCondBr;

impl RewritePattern for FoldCondBr {
    fn name(&self) -> &'static str {
        "fold-cond-br"
    }

    fn match_and_rewrite(&self, body: &mut Body, op: OpId, _ctx: &RewriteCtx<'_>) -> bool {
        if body.ops[op.index()].opcode != Opcode::CondBr {
            return false;
        }
        let succs = body.ops[op.index()].successors.clone();
        let cond = body.ops[op.index()].operands[0];
        let target = if let Some(v) = const_int_value(body, cond) {
            if v != 0 {
                succs[0].clone()
            } else {
                succs[1].clone()
            }
        } else if succs[0] == succs[1] {
            succs[0].clone()
        } else {
            return false;
        };
        let parent = body.ops[op.index()].parent.unwrap();
        body.erase_op(op);
        let br = body.create_op(Opcode::Br, vec![], &[], vec![]);
        body.ops[br.index()].successors.push(target);
        body.push_op(parent, br);
        true
    }
}

/// `cf.switch` on a constant → `br` to the matching case.
struct FoldSwitchBr;

impl RewritePattern for FoldSwitchBr {
    fn name(&self) -> &'static str {
        "fold-switch-br"
    }

    fn match_and_rewrite(&self, body: &mut Body, op: OpId, _ctx: &RewriteCtx<'_>) -> bool {
        if body.ops[op.index()].opcode != Opcode::SwitchBr {
            return false;
        }
        let idx = body.ops[op.index()].operands[0];
        let Some(v) = const_int_value(body, idx) else {
            return false;
        };
        let cases = body.ops[op.index()]
            .attr(AttrKey::Cases)
            .and_then(|a| a.as_int_list())
            .map(|c| c.to_vec())
            .unwrap_or_default();
        let succs = body.ops[op.index()].successors.clone();
        let target = cases
            .iter()
            .position(|&c| c == v)
            .map(|i| succs[i].clone())
            .unwrap_or_else(|| succs.last().unwrap().clone());
        let parent = body.ops[op.index()].parent.unwrap();
        body.erase_op(op);
        let br = body.create_op(Opcode::Br, vec![], &[], vec![]);
        body.ops[br.index()].successors.push(target);
        body.push_op(parent, br);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::CmpPred;
    use crate::body::ROOT_REGION;
    use crate::builder::Builder;
    use crate::types::Signature;

    fn canonicalized(body: Body) -> Body {
        let mut m = Module::new();
        m.add_function("f", Signature::new(vec![], Type::I64), body);
        // Note: not verifying here (tests build partial functions freely).
        let mut body = m
            .func_mut(m.interner.get("f").unwrap())
            .unwrap()
            .body
            .take()
            .unwrap();
        let patterns = canonicalization_patterns();
        let ctx = RewriteCtx { module: &m };
        apply_patterns_greedily(&mut body, &ctx, &patterns);
        body
    }

    fn ret_is_const(body: &Body, expected: i64) -> bool {
        let entry = body.entry_block();
        let ret = body.terminator(entry).unwrap();
        let v = body.ops[ret.index()].operands[0];
        const_int_value(body, v) == Some(expected)
    }

    #[test]
    fn folds_constant_tree() {
        let (mut body, _) = Body::new(&[]);
        let entry = body.entry_block();
        let mut b = Builder::at_end(&mut body, entry);
        let c2 = b.const_i(2, Type::I64);
        let c3 = b.const_i(3, Type::I64);
        let s = b.addi(c2, c3); // 5
        let m = b.muli(s, s); // 25
        let d = b.subi(m, c2); // 23
        b.ret(d);
        let body = canonicalized(body);
        assert!(ret_is_const(&body, 23));
        assert_eq!(body.live_op_count(), 2);
    }

    #[test]
    fn division_by_zero_not_folded() {
        let (mut body, _) = Body::new(&[]);
        let entry = body.entry_block();
        let mut b = Builder::at_end(&mut body, entry);
        let c1 = b.const_i(1, Type::I64);
        let c0 = b.const_i(0, Type::I64);
        let d = b.divi(c1, c0);
        b.ret(d);
        let body = canonicalized(body);
        assert!(!ret_is_const(&body, 0));
        assert_eq!(body.live_op_count(), 4);
    }

    #[test]
    fn select_on_constant_folds() {
        let (mut body, params) = Body::new(&[Type::I64, Type::I64]);
        let entry = body.entry_block();
        let mut b = Builder::at_end(&mut body, entry);
        let t = b.const_bool(true);
        let s = b.select(t, params[0], params[1]);
        b.ret(s);
        let body = canonicalized(body);
        let ret = body.terminator(body.entry_block()).unwrap();
        assert_eq!(body.ops[ret.index()].operands, vec![params[0]]);
        assert_eq!(body.live_op_count(), 1);
    }

    #[test]
    fn select_equal_branches_folds() {
        let (mut body, params) = Body::new(&[Type::I1, Type::I64]);
        let entry = body.entry_block();
        let mut b = Builder::at_end(&mut body, entry);
        let s = b.select(params[0], params[1], params[1]);
        b.ret(s);
        let body = canonicalized(body);
        let ret = body.terminator(body.entry_block()).unwrap();
        assert_eq!(body.ops[ret.index()].operands, vec![params[1]]);
    }

    #[test]
    fn switch_val_constant_picks_case() {
        let (mut body, params) = Body::new(&[Type::I64, Type::I64, Type::I64]);
        let entry = body.entry_block();
        let mut b = Builder::at_end(&mut body, entry);
        let idx = b.const_i(1, Type::I8);
        let s = b.switch_val(idx, vec![0, 1], vec![params[0], params[1]], params[2]);
        b.ret(s);
        let body = canonicalized(body);
        let ret = body.terminator(body.entry_block()).unwrap();
        assert_eq!(body.ops[ret.index()].operands, vec![params[1]]);
    }

    #[test]
    fn switch_val_constant_default() {
        let (mut body, params) = Body::new(&[Type::I64, Type::I64]);
        let entry = body.entry_block();
        let mut b = Builder::at_end(&mut body, entry);
        let idx = b.const_i(9, Type::I8);
        let s = b.switch_val(idx, vec![0], vec![params[0]], params[1]);
        b.ret(s);
        let body = canonicalized(body);
        let ret = body.terminator(body.entry_block()).unwrap();
        assert_eq!(body.ops[ret.index()].operands, vec![params[1]]);
    }

    #[test]
    fn cmp_same_operand_folds() {
        let (mut body, params) = Body::new(&[Type::I64]);
        let entry = body.entry_block();
        let mut b = Builder::at_end(&mut body, entry);
        let c = b.cmpi(CmpPred::Sle, params[0], params[0]);
        let e = b.extui(c, Type::I64);
        b.ret(e);
        let body = canonicalized(body);
        assert!(ret_is_const(&body, 1));
    }

    #[test]
    fn cond_br_on_constant_becomes_br() {
        let (mut body, _) = Body::new(&[]);
        let entry = body.entry_block();
        let then_b = body.new_block(ROOT_REGION, &[]);
        let else_b = body.new_block(ROOT_REGION, &[]);
        let mut b = Builder::at_end(&mut body, entry);
        let t = b.const_bool(false);
        b.cond_br(t, (then_b, vec![]), (else_b, vec![]));
        let mut bt = Builder::at_end(&mut body, then_b);
        let v = bt.const_i(1, Type::I64);
        bt.ret(v);
        let mut be = Builder::at_end(&mut body, else_b);
        let v = be.const_i(2, Type::I64);
        be.ret(v);
        let body = canonicalized(body);
        let term = body.terminator(body.entry_block()).unwrap();
        assert_eq!(body.ops[term.index()].opcode, Opcode::Br);
        assert_eq!(body.ops[term.index()].successors[0].block, else_b);
    }

    #[test]
    fn switch_br_on_constant_becomes_br() {
        let (mut body, _) = Body::new(&[]);
        let entry = body.entry_block();
        let b0 = body.new_block(ROOT_REGION, &[]);
        let b1 = body.new_block(ROOT_REGION, &[]);
        let bd = body.new_block(ROOT_REGION, &[]);
        let mut b = Builder::at_end(&mut body, entry);
        let c = b.const_i(1, Type::I8);
        b.switch_br(
            c,
            vec![0, 1],
            vec![(b0, vec![]), (b1, vec![])],
            (bd, vec![]),
        );
        for blk in [b0, b1, bd] {
            let mut bb = Builder::at_end(&mut body, blk);
            let v = bb.const_i(0, Type::I64);
            bb.ret(v);
        }
        let body = canonicalized(body);
        let term = body.terminator(body.entry_block()).unwrap();
        assert_eq!(body.ops[term.index()].opcode, Opcode::Br);
        assert_eq!(body.ops[term.index()].successors[0].block, b1);
    }

    #[test]
    fn mul_by_zero_and_identities() {
        let (mut body, params) = Body::new(&[Type::I64]);
        let entry = body.entry_block();
        let mut b = Builder::at_end(&mut body, entry);
        let zero = b.const_i(0, Type::I64);
        let one = b.const_i(1, Type::I64);
        let x1 = b.muli(params[0], one); // x
        let x2 = b.addi(x1, zero); // x
        let x3 = b.muli(x2, zero); // 0
        let x4 = b.ori(x3, zero); // 0
        b.ret(x4);
        let body = canonicalized(body);
        assert!(ret_is_const(&body, 0));
    }
}
