//! The execution engine.
//!
//! An iterative interpreter over an explicit frame stack:
//!
//! - `TailCall` *replaces* the current frame — tail calls consume no stack,
//!   delivering the `musttail` guarantee of §III-E;
//! - `PapExtend` uses the shared saturation semantics from `lssa-rt`, so
//!   closure behaviour matches the reference interpreter exactly;
//! - every instruction executed is counted, giving a deterministic
//!   performance metric alongside wall-clock time.

use crate::bytecode::{CompiledProgram, Instr, Reg};
use lssa_rt::{pap_extend, pap_new, ApplyOutcome, FuncId, Heap, HeapStats, Int, ObjRef};
use std::fmt;

/// A runtime failure (trap, stack/step limits, type confusion).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VmError {
    /// Description.
    pub message: String,
}

impl fmt::Display for VmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "vm error: {}", self.message)
    }
}

impl std::error::Error for VmError {}

fn err(message: impl Into<String>) -> VmError {
    VmError {
        message: message.into(),
    }
}

/// Execution statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Instructions executed.
    pub instructions: u64,
    /// Function calls made (including tail calls).
    pub calls: u64,
    /// Maximum frame-stack depth.
    pub max_stack: u64,
    /// Heap statistics at the end of the run.
    pub heap: HeapStats,
}

/// Result of running a program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunOutcome {
    /// Stable rendering of the produced value.
    pub rendered: String,
    /// Statistics.
    pub stats: ExecStats,
}

/// The virtual machine.
#[derive(Debug)]
pub struct Vm<'p> {
    program: &'p CompiledProgram,
    /// The runtime heap (public for tests).
    pub heap: Heap,
    globals: Vec<ObjRef>,
    max_steps: u64,
    steps: u64,
    calls: u64,
    max_stack: u64,
}

struct Frame {
    func: usize,
    pc: usize,
    regs: Vec<u64>,
    /// Register in the *caller's* frame receiving the return value.
    ret_dst: Reg,
    /// Arguments still to be applied to the returned closure
    /// (over-saturated `papextend`).
    after_ret: Vec<ObjRef>,
}

impl<'p> Vm<'p> {
    /// Creates a VM for `program` with a step budget.
    pub fn new(program: &'p CompiledProgram, max_steps: u64) -> Vm<'p> {
        Vm {
            program,
            heap: Heap::new(),
            globals: vec![ObjRef::scalar(0); program.globals.len()],
            max_steps,
            steps: 0,
            calls: 0,
            max_stack: 0,
        }
    }

    /// Runs `entry` (zero-argument) to completion and returns the result.
    ///
    /// # Errors
    ///
    /// Returns an error on traps, step exhaustion, or a missing entry point.
    pub fn run(&mut self, entry: &str) -> Result<ObjRef, VmError> {
        let idx = self
            .program
            .fn_index(entry)
            .ok_or_else(|| err(format!("no function @{entry}")))?;
        self.call(idx, Vec::new())
    }

    /// Calls function `idx` with owned arguments.
    ///
    /// # Errors
    ///
    /// See [`Vm::run`].
    pub fn call(&mut self, idx: usize, args: Vec<ObjRef>) -> Result<ObjRef, VmError> {
        let mut stack: Vec<Frame> = vec![self.new_frame(idx, args, Reg(0))?];
        loop {
            self.max_stack = self.max_stack.max(stack.len() as u64);
            let frame = stack.last_mut().expect("empty stack");
            if self.steps >= self.max_steps {
                return Err(err("step budget exhausted (likely non-termination)"));
            }
            self.steps += 1;
            let f = &self.program.fns[frame.func];
            let instr = f
                .code
                .get(frame.pc)
                .ok_or_else(|| err(format!("pc out of range in @{}", f.name)))?
                .clone();
            frame.pc += 1;
            match instr {
                Instr::ConstInt { dst, v } => frame.regs[dst.0 as usize] = v as u64,
                Instr::LpInt { dst, v } => {
                    frame.regs[dst.0 as usize] = ObjRef::scalar(v).to_bits();
                }
                Instr::LpBig { dst, idx } => {
                    let n = self.program.big_pool[idx as usize].clone();
                    frame.regs[dst.0 as usize] = self.heap.mk_nat(n).to_bits();
                }
                Instr::LpStr { dst, idx } => {
                    let s = self.program.str_pool[idx as usize].clone();
                    frame.regs[dst.0 as usize] = self.heap.alloc_str(s).to_bits();
                }
                Instr::Construct { dst, tag, ref args } => {
                    let fields: Vec<ObjRef> = args
                        .iter()
                        .map(|&r| ObjRef::from_bits(frame.regs[r.0 as usize]))
                        .collect();
                    frame.regs[dst.0 as usize] = self.heap.alloc_ctor(tag, fields).to_bits();
                }
                Instr::GetLabel { dst, src } => {
                    let o = ObjRef::from_bits(frame.regs[src.0 as usize]);
                    frame.regs[dst.0 as usize] = self.heap.ctor_tag(o) as u64;
                }
                Instr::Project { dst, src, idx } => {
                    let o = ObjRef::from_bits(frame.regs[src.0 as usize]);
                    frame.regs[dst.0 as usize] = self.heap.ctor_field(o, idx as usize).to_bits();
                }
                Instr::Pap {
                    dst,
                    func,
                    arity,
                    ref args,
                } => {
                    let vals: Vec<ObjRef> = args
                        .iter()
                        .map(|&r| ObjRef::from_bits(frame.regs[r.0 as usize]))
                        .collect();
                    let outcome = pap_new(&mut self.heap, FuncId(func), arity, vals);
                    self.apply(&mut stack, dst, outcome)?;
                }
                Instr::PapExtend {
                    dst,
                    closure,
                    ref args,
                } => {
                    let c = ObjRef::from_bits(frame.regs[closure.0 as usize]);
                    if !matches!(self.heap.data(c), lssa_rt::ObjData::Closure { .. }) {
                        return Err(err("papextend of a non-closure value"));
                    }
                    let vals: Vec<ObjRef> = args
                        .iter()
                        .map(|&r| ObjRef::from_bits(frame.regs[r.0 as usize]))
                        .collect();
                    let outcome = pap_extend(&mut self.heap, c, vals);
                    self.apply(&mut stack, dst, outcome)?;
                }
                Instr::Inc { src } => {
                    let o = ObjRef::from_bits(frame.regs[src.0 as usize]);
                    self.heap.inc(o);
                }
                Instr::Dec { src } => {
                    let o = ObjRef::from_bits(frame.regs[src.0 as usize]);
                    self.heap.dec(o);
                }
                Instr::Call {
                    dst,
                    func,
                    ref args,
                } => {
                    let vals: Vec<ObjRef> = args
                        .iter()
                        .map(|&r| ObjRef::from_bits(frame.regs[r.0 as usize]))
                        .collect();
                    let new = self.new_frame(func as usize, vals, dst)?;
                    stack.push(new);
                }
                Instr::CallBuiltin {
                    dst,
                    builtin,
                    ref args,
                } => {
                    let vals: Vec<ObjRef> = args
                        .iter()
                        .map(|&r| ObjRef::from_bits(frame.regs[r.0 as usize]))
                        .collect();
                    self.calls += 1;
                    let out = builtin.call(&mut self.heap, &vals);
                    frame.regs[dst.0 as usize] = out.to_bits();
                }
                Instr::TailCall { func, ref args } => {
                    let vals: Vec<ObjRef> = args
                        .iter()
                        .map(|&r| ObjRef::from_bits(frame.regs[r.0 as usize]))
                        .collect();
                    // Reuse the current frame: constant stack space.
                    let ret_dst = frame.ret_dst;
                    let after_ret = std::mem::take(&mut frame.after_ret);
                    let mut new = self.new_frame(func as usize, vals, ret_dst)?;
                    new.after_ret = after_ret;
                    *stack.last_mut().unwrap() = new;
                }
                Instr::Ret { src } => {
                    let value = ObjRef::from_bits(frame.regs[src.0 as usize]);
                    let done = stack.pop().expect("ret on empty stack");
                    if !done.after_ret.is_empty() {
                        // Continue an over-saturated application.
                        if !matches!(self.heap.data(value), lssa_rt::ObjData::Closure { .. }) {
                            return Err(err("over-application of a non-closure result"));
                        }
                        let outcome = pap_extend(&mut self.heap, value, done.after_ret);
                        match stack.last_mut() {
                            Some(_) => self.apply(&mut stack, done.ret_dst, outcome)?,
                            None => {
                                // Whole-program result must not be pending.
                                return match outcome {
                                    ApplyOutcome::Partial(c) => Ok(c),
                                    _ => Err(err("dangling over-application at exit")),
                                };
                            }
                        }
                        continue;
                    }
                    match stack.last_mut() {
                        Some(caller) => caller.regs[done.ret_dst.0 as usize] = value.to_bits(),
                        None => return Ok(value),
                    }
                }
                Instr::Jump { target } => frame.pc = target,
                Instr::Branch {
                    cond,
                    then_t,
                    else_t,
                } => {
                    frame.pc = if frame.regs[cond.0 as usize] != 0 {
                        then_t
                    } else {
                        else_t
                    };
                }
                Instr::Switch {
                    idx,
                    ref cases,
                    default,
                } => {
                    let v = frame.regs[idx.0 as usize] as i64;
                    frame.pc = cases
                        .iter()
                        .find(|&&(c, _)| c == v)
                        .map(|&(_, t)| t)
                        .unwrap_or(default);
                }
                Instr::Bin { op, dst, a, b } => {
                    let x = frame.regs[a.0 as usize] as i64;
                    let y = frame.regs[b.0 as usize] as i64;
                    let v = op
                        .eval(x, y)
                        .ok_or_else(|| err("integer division by zero"))?;
                    frame.regs[dst.0 as usize] = v as u64;
                }
                Instr::Cmp { pred, dst, a, b } => {
                    let x = frame.regs[a.0 as usize] as i64;
                    let y = frame.regs[b.0 as usize] as i64;
                    frame.regs[dst.0 as usize] = pred.eval(x, y) as u64;
                }
                Instr::Select { dst, c, a, b } => {
                    let v = if frame.regs[c.0 as usize] != 0 {
                        frame.regs[a.0 as usize]
                    } else {
                        frame.regs[b.0 as usize]
                    };
                    frame.regs[dst.0 as usize] = v;
                }
                Instr::Mask { dst, src, mask } => {
                    frame.regs[dst.0 as usize] = frame.regs[src.0 as usize] & mask;
                }
                Instr::Move { dst, src } => {
                    frame.regs[dst.0 as usize] = frame.regs[src.0 as usize];
                }
                Instr::GlobalLoad { dst, idx } => {
                    frame.regs[dst.0 as usize] = self.globals[idx as usize].to_bits();
                }
                Instr::GlobalStore { idx, src } => {
                    self.globals[idx as usize] = ObjRef::from_bits(frame.regs[src.0 as usize]);
                }
                Instr::Trap => {
                    return Err(err(format!(
                        "reached unreachable code in @{}",
                        self.program.fns[stack.last().unwrap().func].name
                    )))
                }
            }
        }
    }

    fn new_frame(
        &mut self,
        func: usize,
        args: Vec<ObjRef>,
        ret_dst: Reg,
    ) -> Result<Frame, VmError> {
        let f = self
            .program
            .fns
            .get(func)
            .ok_or_else(|| err(format!("bad function index {func}")))?;
        if args.len() != f.arity as usize {
            return Err(err(format!(
                "@{} called with {} args (arity {})",
                f.name,
                args.len(),
                f.arity
            )));
        }
        self.calls += 1;
        let mut regs = vec![0u64; f.n_regs as usize];
        for (i, a) in args.into_iter().enumerate() {
            regs[i] = a.to_bits();
        }
        Ok(Frame {
            func,
            pc: 0,
            regs,
            ret_dst,
            after_ret: Vec::new(),
        })
    }

    /// Handles a pap/papextend outcome: either a value, or frames to push.
    fn apply(
        &mut self,
        stack: &mut Vec<Frame>,
        dst: Reg,
        outcome: ApplyOutcome,
    ) -> Result<(), VmError> {
        match outcome {
            ApplyOutcome::Partial(c) => {
                let frame = stack.last_mut().expect("apply without frame");
                frame.regs[dst.0 as usize] = c.to_bits();
                Ok(())
            }
            ApplyOutcome::Call { func, args } => {
                let new = self.new_frame(func.0 as usize, args, dst)?;
                stack.push(new);
                Ok(())
            }
            ApplyOutcome::CallThen { func, args, rest } => {
                let mut new = self.new_frame(func.0 as usize, args, dst)?;
                new.after_ret = rest;
                stack.push(new);
                Ok(())
            }
        }
    }

    /// Statistics so far.
    pub fn stats(&self) -> ExecStats {
        ExecStats {
            instructions: self.steps,
            calls: self.calls,
            max_stack: self.max_stack,
            heap: self.heap.stats(),
        }
    }

    /// Decodes an integer result (convenience for tests).
    pub fn to_int(&self, r: ObjRef) -> Int {
        self.heap.get_int(r)
    }
}

/// Runs `entry` of `program` and renders the result.
///
/// # Errors
///
/// See [`Vm::run`].
pub fn run_program(
    program: &CompiledProgram,
    entry: &str,
    max_steps: u64,
) -> Result<RunOutcome, VmError> {
    let mut vm = Vm::new(program, max_steps);
    let result = vm.run(entry)?;
    let rendered = vm.heap.render(result);
    vm.heap.dec(result);
    Ok(RunOutcome {
        rendered,
        stats: vm.stats(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bytecode::{BinOp, CmpPred, CompiledFn, CompiledProgram};

    fn single(code: Vec<Instr>, n_regs: u16) -> CompiledProgram {
        CompiledProgram {
            fns: vec![CompiledFn {
                name: "main".into(),
                arity: 0,
                n_regs,
                code,
            }],
            ..CompiledProgram::default()
        }
    }

    #[test]
    fn returns_scalar() {
        let p = single(
            vec![
                Instr::LpInt { dst: Reg(0), v: 42 },
                Instr::Ret { src: Reg(0) },
            ],
            1,
        );
        let out = run_program(&p, "main", 1000).unwrap();
        assert_eq!(out.rendered, "42");
        assert_eq!(out.stats.instructions, 2);
    }

    #[test]
    fn arithmetic_and_branching() {
        // if (2 < 3) then 10 else 20
        let p = single(
            vec![
                Instr::ConstInt { dst: Reg(0), v: 2 },
                Instr::ConstInt { dst: Reg(1), v: 3 },
                Instr::Cmp {
                    pred: CmpPred::Slt,
                    dst: Reg(2),
                    a: Reg(0),
                    b: Reg(1),
                },
                Instr::Branch {
                    cond: Reg(2),
                    then_t: 4,
                    else_t: 6,
                },
                Instr::LpInt { dst: Reg(3), v: 10 },
                Instr::Ret { src: Reg(3) },
                Instr::LpInt { dst: Reg(3), v: 20 },
                Instr::Ret { src: Reg(3) },
            ],
            4,
        );
        assert_eq!(run_program(&p, "main", 1000).unwrap().rendered, "10");
    }

    #[test]
    fn tail_call_uses_constant_stack() {
        // loop(n): if n == 0 ret 7 else tail loop(n-1)
        let p = CompiledProgram {
            fns: vec![
                CompiledFn {
                    name: "main".into(),
                    arity: 0,
                    n_regs: 2,
                    code: vec![
                        Instr::LpInt {
                            dst: Reg(0),
                            v: 1_000_000,
                        },
                        Instr::Call {
                            dst: Reg(1),
                            func: 1,
                            args: vec![Reg(0)],
                        },
                        Instr::Ret { src: Reg(1) },
                    ],
                },
                CompiledFn {
                    name: "loop".into(),
                    arity: 1,
                    n_regs: 4,
                    code: vec![
                        // r1 = raw n (scalar decode: just compare object bits
                        // against scalar 0 encoding via getlabel)
                        Instr::GetLabel {
                            dst: Reg(1),
                            src: Reg(0),
                        },
                        Instr::ConstInt { dst: Reg(2), v: 0 },
                        Instr::Cmp {
                            pred: CmpPred::Eq,
                            dst: Reg(2),
                            a: Reg(1),
                            b: Reg(2),
                        },
                        Instr::Branch {
                            cond: Reg(2),
                            then_t: 4,
                            else_t: 6,
                        },
                        Instr::LpInt { dst: Reg(3), v: 7 },
                        Instr::Ret { src: Reg(3) },
                        Instr::LpInt { dst: Reg(2), v: 1 },
                        Instr::CallBuiltin {
                            dst: Reg(3),
                            builtin: lssa_rt::Builtin::NatSub,
                            args: vec![Reg(0), Reg(2)],
                        },
                        Instr::TailCall {
                            func: 1,
                            args: vec![Reg(3)],
                        },
                    ],
                },
            ],
            ..CompiledProgram::default()
        };
        let mut vm = Vm::new(&p, 100_000_000);
        let r = vm.run("main").unwrap();
        assert_eq!(vm.heap.render(r), "7");
        assert!(vm.stats().max_stack <= 2, "tail calls must not grow stack");
    }

    #[test]
    fn closure_via_pap_extend() {
        // add(a, b) = a + b ; main: c = pap add [10]; papextend c [32]
        let p = CompiledProgram {
            fns: vec![
                CompiledFn {
                    name: "main".into(),
                    arity: 0,
                    n_regs: 3,
                    code: vec![
                        Instr::LpInt { dst: Reg(0), v: 10 },
                        Instr::Pap {
                            dst: Reg(1),
                            func: 1,
                            arity: 2,
                            args: vec![Reg(0)],
                        },
                        Instr::LpInt { dst: Reg(2), v: 32 },
                        Instr::PapExtend {
                            dst: Reg(0),
                            closure: Reg(1),
                            args: vec![Reg(2)],
                        },
                        Instr::Ret { src: Reg(0) },
                    ],
                },
                CompiledFn {
                    name: "add".into(),
                    arity: 2,
                    n_regs: 3,
                    code: vec![
                        Instr::CallBuiltin {
                            dst: Reg(2),
                            builtin: lssa_rt::Builtin::NatAdd,
                            args: vec![Reg(0), Reg(1)],
                        },
                        Instr::Ret { src: Reg(2) },
                    ],
                },
            ],
            ..CompiledProgram::default()
        };
        let out = run_program(&p, "main", 1000).unwrap();
        assert_eq!(out.rendered, "42");
    }

    #[test]
    fn step_budget_enforced() {
        let p = single(vec![Instr::Jump { target: 0 }], 1);
        let e = run_program(&p, "main", 100).unwrap_err();
        assert!(e.message.contains("step budget"));
    }

    #[test]
    fn trap_reports_function() {
        let p = single(vec![Instr::Trap], 1);
        let e = run_program(&p, "main", 100).unwrap_err();
        assert!(e.message.contains("unreachable"), "{e}");
        assert!(e.message.contains("main"), "{e}");
    }

    #[test]
    fn division_by_zero_traps() {
        let p = single(
            vec![
                Instr::ConstInt { dst: Reg(0), v: 1 },
                Instr::ConstInt { dst: Reg(1), v: 0 },
                Instr::Bin {
                    op: BinOp::Div,
                    dst: Reg(0),
                    a: Reg(0),
                    b: Reg(1),
                },
                Instr::Ret { src: Reg(0) },
            ],
            2,
        );
        let e = run_program(&p, "main", 100).unwrap_err();
        assert!(e.message.contains("division"), "{e}");
    }

    #[test]
    fn globals_round_trip() {
        let mut p = single(
            vec![
                Instr::LpInt { dst: Reg(0), v: 5 },
                Instr::GlobalStore {
                    idx: 0,
                    src: Reg(0),
                },
                Instr::GlobalLoad {
                    dst: Reg(1),
                    idx: 0,
                },
                Instr::Ret { src: Reg(1) },
            ],
            2,
        );
        p.globals.push("slot".into());
        assert_eq!(run_program(&p, "main", 100).unwrap().rendered, "5");
    }
}
