//! Well-formedness checking for λpure/λrc programs.
//!
//! Enforces the invariants the rest of the compiler relies on:
//!
//! 1. every variable use is in scope;
//! 2. every binder is globally unique within its function (SSA-like);
//! 3. `jump` targets an enclosing join point with matching argument count;
//! 4. join-point bodies reference only their own parameters (this crate
//!    lambda-lifts join points locally — see [`crate::ast`]);
//! 5. calls name known functions (or `lean_*` runtime builtins) with the
//!    right arity; partial applications under-apply; closure applications
//!    pass at least one argument.

use crate::ast::{Expr, FnDef, Program, Value, VarId};
use lssa_rt::Builtin;
use std::collections::{HashMap, HashSet};
use std::fmt;

/// A well-formedness violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WfError {
    /// The function in which the violation occurred.
    pub func: String,
    /// Description.
    pub message: String,
}

impl fmt::Display for WfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "@{}: {}", self.func, self.message)
    }
}

impl std::error::Error for WfError {}

/// Checks a whole program.
///
/// # Errors
///
/// Returns all violations found.
pub fn check_program(p: &Program) -> Result<(), Vec<WfError>> {
    let mut errors = Vec::new();
    let mut names = HashSet::new();
    for f in &p.fns {
        if !names.insert(f.name.clone()) {
            errors.push(WfError {
                func: f.name.clone(),
                message: "duplicate function name".to_string(),
            });
        }
    }
    for f in &p.fns {
        check_fn(p, f, &mut errors);
    }
    if errors.is_empty() {
        Ok(())
    } else {
        Err(errors)
    }
}

struct Checker<'a> {
    program: &'a Program,
    func: &'a FnDef,
    errors: &'a mut Vec<WfError>,
    bound_once: HashSet<VarId>,
}

fn check_fn(program: &Program, func: &FnDef, errors: &mut Vec<WfError>) {
    let mut c = Checker {
        program,
        func,
        errors,
        bound_once: HashSet::new(),
    };
    let mut scope: HashSet<VarId> = HashSet::new();
    for &p in &func.params {
        if !c.bound_once.insert(p) {
            c.error(format!("parameter x{p} bound twice"));
        }
        scope.insert(p);
    }
    let joins = HashMap::new();
    c.check_expr(&func.body, &scope, &joins);
}

impl Checker<'_> {
    fn error(&mut self, message: String) {
        self.errors.push(WfError {
            func: self.func.name.clone(),
            message,
        });
    }

    fn check_var(&mut self, v: VarId, scope: &HashSet<VarId>) {
        if !scope.contains(&v) {
            self.error(format!("use of x{v} out of scope"));
        }
        if v >= self.func.next_var {
            self.error(format!(
                "x{v} exceeds the function's declared variable bound {}",
                self.func.next_var
            ));
        }
    }

    fn bind(&mut self, v: VarId, scope: &mut HashSet<VarId>) {
        if !self.bound_once.insert(v) {
            self.error(format!("x{v} bound more than once"));
        }
        scope.insert(v);
    }

    fn check_value(&mut self, val: &Value, scope: &HashSet<VarId>) {
        for v in val.operands() {
            self.check_var(v, scope);
        }
        match val {
            Value::Call { func, args } => {
                if let Some(stripped) = func.strip_prefix("lean_") {
                    let _ = stripped;
                    match func.parse::<Builtin>() {
                        Ok(b) => {
                            if b.arity() != args.len() {
                                self.error(format!(
                                    "builtin {func} expects {} args, got {}",
                                    b.arity(),
                                    args.len()
                                ));
                            }
                        }
                        Err(_) => self.error(format!("unknown builtin {func}")),
                    }
                } else {
                    match self.program.arity_of(func) {
                        Some(a) if a == args.len() => {}
                        Some(a) => self.error(format!(
                            "call to @{func} with {} args (arity {a})",
                            args.len()
                        )),
                        None => self.error(format!("call to unknown function @{func}")),
                    }
                }
            }
            Value::Pap { func, args } => match self.program.arity_of(func) {
                Some(a) if args.len() < a => {}
                Some(a) => self.error(format!(
                    "pap of @{func} with {} args must under-apply (arity {a})",
                    args.len()
                )),
                None => self.error(format!("pap of unknown function @{func}")),
            },
            Value::App { args, .. } if args.is_empty() => {
                self.error("closure application with no arguments".to_string());
            }
            Value::LitBig(s) if (s.is_empty() || !s.bytes().all(|b| b.is_ascii_digit())) => {
                self.error(format!("malformed bigint literal {s:?}"));
            }
            _ => {}
        }
    }

    fn check_expr(&mut self, e: &Expr, scope: &HashSet<VarId>, joins: &HashMap<u32, usize>) {
        match e {
            Expr::Let { var, val, body } => {
                self.check_value(val, scope);
                let mut scope = scope.clone();
                self.bind(*var, &mut scope);
                self.check_expr(body, &scope, joins);
            }
            Expr::LetJoin {
                label,
                params,
                jp_body,
                body,
            } => {
                // Join body sees only its parameters.
                let mut jp_scope = HashSet::new();
                for &p in params {
                    self.bind(p, &mut jp_scope);
                }
                // The join point itself is not in scope inside its own body
                // (no recursive joins in λpure).
                self.check_expr(jp_body, &jp_scope, joins);
                let extra = jp_body
                    .free_vars()
                    .into_iter()
                    .find(|v| !params.contains(v));
                if let Some(v) = extra {
                    self.error(format!(
                        "join point j{label} body references x{v}, which is not a parameter"
                    ));
                }
                let mut joins = joins.clone();
                joins.insert(*label, params.len());
                self.check_expr(body, scope, &joins);
            }
            Expr::Case {
                scrutinee,
                alts,
                default,
            } => {
                self.check_var(*scrutinee, scope);
                if alts.is_empty() && default.is_none() {
                    self.error("case with no arms".to_string());
                }
                let mut seen = HashSet::new();
                for alt in alts {
                    if !seen.insert(alt.tag) {
                        self.error(format!("duplicate case tag {}", alt.tag));
                    }
                    self.check_expr(&alt.body, scope, joins);
                }
                if let Some(d) = default {
                    self.check_expr(d, scope, joins);
                }
            }
            Expr::Jump { label, args } => {
                for &a in args {
                    self.check_var(a, scope);
                }
                match joins.get(label) {
                    Some(&arity) if arity == args.len() => {}
                    Some(&arity) => self.error(format!(
                        "jump to j{label} with {} args (expects {arity})",
                        args.len()
                    )),
                    None => self.error(format!("jump to unknown join point j{label}")),
                }
            }
            Expr::Ret(v) => self.check_var(*v, scope),
            Expr::Inc { var, body, .. } | Expr::Dec { var, body } => {
                self.check_var(*var, scope);
                self.check_expr(body, scope, joins);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::build::*;
    use crate::parse::parse_program;

    fn single_fn(body: Expr, params: Vec<VarId>, next_var: VarId) -> Program {
        Program {
            fns: vec![FnDef {
                name: "f".into(),
                params,
                body,
                next_var,
                next_join: 8,
            }],
        }
    }

    #[test]
    fn valid_program_passes() {
        let src = r#"
inductive List := Nil | Cons(head, tail)
def length(xs) :=
  case xs of
  | Nil => 0
  | Cons(h, t) => 1 + length(t)
  end
"#;
        let p = parse_program(src).unwrap();
        check_program(&p).unwrap();
    }

    #[test]
    fn out_of_scope_use_rejected() {
        let p = single_fn(ret(5), vec![0], 10);
        let errs = check_program(&p).unwrap_err();
        assert!(errs[0].message.contains("out of scope"));
    }

    #[test]
    fn double_binding_rejected() {
        let body = let_(1, Value::LitInt(1), let_(1, Value::LitInt(2), ret(1)));
        let p = single_fn(body, vec![0], 10);
        let errs = check_program(&p).unwrap_err();
        assert!(errs
            .iter()
            .any(|e| e.message.contains("bound more than once")));
    }

    #[test]
    fn join_capture_rejected() {
        // join j0() = ret x0 — x0 is not a parameter of the join point.
        let body = Expr::LetJoin {
            label: 0,
            params: vec![],
            jp_body: Box::new(ret(0)),
            body: Box::new(Expr::Jump {
                label: 0,
                args: vec![],
            }),
        };
        let p = single_fn(body, vec![0], 10);
        let errs = check_program(&p).unwrap_err();
        assert!(errs.iter().any(|e| e.message.contains("not a parameter")));
    }

    #[test]
    fn jump_arity_mismatch_rejected() {
        let body = Expr::LetJoin {
            label: 0,
            params: vec![1],
            jp_body: Box::new(ret(1)),
            body: Box::new(Expr::Jump {
                label: 0,
                args: vec![],
            }),
        };
        let p = single_fn(body, vec![0], 10);
        let errs = check_program(&p).unwrap_err();
        assert!(errs.iter().any(|e| e.message.contains("jump to j0")));
    }

    #[test]
    fn unknown_call_rejected() {
        let body = let_(
            1,
            Value::Call {
                func: "ghost".into(),
                args: vec![0],
            },
            ret(1),
        );
        let p = single_fn(body, vec![0], 10);
        let errs = check_program(&p).unwrap_err();
        assert!(errs.iter().any(|e| e.message.contains("unknown function")));
    }

    #[test]
    fn builtin_arity_checked() {
        let body = let_(
            1,
            Value::Call {
                func: "lean_nat_add".into(),
                args: vec![0],
            },
            ret(1),
        );
        let p = single_fn(body, vec![0], 10);
        let errs = check_program(&p).unwrap_err();
        assert!(errs.iter().any(|e| e.message.contains("expects 2 args")));
    }

    #[test]
    fn unknown_builtin_rejected() {
        let body = let_(
            1,
            Value::Call {
                func: "lean_frobnicate".into(),
                args: vec![0],
            },
            ret(1),
        );
        let p = single_fn(body, vec![0], 10);
        let errs = check_program(&p).unwrap_err();
        assert!(errs.iter().any(|e| e.message.contains("unknown builtin")));
    }

    #[test]
    fn duplicate_case_tags_rejected() {
        let body = case(0, vec![(0, ret(0)), (0, ret(0))], None);
        let p = single_fn(body, vec![0], 10);
        let errs = check_program(&p).unwrap_err();
        assert!(errs
            .iter()
            .any(|e| e.message.contains("duplicate case tag")));
    }

    #[test]
    fn pap_must_under_apply() {
        let mut p = single_fn(
            let_(
                1,
                Value::Pap {
                    func: "f".into(),
                    args: vec![0],
                },
                ret(1),
            ),
            vec![0],
            10,
        );
        // f has arity 1; pap with 1 arg is not under-applying.
        let errs = check_program(&p).unwrap_err();
        assert!(
            errs.iter().any(|e| e.message.contains("under-apply")),
            "{errs:?}"
        );
        // With arity 2 it is fine.
        p.fns[0].params = vec![0, 9];
        p.fns[0].body = let_(
            1,
            Value::Pap {
                func: "f".into(),
                args: vec![0],
            },
            ret(1),
        );
        check_program(&p).unwrap();
    }
}
