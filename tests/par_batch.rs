//! The batching layer's headline guarantee, end-to-end: a compile-and-run
//! batch produces **byte-identical** output whether it runs on one thread
//! or many — the same property the `correctness` binary's `--jobs` flag
//! relies on (and its CLI tests check from the outside).

use lambda_ssa::driver::conformance::full_corpus;
use lambda_ssa::driver::diff::run_differential;
use lambda_ssa::driver::par::BatchRunner;
use lambda_ssa::driver::pipelines::{compile_batch, CompilerConfig};

#[test]
fn differential_batch_is_deterministic_across_job_counts() {
    let mut corpus = full_corpus(0, 0x5e5a_2022); // handwritten cases only
    corpus.truncate(24);
    let render = |jobs: usize| -> String {
        let report = BatchRunner::new().with_jobs(jobs).run(&corpus, |case| {
            run_differential(&case.name, &case.src, 200_000_000)
        });
        assert_eq!(report.len(), corpus.len());
        report
            .results
            .iter()
            .enumerate()
            .map(|(i, j)| {
                format!(
                    "{i} {} {:?} {:?}\n",
                    j.result.name, j.result.rendered, j.result.failure
                )
            })
            .collect()
    };
    let serial = render(1);
    for jobs in [2, 5, 16] {
        assert_eq!(serial, render(jobs), "jobs={jobs} must match jobs=1");
    }
}

#[test]
fn compile_batch_outcomes_are_deterministic_across_job_counts() {
    let corpus = full_corpus(0, 0x5e5a_2022);
    let sources: Vec<&str> = corpus.iter().take(16).map(|c| c.src.as_str()).collect();
    let render = |jobs: usize| -> String {
        let (results, report) = compile_batch(&sources, CompilerConfig::mlir(), jobs);
        let phases: Vec<&str> = report.phases.iter().map(|p| p.pipeline.as_str()).collect();
        results
            .iter()
            .map(|r| match r {
                Ok(p) => format!("ok {} funcs\n", p.fns.len()),
                Err(e) => format!("err {e}\n"),
            })
            .chain(std::iter::once(format!("phases: {phases:?}\n")))
            .collect()
    };
    let serial = render(1);
    for jobs in [3, 8] {
        assert_eq!(serial, render(jobs), "jobs={jobs} must match jobs=1");
    }
}
