//! Reference-count insertion: λpure → λrc.
//!
//! LEAN lowers its pure IR to λrc by inserting explicit `inc`/`dec`
//! instructions (§II-B). This module implements a simplified, provably
//! balanced version of that insertion under an *owned* calling convention:
//!
//! - every parameter and every `let`-bound value is **owned** by the current
//!   scope, and every control-flow path must consume each owned reference
//!   exactly once — either by transferring it (constructor field, call
//!   argument, jump argument, return) or by an explicit `dec`;
//! - `proj` *borrows* its operand and yields a borrowed field, which is
//!   immediately retained with `inc` (naive but sound — LEAN's borrow
//!   inference elides many of these; see DESIGN.md);
//! - `case` borrows its scrutinee (only the tag is read);
//! - values that die are released eagerly (`dec` at the earliest point the
//!   variable is no longer needed), matching LEAN's memory behaviour;
//! - join points own exactly their parameters (the AST's lambda-lifted
//!   join-point discipline makes this compositional).
//!
//! The balance property is validated dynamically by the reference
//! interpreter: after running a λrc program, the heap must be empty.

use crate::ast::{Alt, Expr, FnDef, Program, Value, VarId};
use std::collections::{BTreeMap, BTreeSet};

/// Inserts reference counting into every function of a λpure program.
///
/// # Panics
///
/// Panics if the program already contains `inc`/`dec` instructions.
pub fn insert_rc(program: &Program) -> Program {
    let fns = program
        .fns
        .iter()
        .map(|f| {
            assert!(
                !f.body.has_rc_ops(),
                "insert_rc on a function that already has RC ops: @{}",
                f.name
            );
            let mut owned: BTreeSet<VarId> = f.params.iter().copied().collect();
            let body = transform(&f.body, &mut owned);
            FnDef {
                name: f.name.clone(),
                params: f.params.clone(),
                body,
                next_var: f.next_var,
                next_join: f.next_join,
            }
        })
        .collect();
    Program { fns }
}

/// Wraps `e` in `dec` instructions for each variable in `vars`.
fn decs(vars: impl IntoIterator<Item = VarId>, e: Expr) -> Expr {
    let mut out = e;
    for v in vars {
        out = Expr::Dec {
            var: v,
            body: Box::new(out),
        };
    }
    out
}

/// Wraps `e` in an `inc var *n` when `n > 0`.
fn incs(var: VarId, n: u32, e: Expr) -> Expr {
    if n == 0 {
        e
    } else {
        Expr::Inc {
            var,
            n,
            body: Box::new(e),
        }
    }
}

/// Operands a value takes *ownership* of (with multiplicity). `Proj` and
/// `Var` borrow; everything else consumes.
fn owned_operands(v: &Value) -> Vec<VarId> {
    match v {
        Value::Var(_) | Value::Proj { .. } => vec![],
        Value::LitInt(_) | Value::LitBig(_) | Value::LitStr(_) => vec![],
        Value::Ctor { args, .. } | Value::Call { args, .. } | Value::Pap { args, .. } => {
            args.clone()
        }
        Value::App { closure, args } => {
            let mut out = vec![*closure];
            out.extend(args);
            out
        }
    }
}

fn multiset(vars: impl IntoIterator<Item = VarId>) -> BTreeMap<VarId, u32> {
    let mut m = BTreeMap::new();
    for v in vars {
        *m.entry(v).or_insert(0) += 1;
    }
    m
}

/// Transforms `e` so that every path consumes exactly the references in
/// `owned`. On return, `owned` is left in an unspecified state (callers pass
/// clones across branches).
fn transform(e: &Expr, owned: &mut BTreeSet<VarId>) -> Expr {
    match e {
        Expr::Ret(x) => {
            let mut rest: Vec<VarId> = owned.iter().copied().filter(|v| v != x).collect();
            rest.reverse();
            if owned.contains(x) {
                decs(rest, Expr::Ret(*x))
            } else {
                // Borrowed return value: retain it first.
                decs(rest, incs(*x, 1, Expr::Ret(*x)))
            }
        }
        Expr::Jump { label, args } => {
            let counts = multiset(args.iter().copied());
            let mut out = Expr::Jump {
                label: *label,
                args: args.clone(),
            };
            let mut consumed: BTreeSet<VarId> = BTreeSet::new();
            for (&a, &m) in &counts {
                if owned.contains(&a) {
                    out = incs(a, m - 1, out);
                    consumed.insert(a);
                } else {
                    out = incs(a, m, out);
                }
            }
            let rest: Vec<VarId> = owned
                .iter()
                .copied()
                .filter(|v| !consumed.contains(v))
                .collect();
            decs(rest, out)
        }
        Expr::Case {
            scrutinee,
            alts,
            default,
        } => {
            // The case borrows the scrutinee; each arm independently
            // consumes the full owned set.
            let alts = alts
                .iter()
                .map(|alt| {
                    let mut arm_owned = owned.clone();
                    let body = shed_then_transform(&alt.body, &mut arm_owned);
                    Alt { tag: alt.tag, body }
                })
                .collect();
            let default = default.as_ref().map(|d| {
                let mut arm_owned = owned.clone();
                Box::new(shed_then_transform(d, &mut arm_owned))
            });
            Expr::Case {
                scrutinee: *scrutinee,
                alts,
                default,
            }
        }
        Expr::LetJoin {
            label,
            params,
            jp_body,
            body,
        } => {
            let mut jp_owned: BTreeSet<VarId> = params.iter().copied().collect();
            let jp_body = shed_then_transform(jp_body, &mut jp_owned);
            let body = transform(body, owned);
            Expr::LetJoin {
                label: *label,
                params: params.clone(),
                jp_body: Box::new(jp_body),
                body: Box::new(body),
            }
        }
        Expr::Let { var, val, body } => {
            let x = *var;
            let fv_body = body.free_vars();
            // 1. Ownership accounting for the value's consumed operands.
            let counts = multiset(owned_operands(val));
            let mut pre_incs: Vec<(VarId, u32)> = Vec::new();
            for (&a, &m) in &counts {
                if owned.contains(&a) {
                    if fv_body.contains(&a) {
                        // Still needed later: keep ownership, add m refs.
                        pre_incs.push((a, m));
                    } else {
                        // Last use: transfer one ref, add the rest.
                        pre_incs.push((a, m - 1));
                        owned.remove(&a);
                    }
                } else {
                    pre_incs.push((a, m));
                }
            }
            // `let x = y` aliases: one more reference to y's object.
            if let Value::Var(y) = val {
                if owned.contains(y) && !fv_body.contains(y) {
                    owned.remove(y); // transfer
                } else {
                    pre_incs.push((*y, 1));
                }
            }
            // 2. Projection results are borrowed: retain them.
            let is_proj = matches!(val, Value::Proj { .. });
            // 3. The binding itself becomes owned.
            owned.insert(x);
            // 4. Eagerly release anything that is now dead: owned vars that
            //    do not appear free in the body (including x if unused).
            let dead: Vec<VarId> = owned
                .iter()
                .copied()
                .filter(|v| !fv_body.contains(v) && *v != x)
                .collect();
            let x_dead = !fv_body.contains(&x);
            for d in &dead {
                owned.remove(d);
            }
            if x_dead {
                owned.remove(&x);
            }
            let tail = transform(body, owned);
            // Assemble from the inside out:
            //   incs; let x = v; [inc x]; [dec dead…]; [dec x]; tail
            let mut after = tail;
            if x_dead && !is_proj {
                after = Expr::Dec {
                    var: x,
                    body: Box::new(after),
                };
            }
            // A projection that is immediately dead is simply a borrow that
            // was never retained: no inc, no dec.
            after = decs(dead, after);
            if is_proj && !x_dead {
                after = incs(x, 1, after);
            }
            let mut out = Expr::Let {
                var: x,
                val: val.clone(),
                body: Box::new(after),
            };
            for (a, m) in pre_incs.into_iter().rev() {
                out = incs(a, m, out);
            }
            out
        }
        Expr::Inc { .. } | Expr::Dec { .. } => {
            unreachable!("insert_rc input must be λpure")
        }
    }
}

/// Eagerly releases owned variables not free in `e`, then transforms.
fn shed_then_transform(e: &Expr, owned: &mut BTreeSet<VarId>) -> Expr {
    let fv = e.free_vars();
    let dead: Vec<VarId> = owned.iter().copied().filter(|v| !fv.contains(v)).collect();
    for d in &dead {
        owned.remove(d);
    }
    decs(dead, transform(e, owned))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::build::*;
    use crate::parse::parse_program;
    use crate::wellformed::check_program;

    #[test]
    fn unused_param_is_dropped() {
        // def k(x0, x1) := ret x0  — x1 must be dec'd.
        let p = Program {
            fns: vec![FnDef {
                name: "k".into(),
                params: vec![0, 1],
                body: ret(0),
                next_var: 2,
                next_join: 0,
            }],
        };
        let rc = insert_rc(&p);
        let text = rc.fns[0].body.to_string();
        assert!(text.contains("dec x1"), "{text}");
        assert!(!text.contains("dec x0"), "{text}");
    }

    #[test]
    fn duplicate_use_gets_inc() {
        // let x1 = ctor_0(x0, x0); ret x1 — x0 used twice as owned: one inc.
        let p = Program {
            fns: vec![FnDef {
                name: "dup".into(),
                params: vec![0],
                body: let_(
                    1,
                    Value::Ctor {
                        tag: 0,
                        args: vec![0, 0],
                    },
                    ret(1),
                ),
                next_var: 2,
                next_join: 0,
            }],
        };
        let rc = insert_rc(&p);
        let text = rc.fns[0].body.to_string();
        assert!(text.contains("inc x0"), "{text}");
    }

    #[test]
    fn use_then_live_keeps_ownership() {
        // let x1 = ctor(x0); let x2 = ctor(x0); ret x2 —
        // first use incs (x0 live after), second transfers.
        let p = Program {
            fns: vec![FnDef {
                name: "f".into(),
                params: vec![0],
                body: let_(
                    1,
                    Value::Ctor {
                        tag: 0,
                        args: vec![0],
                    },
                    let_(
                        2,
                        Value::Ctor {
                            tag: 1,
                            args: vec![0],
                        },
                        // x1 is dead here; it must be dec'd.
                        ret(2),
                    ),
                ),
                next_var: 3,
                next_join: 0,
            }],
        };
        let rc = insert_rc(&p);
        let text = rc.fns[0].body.to_string();
        // Exactly one inc of x0 (before the first ctor).
        assert_eq!(text.matches("inc x0").count(), 1, "{text}");
        // x1 unused: dec'd.
        assert!(text.contains("dec x1"), "{text}");
    }

    #[test]
    fn proj_results_are_retained_before_scrutinee_release() {
        let src = r#"
inductive List := Nil | Cons(head, tail)
def head_or_zero(xs) :=
  case xs of
  | Nil => 0
  | Cons(h, t) => h
  end
"#;
        let p = parse_program(src).unwrap();
        check_program(&p).unwrap();
        let rc = insert_rc(&p);
        let f = rc.fn_by_name("head_or_zero").unwrap();
        let text = f.body.to_string();
        // In the Cons arm: h is projected then inc'd; the scrutinee dec'd.
        assert!(text.contains("inc x"), "{text}");
        assert!(text.contains("dec x0"), "{text}");
        // The inc of the projected head must appear before the dec of the
        // scrutinee (which is the last dec of x0 in the Cons arm).
        let inc_pos = text.find("inc x").expect(&text);
        let dec_pos = text.rfind("dec x0").expect(&text);
        assert!(inc_pos < dec_pos, "{text}");
    }

    #[test]
    fn case_arms_balance_independently() {
        let src = r#"
inductive Option := None | Some(v)
def f(o, extra) :=
  case o of
  | None => extra
  | Some(v) => v + extra
  end
"#;
        let p = parse_program(src).unwrap();
        let rc = insert_rc(&p);
        let text = rc.fn_by_name("f").unwrap().body.to_string();
        // The None arm must release the scrutinee o (x0).
        assert!(text.contains("dec x0"), "{text}");
    }

    #[test]
    fn rc_program_is_still_wellformed() {
        let src = r#"
inductive List := Nil | Cons(head, tail)
def append(xs, ys) :=
  case xs of
  | Nil => ys
  | Cons(h, t) => Cons(h, append(t, ys))
  end
def main() := append(Cons(1, Nil), Cons(2, Nil))
"#;
        let p = parse_program(src).unwrap();
        check_program(&p).unwrap();
        let rc = insert_rc(&p);
        check_program(&rc).unwrap();
        // append's Cons arm duplicates nothing, but the Nil arm must release
        // the scrutinee; some function carries RC ops.
        assert!(rc.fns.iter().any(|f| f.body.has_rc_ops()));
    }

    #[test]
    #[should_panic(expected = "already has RC ops")]
    fn double_insertion_panics() {
        let p = Program {
            fns: vec![FnDef {
                name: "f".into(),
                params: vec![0],
                body: Expr::Inc {
                    var: 0,
                    n: 1,
                    body: Box::new(ret(0)),
                },
                next_var: 1,
                next_join: 0,
            }],
        };
        insert_rc(&p);
    }
}
