//! The λpure simplifier — LEAN's hand-written optimizer (the baseline the
//! paper's Figure 10 compares the `rgn` optimizations against).
//!
//! Implements the classical functional simplifications:
//!
//! - copy propagation (`let x = y`),
//! - dead-let elimination,
//! - constant folding of arithmetic and decidable comparisons,
//! - case-of-known-constructor,
//! - projection-of-known-constructor,
//! - `simpcase`: common-branch fusion (all arms equal) and arm-vs-default
//!   deduplication — the functional counterparts of the paper's Figure 1B/1C,
//! - dead and single-use join-point elimination/inlining.
//!
//! Runs on λpure (before reference-count insertion), like LEAN's pipeline.

use crate::ast::{Alt, Expr, FnDef, JoinId, Program, Value, VarId};
use lssa_rt::Nat;
use std::collections::HashMap;

/// Which simplifications to run (Figure 10's ablation needs to disable
/// `simpcase` specifically).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimplifyOptions {
    /// Copy propagation, dead lets, join-point cleanup.
    pub basic: bool,
    /// Constant folding of builtins.
    pub const_fold: bool,
    /// Case-of-known-constructor.
    pub case_of_known: bool,
    /// `simpcase`: common-branch fusion (the rgn-style switch
    /// simplification the paper disables in variant (b) of Figure 10).
    pub simpcase: bool,
}

impl Default for SimplifyOptions {
    fn default() -> SimplifyOptions {
        SimplifyOptions::all()
    }
}

impl SimplifyOptions {
    /// Everything on — LEAN's default pipeline.
    pub fn all() -> SimplifyOptions {
        SimplifyOptions {
            basic: true,
            const_fold: true,
            case_of_known: true,
            simpcase: true,
        }
    }

    /// Everything except `simpcase` (Figure 10 variant (b) input).
    pub fn without_simpcase() -> SimplifyOptions {
        SimplifyOptions {
            simpcase: false,
            ..SimplifyOptions::all()
        }
    }
}

/// Simplifies a λpure program to a fixpoint (bounded).
///
/// # Panics
///
/// Panics if the program contains RC instructions (run before
/// [`crate::rc::insert_rc`]).
pub fn simplify_program(p: &Program, opts: SimplifyOptions) -> Program {
    let mut cur = p.clone();
    for _ in 0..10 {
        let next = Program {
            fns: cur.fns.iter().map(|f| simplify_fn(f, opts)).collect(),
        };
        if next == cur {
            break;
        }
        cur = next;
    }
    cur
}

fn simplify_fn(f: &FnDef, opts: SimplifyOptions) -> FnDef {
    assert!(!f.body.has_rc_ops(), "simplifier runs on λpure");
    let mut ctx = Ctx {
        opts,
        env: HashMap::new(),
        subst: HashMap::new(),
    };
    let body = ctx.expr(&f.body);
    FnDef {
        name: f.name.clone(),
        params: f.params.clone(),
        body,
        next_var: f.next_var,
        next_join: f.next_join,
    }
}

struct Ctx {
    opts: SimplifyOptions,
    /// Known bindings (constructors and literals only).
    env: HashMap<VarId, Value>,
    /// Copy-propagation substitution.
    subst: HashMap<VarId, VarId>,
}

impl Ctx {
    fn resolve(&self, v: VarId) -> VarId {
        let mut cur = v;
        let mut hops = 0;
        while let Some(&next) = self.subst.get(&cur) {
            cur = next;
            hops += 1;
            debug_assert!(hops < 10_000, "substitution cycle");
        }
        cur
    }

    fn resolve_value(&self, val: &Value) -> Value {
        let r = |v: &VarId| self.resolve(*v);
        match val {
            Value::Var(v) => Value::Var(r(v)),
            Value::LitInt(_) | Value::LitBig(_) | Value::LitStr(_) => val.clone(),
            Value::Ctor { tag, args } => Value::Ctor {
                tag: *tag,
                args: args.iter().map(r).collect(),
            },
            Value::Proj { var, idx } => Value::Proj {
                var: r(var),
                idx: *idx,
            },
            Value::Call { func, args } => Value::Call {
                func: func.clone(),
                args: args.iter().map(r).collect(),
            },
            Value::Pap { func, args } => Value::Pap {
                func: func.clone(),
                args: args.iter().map(r).collect(),
            },
            Value::App { closure, args } => Value::App {
                closure: r(closure),
                args: args.iter().map(r).collect(),
            },
        }
    }

    /// The known tag of a variable, if statically determined.
    fn known_tag(&self, v: VarId) -> Option<u32> {
        match self.env.get(&self.resolve(v))? {
            Value::Ctor { tag, .. } => Some(*tag),
            Value::LitInt(n) if *n >= 0 && *n <= u32::MAX as i64 => Some(*n as u32),
            _ => None,
        }
    }

    fn nat_of(&self, v: VarId) -> Option<Nat> {
        match self.env.get(&self.resolve(v))? {
            Value::LitInt(n) if *n >= 0 => Some(Nat::from_u64(*n as u64)),
            Value::LitBig(s) => Nat::from_str_decimal(s).ok(),
            _ => None,
        }
    }

    fn fold_call(&self, func: &str, args: &[VarId]) -> Option<Value> {
        if !self.opts.const_fold {
            return None;
        }
        let nat_result = |n: Nat| -> Value {
            match n.to_u64() {
                Some(v) if v < (1 << 62) => Value::LitInt(v as i64),
                _ => Value::LitBig(n.to_string()),
            }
        };
        let bool_result = |b: bool| Value::Ctor {
            tag: b as u32,
            args: vec![],
        };
        let [a, b] = args else { return None };
        let (x, y) = (self.nat_of(*a)?, self.nat_of(*b)?);
        Some(match func {
            "lean_nat_add" => nat_result(x.add(&y)),
            "lean_nat_sub" => nat_result(x.sat_sub(&y)),
            "lean_nat_mul" => nat_result(x.mul(&y)),
            "lean_nat_div" => nat_result(x.div(&y)),
            "lean_nat_mod" => nat_result(x.rem(&y)),
            "lean_nat_dec_eq" => bool_result(x == y),
            "lean_nat_dec_lt" => bool_result(x < y),
            "lean_nat_dec_le" => bool_result(x <= y),
            _ => return None,
        })
    }

    fn expr(&mut self, e: &Expr) -> Expr {
        match e {
            Expr::Let { var, val, body } => {
                let mut val = self.resolve_value(val);
                // Copy propagation.
                if let Value::Var(y) = val {
                    self.subst.insert(*var, y);
                    return self.expr(body);
                }
                // Projection of a known constructor.
                if self.opts.case_of_known {
                    if let Value::Proj { var: s, idx } = val {
                        if let Some(Value::Ctor { args, .. }) = self.env.get(&s) {
                            if let Some(&field) = args.get(idx as usize) {
                                self.subst.insert(*var, field);
                                return self.expr(body);
                            }
                        }
                    }
                }
                // Constant folding.
                if let Value::Call { func, args } = &val {
                    if let Some(folded) = self.fold_call(func, args) {
                        val = folded;
                    }
                }
                // Record knowledge.
                match &val {
                    Value::Ctor { .. } | Value::LitInt(_) | Value::LitBig(_) => {
                        self.env.insert(*var, val.clone());
                    }
                    _ => {}
                }
                let body = self.expr(body);
                // Dead-let elimination.
                if self.opts.basic && val.is_droppable() && !body.free_vars().contains(var) {
                    return body;
                }
                Expr::Let {
                    var: *var,
                    val,
                    body: Box::new(body),
                }
            }
            Expr::LetJoin {
                label,
                params,
                jp_body,
                body,
            } => {
                let body = self.expr(body);
                let jumps = count_jumps(&body, *label);
                if self.opts.basic && jumps == 0 {
                    return body; // dead join point
                }
                let jp_body = self.expr(jp_body);
                if self.opts.basic && jumps == 1 && count_jumps(&jp_body, *label) == 0 {
                    // Inline the single jump site.
                    return inline_jump(&body, *label, params, &jp_body);
                }
                Expr::LetJoin {
                    label: *label,
                    params: params.clone(),
                    jp_body: Box::new(jp_body),
                    body: Box::new(body),
                }
            }
            Expr::Case {
                scrutinee,
                alts,
                default,
            } => {
                let s = self.resolve(*scrutinee);
                // Case-of-known-constructor.
                if self.opts.case_of_known {
                    if let Some(tag) = self.known_tag(s) {
                        let arm = alts
                            .iter()
                            .find(|a| a.tag == tag)
                            .map(|a| &a.body)
                            .or(default.as_deref());
                        if let Some(arm) = arm {
                            return self.expr(arm);
                        }
                    }
                }
                let alts: Vec<Alt> = alts
                    .iter()
                    .map(|a| {
                        let mut inner = Ctx {
                            opts: self.opts,
                            env: self.env.clone(),
                            subst: self.subst.clone(),
                        };
                        Alt {
                            tag: a.tag,
                            body: inner.expr(&a.body),
                        }
                    })
                    .collect();
                let default = default.as_ref().map(|d| {
                    let mut inner = Ctx {
                        opts: self.opts,
                        env: self.env.clone(),
                        subst: self.subst.clone(),
                    };
                    Box::new(inner.expr(d))
                });
                // simpcase: all branches identical → keep just one.
                if self.opts.simpcase {
                    let mut bodies: Vec<&Expr> = alts.iter().map(|a| &a.body).collect();
                    if let Some(d) = &default {
                        bodies.push(d);
                    }
                    if let Some(first) = bodies.first() {
                        if bodies.iter().all(|b| b.alpha_eq(first)) {
                            return (*first).clone();
                        }
                    }
                    // Arms identical to the default are redundant.
                    if let Some(d) = &default {
                        let alts: Vec<Alt> =
                            alts.into_iter().filter(|a| !a.body.alpha_eq(d)).collect();
                        return Expr::Case {
                            scrutinee: s,
                            alts,
                            default: Some(d.clone()),
                        };
                    }
                }
                Expr::Case {
                    scrutinee: s,
                    alts,
                    default,
                }
            }
            Expr::Jump { label, args } => Expr::Jump {
                label: *label,
                args: args.iter().map(|&a| self.resolve(a)).collect(),
            },
            Expr::Ret(v) => Expr::Ret(self.resolve(*v)),
            Expr::Inc { .. } | Expr::Dec { .. } => {
                unreachable!("simplifier runs on λpure")
            }
        }
    }
}

fn count_jumps(e: &Expr, label: JoinId) -> usize {
    match e {
        Expr::Jump { label: l, .. } => usize::from(*l == label),
        Expr::Let { body, .. } | Expr::Inc { body, .. } | Expr::Dec { body, .. } => {
            count_jumps(body, label)
        }
        Expr::LetJoin { jp_body, body, .. } => {
            count_jumps(jp_body, label) + count_jumps(body, label)
        }
        Expr::Case { alts, default, .. } => {
            alts.iter()
                .map(|a| count_jumps(&a.body, label))
                .sum::<usize>()
                + default.as_ref().map(|d| count_jumps(d, label)).unwrap_or(0)
        }
        Expr::Ret(_) => 0,
    }
}

/// Replaces the unique `jump label(args…)` in `e` by `jp_body` with
/// `params := args` bindings (as copy substitutions via `let`).
fn inline_jump(e: &Expr, label: JoinId, params: &[VarId], jp_body: &Expr) -> Expr {
    match e {
        Expr::Jump { label: l, args } if *l == label => {
            let mut out = jp_body.clone();
            for (&p, &a) in params.iter().zip(args).rev() {
                out = Expr::Let {
                    var: p,
                    val: Value::Var(a),
                    body: Box::new(out),
                };
            }
            out
        }
        Expr::Jump { .. } | Expr::Ret(_) => e.clone(),
        Expr::Let { var, val, body } => Expr::Let {
            var: *var,
            val: val.clone(),
            body: Box::new(inline_jump(body, label, params, jp_body)),
        },
        Expr::LetJoin {
            label: l,
            params: ps,
            jp_body: jb,
            body,
        } => Expr::LetJoin {
            label: *l,
            params: ps.clone(),
            jp_body: Box::new(inline_jump(jb, label, params, jp_body)),
            body: Box::new(inline_jump(body, label, params, jp_body)),
        },
        Expr::Case {
            scrutinee,
            alts,
            default,
        } => Expr::Case {
            scrutinee: *scrutinee,
            alts: alts
                .iter()
                .map(|a| Alt {
                    tag: a.tag,
                    body: inline_jump(&a.body, label, params, jp_body),
                })
                .collect(),
            default: default
                .as_ref()
                .map(|d| Box::new(inline_jump(d, label, params, jp_body))),
        },
        Expr::Inc { var, n, body } => Expr::Inc {
            var: *var,
            n: *n,
            body: Box::new(inline_jump(body, label, params, jp_body)),
        },
        Expr::Dec { var, body } => Expr::Dec {
            var: *var,
            body: Box::new(inline_jump(body, label, params, jp_body)),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::run_program;
    use crate::parse::parse_program;
    use crate::wellformed::check_program;

    const FUEL: u64 = 10_000_000;

    /// Checks that simplification preserves behaviour and returns
    /// (before-size, after-size).
    fn check_preserves(src: &str) -> (usize, usize) {
        let p = parse_program(src).unwrap();
        check_program(&p).unwrap();
        let s = simplify_program(&p, SimplifyOptions::all());
        check_program(&s).unwrap();
        let before = run_program(&p, "main", false, FUEL).unwrap().rendered;
        let after = run_program(&s, "main", false, FUEL).unwrap().rendered;
        assert_eq!(before, after, "simplification changed behaviour");
        (
            p.fns.iter().map(|f| f.body.size()).sum(),
            s.fns.iter().map(|f| f.body.size()).sum(),
        )
    }

    #[test]
    fn constant_folding_shrinks() {
        let (before, after) = check_preserves("def main() := 2 + 3 * 4");
        assert!(after < before);
    }

    #[test]
    fn folds_to_single_literal() {
        let p = parse_program("def main() := (1 + 2) * (3 + 4)").unwrap();
        let s = simplify_program(&p, SimplifyOptions::all());
        let body = &s.fns[0].body;
        assert_eq!(body.size(), 2, "{body}");
        assert!(body.to_string().contains("21"), "{body}");
    }

    #[test]
    fn case_of_known_constructor_folds() {
        let src = r#"
inductive Option := None | Some(v)
def main() :=
  let o := Some(42);
  case o of
  | None => 0
  | Some(v) => v + 1
  end
"#;
        let p = parse_program(src).unwrap();
        let s = simplify_program(&p, SimplifyOptions::all());
        let body = &s.fns[0].body;
        let text = body.to_string();
        assert!(!text.contains("case"), "{text}");
        assert!(text.contains("43"), "{text}");
        check_preserves(src);
    }

    #[test]
    fn dead_expression_elimination_fig1a() {
        // An unused pure binding disappears (Figure 1A at the λ level).
        let src = r#"
def main() :=
  let dead := 10 * 10;
  7
"#;
        let p = parse_program(src).unwrap();
        let s = simplify_program(&p, SimplifyOptions::all());
        assert_eq!(s.fns[0].body.size(), 2, "{}", s.fns[0].body);
    }

    #[test]
    fn common_branch_elimination_fig1c() {
        // case x of | A => 7 | B => 7 — both arms equal → fused.
        let src = r#"
inductive AB := A | B
def f(x) :=
  case x of
  | A => 7
  | B => 7
  end
def main() := f(A) + f(B)
"#;
        let p = parse_program(src).unwrap();
        let s = simplify_program(&p, SimplifyOptions::all());
        let f = s.fn_by_name("f").unwrap();
        assert!(!f.body.to_string().contains("case"), "{}", f.body);
        check_preserves(src);
    }

    #[test]
    fn simpcase_can_be_disabled() {
        let src = r#"
inductive AB := A | B
def f(x) :=
  case x of
  | A => 7
  | B => 7
  end
def main() := f(A)
"#;
        let p = parse_program(src).unwrap();
        let s = simplify_program(&p, SimplifyOptions::without_simpcase());
        // With simpcase off the case survives in f (main still folds the
        // call? no inlining across functions, so f keeps its case).
        let f = s.fn_by_name("f").unwrap();
        assert!(f.body.to_string().contains("case"), "{}", f.body);
    }

    #[test]
    fn dead_join_point_removed() {
        let src = r#"
def f(b, y) :=
  let x := case b of | true => 1 | false => 2 end;
  x + y
def main() := f(true, 1)
"#;
        let p = parse_program(src).unwrap();
        // The case-in-value-position creates a join point; in f nothing
        // folds, so it stays; but in a version where the condition is
        // known, folding kills the join.
        let s = simplify_program(&p, SimplifyOptions::all());
        check_program(&s).unwrap();
        check_preserves(src);
    }

    #[test]
    fn single_use_join_inlined() {
        // After case-of-known, only one jump remains → inline the jp.
        let src = r#"
def main() :=
  let x := case true of | true => 1 | false => 2 end;
  x + 10
"#;
        let p = parse_program(src).unwrap();
        let s = simplify_program(&p, SimplifyOptions::all());
        let text = s.fns[0].body.to_string();
        assert!(!text.contains("join"), "{text}");
        assert!(!text.contains("jump"), "{text}");
        assert!(text.contains("11"), "{text}");
    }

    #[test]
    fn copy_propagation_chains() {
        let src = r#"
def main() :=
  let a := 5;
  let b := a;
  let c := b;
  c + c
"#;
        let p = parse_program(src).unwrap();
        let s = simplify_program(&p, SimplifyOptions::all());
        assert!(
            s.fns[0].body.to_string().contains("10"),
            "{}",
            s.fns[0].body
        );
    }

    #[test]
    fn preserves_recursive_functions() {
        let src = r#"
inductive List := Nil | Cons(h, t)
def filter_pos(xs) :=
  case xs of
  | Nil => Nil
  | Cons(h, t) => if h > 0 then Cons(h, filter_pos(t)) else filter_pos(t)
  end
def main() := filter_pos(Cons(0, Cons(3, Cons(0, Cons(7, Nil)))))
"#;
        check_preserves(src);
    }

    #[test]
    fn effectful_lets_not_dropped() {
        // A call result that is unused must still run (calls may diverge).
        let src = r#"
def id(x) := x
def main() :=
  let unused := id(5);
  3
"#;
        let p = parse_program(src).unwrap();
        let s = simplify_program(&p, SimplifyOptions::all());
        assert!(s.fns.last().unwrap().body.to_string().contains("call @id"));
    }

    #[test]
    fn bigint_folding() {
        let src = "def main() := 99999999999999999999 + 1";
        let p = parse_program(src).unwrap();
        let s = simplify_program(&p, SimplifyOptions::all());
        assert!(
            s.fns[0]
                .body
                .to_string()
                .contains("big(100000000000000000000)"),
            "{}",
            s.fns[0].body
        );
    }
}
