//! Source-level lints over the `.lssa` S-expression forest.
//!
//! These are the hygiene checks `lssa lint` runs *in addition to* the
//! `check` wellformedness pass: the program is accepted and runs, but
//! something about it is suspicious. Each finding carries a stable `E02xx`
//! code (see [`crate::diag`]) and a precise source span:
//!
//! - `E0203` — a join point is declared but never jumped to (dead block),
//! - `E0204` — a function parameter is never referenced,
//! - `E0205` — a `case` arm whose tag can never match because the
//!   scrutinee was bound to a constructor with a different tag in the
//!   enclosing `let` chain,
//! - `E0206` — a `join` declaration shadows an enclosing, still-jumpable
//!   join point with the same label.
//!
//! The linter assumes a *clean* parse: [`lint_source`] returns nothing when
//! the reader reported any diagnostic (the errors are the story then), and
//! the tree walk skips malformed forms rather than re-reporting them —
//! `check` owns rejection, `lint` owns hygiene.

use crate::diag::{
    Diagnostic, E_LINT_DEAD_JOIN, E_LINT_SHADOWED_BINDING, E_LINT_UNREACHABLE_ARM,
    E_LINT_UNUSED_PARAM,
};
use crate::sexp::{read, Sexp, SexpKind};
use std::collections::{HashMap, HashSet};

/// Lints `src`, returning all findings (warnings). Returns an empty list if
/// the source does not even read as an S-expression forest — run
/// [`crate::check_source`] first; lints are meaningless on broken syntax.
pub fn lint_source(src: &str) -> Vec<Diagnostic> {
    let (forest, diags) = read(src);
    if !diags.is_empty() {
        return Vec::new();
    }
    lint_forest(&forest)
}

/// Lints an already-read forest (see [`lint_source`]).
pub fn lint_forest(forest: &[Sexp]) -> Vec<Diagnostic> {
    let mut linter = Linter::default();
    for top in forest {
        linter.lint_def(top);
    }
    linter.out
}

/// One declared join point, tracked while its scope body is walked.
struct JoinEntry {
    label: u32,
    jumped: bool,
}

#[derive(Default)]
struct Linter {
    out: Vec<Diagnostic>,
    /// Name of the function being walked (for notes).
    func: String,
    /// Variable ids referenced (not bound) anywhere in the current body.
    used_vars: HashSet<u32>,
    /// Join points whose scope body is currently being walked, innermost
    /// last; shadowed labels keep their earlier entries on the stack.
    joins: Vec<JoinEntry>,
}

/// Parses `x0`-style atoms, returning the id.
fn id_of(sexp: &Sexp, prefix: char) -> Option<u32> {
    let digits = sexp.as_atom()?.strip_prefix(prefix)?;
    if digits.is_empty() || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok()
}

fn tag_of(sexp: &Sexp) -> Option<u32> {
    let text = sexp.as_atom()?;
    if text.is_empty() || !text.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    text.parse().ok()
}

impl Linter {
    fn warn(&mut self, code: &'static str, message: String, span: crate::span::Span) {
        let note = format!("in function @{}", self.func);
        self.out
            .push(Diagnostic::warning(code, message, span).with_note(note));
    }

    fn lint_def(&mut self, top: &Sexp) {
        let Some(items) = top.as_list() else { return };
        if items.first().and_then(Sexp::as_atom) != Some("def") || items.len() != 4 {
            return;
        }
        let Some(name) = items[1].as_atom() else {
            return;
        };
        self.func = name.to_string();
        self.used_vars = HashSet::new();
        self.joins = Vec::new();
        self.walk_expr(&items[3], &HashMap::new());
        let Some(params) = items[2].as_list() else {
            return;
        };
        for p in params {
            if let Some(v) = id_of(p, 'x') {
                if !self.used_vars.contains(&v) {
                    self.warn(
                        E_LINT_UNUSED_PARAM,
                        format!("parameter x{v} is never used"),
                        p.span,
                    );
                }
            }
        }
    }

    fn mark_use(&mut self, sexp: &Sexp) {
        if let Some(v) = id_of(sexp, 'x') {
            self.used_vars.insert(v);
        }
    }

    /// Walks one expression form. `known` maps variables to the constructor
    /// tag they were bound to (`(let xN (ctor T ...) ...)`) in the enclosing
    /// `let` chain.
    fn walk_expr(&mut self, sexp: &Sexp, known: &HashMap<u32, u32>) {
        let Some(items) = sexp.as_list() else { return };
        let Some(head) = items.first().and_then(Sexp::as_atom) else {
            return;
        };
        match (head, items.len()) {
            ("let", 4) => {
                self.walk_value(&items[2]);
                let mut inner = known.clone();
                if let (Some(v), Some(tag)) = (id_of(&items[1], 'x'), ctor_tag(&items[2])) {
                    inner.insert(v, tag);
                }
                self.walk_expr(&items[3], &inner);
            }
            ("join", 5) => {
                let label = id_of(&items[1], 'j');
                if let Some(l) = label {
                    if self.joins.iter().any(|j| j.label == l) {
                        self.warn(
                            E_LINT_SHADOWED_BINDING,
                            format!("join point j{l} shadows an enclosing join point with the same label"),
                            items[1].span,
                        );
                    }
                }
                // The join's own body sees enclosing joins but not itself,
                // and its parameters hide the outer variable scope — so no
                // `known` facts survive into it.
                self.walk_expr(&items[3], &HashMap::new());
                if let Some(l) = label {
                    self.joins.push(JoinEntry {
                        label: l,
                        jumped: false,
                    });
                    self.walk_expr(&items[4], known);
                    let entry = self.joins.pop().expect("pushed above");
                    if !entry.jumped {
                        self.warn(
                            E_LINT_DEAD_JOIN,
                            format!("join point j{l} is never jumped to"),
                            items[1].span,
                        );
                    }
                } else {
                    self.walk_expr(&items[4], known);
                }
            }
            ("case", n) if n >= 3 => {
                self.mark_use(&items[1]);
                let scrutinee_tag = id_of(&items[1], 'x').and_then(|v| known.get(&v).copied());
                for arm in &items[2..] {
                    let Some(arm_items) = arm.as_list() else {
                        continue;
                    };
                    if arm_items.len() != 2 {
                        continue;
                    }
                    if let (Some(always), Some(tag)) = (scrutinee_tag, tag_of(&arm_items[0])) {
                        if tag != always {
                            self.warn(
                                E_LINT_UNREACHABLE_ARM,
                                format!(
                                    "unreachable case arm: tag {tag} never matches \
                                     (scrutinee is always constructor tag {always})"
                                ),
                                arm_items[0].span,
                            );
                        }
                    }
                    self.walk_expr(&arm_items[1], known);
                }
            }
            ("jump", n) if n >= 2 => {
                if let Some(l) = id_of(&items[1], 'j') {
                    // The innermost entry owns the label; shadowed outer
                    // entries stay un-jumped.
                    if let Some(entry) = self.joins.iter_mut().rev().find(|j| j.label == l) {
                        entry.jumped = true;
                    }
                }
                for a in &items[2..] {
                    self.mark_use(a);
                }
            }
            ("ret", 2) => self.mark_use(&items[1]),
            ("inc", 4) => {
                self.mark_use(&items[1]);
                self.walk_expr(&items[3], known);
            }
            ("dec", 3) => {
                self.mark_use(&items[1]);
                self.walk_expr(&items[2], known);
            }
            _ => {}
        }
    }

    fn walk_value(&mut self, sexp: &Sexp) {
        match &sexp.kind {
            SexpKind::Atom(_) => self.mark_use(sexp),
            SexpKind::Str(_) => {}
            SexpKind::List(items) => {
                let Some(head) = items.first().and_then(Sexp::as_atom) else {
                    return;
                };
                match head {
                    "ctor" | "call" | "pap" => {
                        for a in items.iter().skip(2) {
                            self.mark_use(a);
                        }
                    }
                    "proj" => {
                        if let Some(v) = items.get(2) {
                            self.mark_use(v);
                        }
                    }
                    "app" => {
                        for a in items.iter().skip(1) {
                            self.mark_use(a);
                        }
                    }
                    _ => {}
                }
            }
        }
    }
}

/// The constructor tag of a `(ctor T ...)` value form, if that is what
/// `sexp` is.
fn ctor_tag(sexp: &Sexp) -> Option<u32> {
    let items = sexp.as_list()?;
    if items.first().and_then(Sexp::as_atom) != Some("ctor") {
        return None;
    }
    tag_of(items.get(1)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn codes(src: &str) -> Vec<&'static str> {
        lint_source(src).iter().map(|d| d.code).collect()
    }

    #[test]
    fn clean_function_has_no_findings() {
        let src = "(def id (x0) (ret x0))";
        assert!(lint_source(src).is_empty());
    }

    #[test]
    fn unused_parameter_is_found() {
        let src = "(def fst (x0 x1) (ret x0))";
        assert_eq!(codes(src), vec![E_LINT_UNUSED_PARAM]);
        let d = &lint_source(src)[0];
        assert!(d.message.contains("x1"), "{}", d.message);
        assert_eq!(d.notes, vec!["in function @fst"]);
    }

    #[test]
    fn dead_join_is_found() {
        let src = "(def f (x0) (join j0 (x1) (ret x1) (ret x0)))";
        assert_eq!(codes(src), vec![E_LINT_DEAD_JOIN]);
    }

    #[test]
    fn jumped_join_is_not_dead() {
        let src = "(def f (x0) (join j0 (x1) (ret x1) (jump j0 x0)))";
        assert!(lint_source(src).is_empty());
    }

    #[test]
    fn jump_from_inner_join_body_counts() {
        // j0's only jump sits inside j1's body: still live.
        let src = "(def f (x0) \
                   (join j0 (x1) (ret x1) \
                   (join j1 (x2) (jump j0 x2) (jump j1 x0))))";
        assert!(lint_source(src).is_empty());
    }

    #[test]
    fn unreachable_arm_is_found() {
        let src = "(def f (x0) \
                   (let x1 (ctor 1 x0) \
                   (case x1 (0 (ret x0)) (1 (ret x1)))))";
        let diags = lint_source(src);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, E_LINT_UNREACHABLE_ARM);
        assert!(diags[0].message.contains("tag 0"), "{}", diags[0].message);
    }

    #[test]
    fn known_tags_do_not_cross_join_bodies() {
        // Inside j0's body x1 is out of scope anyway; the lint must not
        // carry the ctor fact into it via a same-id parameter.
        let src = "(def f (x0) \
                   (let x1 (ctor 1 x0) \
                   (join j0 (x1) (case x1 (0 (ret x1)) (else (ret x1))) \
                   (jump j0 x1))))";
        assert!(lint_source(src).is_empty());
    }

    #[test]
    fn shadowed_join_label_is_found() {
        let src = "(def f (x0) \
                   (join j0 (x1) (ret x1) \
                   (join j0 (x2) (ret x2) (jump j0 x0))))";
        let diags = lint_source(src);
        // The inner j0 shadows the outer; the outer is then never jumped to
        // (the jump binds to the inner one).
        let found: Vec<&str> = diags.iter().map(|d| d.code).collect();
        assert_eq!(found, vec![E_LINT_SHADOWED_BINDING, E_LINT_DEAD_JOIN]);
    }

    #[test]
    fn broken_syntax_yields_no_lints() {
        assert!(lint_source("(def f (x0) (ret x0)").is_empty());
    }
}
