//! The paper's benchmark suite (§V-B), written in the surface language.
//!
//! "The programs in the LEAN benchmark suite represent workloads commonly
//! encountered by functional programming languages": binary trees
//! (nat and int payloads), constant folding and derivatives over expression
//! languages, list filtering, real in-place quicksort on arrays, red-black
//! tree insertion/lookup, and Tarjan's union-find.
//!
//! Every program's `main` returns a checksum so differential testing can
//! compare pipelines; sizes are scaled by [`Scale`].

/// Benchmark input sizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Tiny inputs for correctness tests.
    Test,
    /// Inputs sized for timing runs (hundreds of milliseconds in the VM).
    Bench,
    /// Inputs several times `Bench` — nightly stress runs (exercised by the
    /// `slow-tests` feature in CI and `lssa bench --scale stress`).
    Stress,
}

/// A named benchmark.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Benchmark name (matches the paper's Figure 9 labels).
    pub name: &'static str,
    /// The program source.
    pub src: String,
    /// Expected `main()` output at `Scale::Test` (checksum oracle).
    pub expected_test: &'static str,
}

/// All eight benchmarks at the given scale.
pub fn all(scale: Scale) -> Vec<Workload> {
    vec![
        binarytrees(scale),
        binarytrees_int(scale),
        const_fold(scale),
        deriv(scale),
        filter(scale),
        qsort(scale),
        rbmap_checkpoint(scale),
        unionfind(scale),
    ]
}

/// A specific benchmark by name.
pub fn by_name(name: &str, scale: Scale) -> Option<Workload> {
    all(scale).into_iter().find(|w| w.name == name)
}

const LCG: &str = "def lcg(s) := (s * 1103515245 + 12345) % 2147483648\n";

/// Purely functional binary tree build/check sweeps.
pub fn binarytrees(scale: Scale) -> Workload {
    let (iters, depth) = match scale {
        Scale::Test => (2, 4),
        Scale::Bench => (12, 11),
        Scale::Stress => (16, 13),
    };
    Workload {
        name: "binarytrees",
        src: format!(
            r#"
inductive Tree := Leaf | Node(l, r)
def make(d) := if d == 0 then Leaf else Node(make(d - 1), make(d - 1))
def check(t) :=
  case t of
  | Leaf => 1
  | Node(l, r) => 1 + check(l) + check(r)
  end
def sweep(i, d, acc) :=
  if i == 0 then acc else sweep(i - 1, d, acc + check(make(d)))
def main() := sweep({iters}, {depth}, 0)
"#
        ),
        expected_test: "62", // 2 * (2^5 - 1)
    }
}

/// Binary trees with integer payloads (exercises the `Int` runtime ops).
pub fn binarytrees_int(scale: Scale) -> Workload {
    let (iters, depth) = match scale {
        Scale::Test => (2, 4),
        Scale::Bench => (10, 11),
        Scale::Stress => (12, 13),
    };
    Workload {
        name: "binarytrees-int",
        src: format!(
            r#"
inductive Tree := Leaf | Node(v, l, r)
def make(v, d) :=
  if d == 0 then Leaf
  else Node(v, make(@int_add(v, 1), d - 1), make(@int_sub(v, 1), d - 1))
def checksum(t) :=
  case t of
  | Leaf => 1
  | Node(v, l, r) => @int_add(v, @int_add(checksum(l), checksum(r)))
  end
def sweep(i, d, acc) :=
  if i == 0 then acc
  else sweep(i - 1, d, @int_add(acc, checksum(make(0, d))))
def main() := sweep({iters}, {depth}, 0)
"#
        ),
        expected_test: "32", // 2 * 16 leaves (payload contributions cancel)
    }
}

/// Constant folding on an expression language (with bigint growth).
pub fn const_fold(scale: Scale) -> Workload {
    let (iters, n) = match scale {
        Scale::Test => (1, 6),
        Scale::Bench => (160, 60),
        Scale::Stress => (600, 80),
    };
    Workload {
        name: "const_fold",
        src: format!(
            r#"
inductive Expr := Lit(v) | Add(a, b) | Mul(a, b)
def build(n) :=
  if n == 0 then Lit(1)
  else if n % 3 == 0 then Mul(Lit(2), build(n - 1))
  else Add(Lit(n), build(n - 1))
def fold(e) :=
  case e of
  | Lit(v) => Lit(v)
  | Add(a, b) =>
    let fa := fold(a);
    let fb := fold(b);
    case fa of
    | Lit(x) =>
      case fb of
      | Lit(y) => Lit(x + y)
      | _ => Add(fa, fb)
      end
    | _ => Add(fa, fb)
    end
  | Mul(a, b) =>
    let fa := fold(a);
    let fb := fold(b);
    case fa of
    | Lit(x) =>
      case fb of
      | Lit(y) => Lit(x * y)
      | _ => Mul(fa, fb)
      end
    | _ => Mul(fa, fb)
    end
  end
def eval(e) :=
  case e of
  | Lit(v) => v
  | Add(a, b) => eval(a) + eval(b)
  | Mul(a, b) => eval(a) * eval(b)
  end
def run(i, n, acc) :=
  if i == 0 then acc else run(i - 1, n, acc + eval(fold(build(n))))
def main() := run({iters}, {n}, 0)
"#
        ),
        expected_test: "34", // eval(fold(build(6)))
    }
}

/// Symbolic differentiation of expression trees.
pub fn deriv(scale: Scale) -> Workload {
    let (iters, n) = match scale {
        Scale::Test => (1, 3),
        Scale::Bench => (60, 9),
        Scale::Stress => (200, 11),
    };
    Workload {
        name: "deriv",
        src: format!(
            r#"
inductive Expr := X | Const(c) | Add(a, b) | Mul(a, b)
def d(e) :=
  case e of
  | X => Const(1)
  | Const(c) => Const(0)
  | Add(a, b) => Add(d(a), d(b))
  | Mul(a, b) => Add(Mul(d(a), b), Mul(a, d(b)))
  end
def pow(n) := if n == 0 then Const(1) else Mul(X, pow(n - 1))
def eval(e, x) :=
  case e of
  | X => x
  | Const(c) => c
  | Add(a, b) => eval(a, x) + eval(b, x)
  | Mul(a, b) => eval(a, x) * eval(b, x)
  end
def run(i, n, acc) :=
  if i == 0 then acc else run(i - 1, n, acc + eval(d(pow(n)), 2))
def main() := run({iters}, {n}, 0)
"#
        ),
        // d/dx x^3 at 2 = 3 * 4 = 12
        expected_test: "12",
    }
}

/// Filtering a linked list by a predicate.
pub fn filter(scale: Scale) -> Workload {
    let (iters, n) = match scale {
        Scale::Test => (2, 10),
        Scale::Bench => (250, 600),
        Scale::Stress => (600, 2000),
    };
    Workload {
        name: "filter",
        src: format!(
            r#"
inductive List := Nil | Cons(h, t)
def upto(n) := if n == 0 then Nil else Cons(n, upto(n - 1))
def keep_even(xs) :=
  case xs of
  | Nil => Nil
  | Cons(h, t) => if h % 2 == 0 then Cons(h, keep_even(t)) else keep_even(t)
  end
def sum_acc(xs, acc) :=
  case xs of
  | Nil => acc
  | Cons(h, t) => sum_acc(t, acc + h)
  end
def run(i, n, acc) :=
  if i == 0 then acc
  else run(i - 1, n, acc + sum_acc(keep_even(upto(n)), 0))
def main() := run({iters}, {n}, 0)
"#
        ),
        expected_test: "60", // 2 * (2+4+6+8+10)
    }
}

/// Real in-place quicksort on arrays (exclusivity-based mutation).
pub fn qsort(scale: Scale) -> Workload {
    let (iters, n) = match scale {
        Scale::Test => (1, 16),
        Scale::Bench => (40, 500),
        Scale::Stress => (120, 1500),
    };
    Workload {
        name: "qsort",
        src: format!(
            r#"
inductive Pair := MkPair(a, b)
{LCG}
def fill(a, i, n, seed) :=
  if i == n then a
  else fill(@array_push(a, seed % 10000), i + 1, n, lcg(seed))
def swap(a, i, j) :=
  let x := @array_get(a, i);
  let y := @array_get(a, j);
  @array_set(@array_set(a, i, y), j, x)
def partition(a, hi, i, j) :=
  if j == hi then MkPair(swap(a, i, hi), i)
  else
    let p := @array_get(a, hi);
    let v := @array_get(a, j);
    if v < p then partition(swap(a, i, j), hi, i + 1, j + 1)
    else partition(a, hi, i, j + 1)
def qsort(a, lo, hi) :=
  if hi <= lo then a
  else
    case partition(a, hi, lo, lo) of
    | MkPair(a2, p) =>
      let a3 := if p == 0 then a2 else qsort(a2, lo, p - 1);
      qsort(a3, p + 1, hi)
    end
def checksum(a, i, n, acc) :=
  if i == n then acc
  else checksum(a, i + 1, n, acc + @array_get(a, i) * (i + 1))
def run(i, n, acc) :=
  if i == 0 then acc
  else
    let a := fill(@mk_empty_array(), 0, n, i * 7 + 1);
    let s := qsort(a, 0, n - 1);
    run(i - 1, n, acc + checksum(s, 0, n, 0) % 1000003)
def main() := run({iters}, {n}, 0)
"#
        ),
        expected_test: "972691",
    }
}

/// Red-black tree insertion and lookup (Okasaki balancing).
pub fn rbmap_checkpoint(scale: Scale) -> Workload {
    let (n, probes) = match scale {
        Scale::Test => (30, 10),
        Scale::Bench => (4000, 2000),
        Scale::Stress => (20000, 10000),
    };
    Workload {
        name: "rbmap_checkpoint",
        src: format!(
            r#"
inductive Color := Red | Black
inductive Tree := Leaf | Node(c, l, k, v, r)
{LCG}
def balance(l, k, v, r) :=
  case l of
  | Node(lc, ll, lk, lv, lr) =>
    case lc of
    | Red =>
      case ll of
      | Node(llc, lla, llk, llv, llb) =>
        case llc of
        | Red => Node(Red, Node(Black, lla, llk, llv, llb), lk, lv, Node(Black, lr, k, v, r))
        | Black => balance_lr(l, k, v, r)
        end
      | Leaf => balance_lr(l, k, v, r)
      end
    | Black => balance_right(l, k, v, r)
    end
  | Leaf => balance_right(l, k, v, r)
  end
def balance_lr(l, k, v, r) :=
  case l of
  | Node(lc, ll, lk, lv, lr) =>
    case lr of
    | Node(lrc, lra, lrk, lrv, lrb) =>
      case lrc of
      | Red => Node(Red, Node(Black, ll, lk, lv, lra), lrk, lrv, Node(Black, lrb, k, v, r))
      | Black => balance_right(l, k, v, r)
      end
    | Leaf => balance_right(l, k, v, r)
    end
  | Leaf => balance_right(l, k, v, r)
  end
def balance_right(l, k, v, r) :=
  case r of
  | Node(rc, rl, rk, rv, rr) =>
    case rc of
    | Red =>
      case rl of
      | Node(rlc, rla, rlk, rlv, rlb) =>
        case rlc of
        | Red => Node(Red, Node(Black, l, k, v, rla), rlk, rlv, Node(Black, rlb, rk, rv, rr))
        | Black => balance_rr(l, k, v, r)
        end
      | Leaf => balance_rr(l, k, v, r)
      end
    | Black => Node(Black, l, k, v, r)
    end
  | Leaf => Node(Black, l, k, v, r)
  end
def balance_rr(l, k, v, r) :=
  case r of
  | Node(rc, rl, rk, rv, rr) =>
    case rr of
    | Node(rrc, rra, rrk, rrv, rrb) =>
      case rrc of
      | Red => Node(Red, Node(Black, l, k, v, rl), rk, rv, Node(Black, rra, rrk, rrv, rrb))
      | Black => Node(Black, l, k, v, r)
      end
    | Leaf => Node(Black, l, k, v, r)
    end
  | Leaf => Node(Black, l, k, v, r)
  end
def ins(t, k, v) :=
  case t of
  | Leaf => Node(Red, Leaf, k, v, Leaf)
  | Node(c, l, tk, tv, r) =>
    if k < tk then
      case c of
      | Red => Node(Red, ins(l, k, v), tk, tv, r)
      | Black => balance(ins(l, k, v), tk, tv, r)
      end
    else if tk < k then
      case c of
      | Red => Node(Red, l, tk, tv, ins(r, k, v))
      | Black => balance(l, tk, tv, ins(r, k, v))
      end
    else Node(c, l, tk, v, r)
  end
def insert(t, k, v) :=
  case ins(t, k, v) of
  | Leaf => Leaf
  | Node(c, l, k2, v2, r) => Node(Black, l, k2, v2, r)
  end
def find(t, k) :=
  case t of
  | Leaf => 0
  | Node(c, l, tk, tv, r) =>
    if k < tk then find(l, k)
    else if tk < k then find(r, k)
    else tv
  end
def size(t) :=
  case t of
  | Leaf => 0
  | Node(c, l, k, v, r) => 1 + size(l) + size(r)
  end
def fill(t, i, n, seed) :=
  if i == n then t
  else fill(insert(t, seed % 65536, i), i + 1, n, lcg(seed))
def probe(t, i, seed, acc) :=
  if i == 0 then acc
  else probe(t, i - 1, lcg(seed), acc + find(t, seed % 65536))
def main() :=
  let t := fill(Leaf, 0, {n}, 1);
  size(t) * 1000000 + probe(t, {probes}, 1, 0) % 1000000
"#
        ),
        expected_test: "30000045",
    }
}

/// Tarjan's union-find with path compression over arrays.
pub fn unionfind(scale: Scale) -> Workload {
    let (n, ops) = match scale {
        Scale::Test => (16, 10),
        Scale::Bench => (3000, 3000),
        Scale::Stress => (15000, 15000),
    };
    Workload {
        name: "unionfind",
        src: format!(
            r#"
inductive Pair := MkPair(a, b)
{LCG}
def init(p, i, n) := if i == n then p else init(@array_push(p, i), i + 1, n)
def find(p, i) :=
  let pi := @array_get(p, i);
  if pi == i then MkPair(p, i)
  else
    case find(p, pi) of
    | MkPair(p2, root) => MkPair(@array_set(p2, i, root), root)
    end
def union(p, a, b) :=
  case find(p, a) of
  | MkPair(p1, ra) =>
    case find(p1, b) of
    | MkPair(p2, rb) =>
      if ra == rb then p2 else @array_set(p2, ra, rb)
    end
  end
def unions(p, i, ops, n, seed) :=
  if i == ops then p
  else
    let s2 := lcg(seed);
    unions(union(p, seed % n, s2 % n), i + 1, ops, n, lcg(s2))
def roots(p, i, n, acc) :=
  if i == n then acc
  else
    let pi := @array_get(p, i);
    roots(p, i + 1, n, if pi == i then acc + 1 else acc)
def main() :=
  let p := init(@mk_empty_array(), 0, {n});
  let p2 := unions(p, 0, {ops}, {n}, 12345);
  roots(p2, 0, {n}, 0)
"#
        ),
        expected_test: "8",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipelines::{compile_and_run, CompilerConfig};

    const MAX_STEPS: u64 = 500_000_000;

    #[test]
    fn eight_workloads_present() {
        let ws = all(Scale::Test);
        assert_eq!(ws.len(), 8);
        let names: Vec<&str> = ws.iter().map(|w| w.name).collect();
        assert_eq!(
            names,
            vec![
                "binarytrees",
                "binarytrees-int",
                "const_fold",
                "deriv",
                "filter",
                "qsort",
                "rbmap_checkpoint",
                "unionfind"
            ]
        );
        assert!(by_name("qsort", Scale::Test).is_some());
        assert!(by_name("nosuch", Scale::Test).is_none());
    }

    #[test]
    fn workloads_run_on_reference_interpreter() {
        // One executor job per workload — the same batching layer the
        // integration-test oracles and the `correctness` binary use.
        let workloads = all(Scale::Test);
        crate::par::par_map(&workloads, |w| {
            let p =
                lssa_lambda::parse_program(&w.src).unwrap_or_else(|e| panic!("{}: {e}", w.name));
            lssa_lambda::check_program(&p).unwrap_or_else(|e| panic!("{}: {e:?}", w.name));
            let rc = lssa_lambda::insert_rc(&p);
            let out = lssa_lambda::run_program(&rc, "main", true, MAX_STEPS)
                .unwrap_or_else(|e| panic!("{}: {e}", w.name));
            assert_eq!(out.rendered, w.expected_test, "{}", w.name);
            assert_eq!(out.stats.live, 0, "{}: leak", w.name);
        });
    }

    #[test]
    fn workloads_agree_across_pipelines() {
        let workloads = all(Scale::Test);
        crate::par::par_map(&workloads, |w| {
            for config in [
                CompilerConfig::leanc(),
                CompilerConfig::mlir(),
                CompilerConfig::rgn_only(),
                CompilerConfig::none(),
            ] {
                let out = compile_and_run(&w.src, config, MAX_STEPS)
                    .unwrap_or_else(|e| panic!("{} [{}]: {e}", w.name, config.label()));
                assert_eq!(
                    out.rendered,
                    w.expected_test,
                    "{} [{}]",
                    w.name,
                    config.label()
                );
                assert_eq!(
                    out.stats.heap.live,
                    0,
                    "{} [{}]: leak",
                    w.name,
                    config.label()
                );
            }
        });
    }
}
