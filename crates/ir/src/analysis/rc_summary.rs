//! Ownership classes and per-block reference-count effect summaries.
//!
//! The λrc protocol (paper §II–III) makes every `lp` operation's effect on
//! an object's reference count a *static* property of the opcode and the
//! operand position. This module captures that table once:
//!
//! - [`classify`] assigns each SSA value an [`RcClass`] — whether the value
//!   *owns* a reference at its definition, merely *aliases* an object owned
//!   elsewhere, or is an untracked scalar.
//! - [`summarize_block`] folds one block's events into a composable
//!   [`RcEffect`] per value: the net count delta plus the minimum "slack"
//!   any prefix of the block reaches. Applying a summary to an incoming
//!   count answers, without re-walking the ops, whether the block can dip a
//!   count below its floor and what count leaves the block.
//!
//! The [`rc_check`](super::rc_check) linearity checker composes these
//! summaries along CFG paths; they are also reusable on their own (e.g. for
//! a future cross-block RC motion pass).

use crate::attr::{Attr, AttrKey};
use crate::body::{Body, ValueDef};
use crate::ids::{BlockId, OpId, Symbol, ValueId};
use crate::opcode::Opcode;
use crate::types::Type;
use std::collections::{HashMap, HashSet};

/// How a value participates in reference counting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RcClass {
    /// The definition comes with a reference the defining scope owns:
    /// block arguments (including function parameters) and the results of
    /// calls and allocating ops (`lp.construct`, `lp.pap`, `lp.papextend`,
    /// `lp.bigint`, `lp.str`).
    Owned,
    /// The value aliases an object whose count is owned elsewhere:
    /// `lp.project`, `select`/`switch_val` over objects, `lp.global_load`.
    /// Its events are tracked, but anomalies are unprovable rather than
    /// definite errors — validity may derive from the aliased source.
    Alias,
    /// Not reference-counted: non-object values and `lp.int` results (the
    /// VM's unboxed scalars, on which inc/dec are no-ops).
    Scalar,
}

/// Classifies `v` per the table above.
pub fn classify(body: &Body, v: ValueId) -> RcClass {
    if body.value_type(v) != Type::Obj {
        return RcClass::Scalar;
    }
    match body.values[v.index()].def {
        ValueDef::BlockArg(..) => RcClass::Owned,
        ValueDef::OpResult(op, _) => match body.ops[op.index()].opcode {
            Opcode::LpInt => RcClass::Scalar,
            Opcode::LpProject | Opcode::Select | Opcode::SwitchVal | Opcode::LpGlobalLoad => {
                RcClass::Alias
            }
            Opcode::Call
            | Opcode::LpConstruct
            | Opcode::LpPap
            | Opcode::LpPapExtend
            | Opcode::LpBigInt
            | Opcode::LpStr => RcClass::Owned,
            _ => RcClass::Scalar,
        },
    }
}

/// One value's collapsed event sequence within a block.
///
/// `net` is the total count delta. `min` is the lowest release floor any
/// prefix reaches: each inc/dec/consume event requires the running count to
/// stay ≥ 0, so a block entered with count `c` releases soundly iff
/// `c + min >= 0` and exits with `c + net`.
///
/// `min_borrow` is the analogous floor for borrow probes (`borrow_mask`
/// positions of extern calls): the count should be ≥ 1 while the callee
/// borrows, i.e. `c + min_borrow >= 0`. Probe failures are weaker evidence
/// than release failures — ownership may have legally moved into a
/// still-live container — so the checker reports them separately.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RcEffect {
    /// Total count delta across the block.
    pub net: i64,
    /// Minimum release slack over all prefixes (always ≤ 0).
    pub min: i64,
    /// Minimum borrow slack over all probe points (0 when never probed).
    pub min_borrow: i64,
}

impl RcEffect {
    fn add(&mut self, delta: i64) {
        self.net += delta;
        self.min = self.min.min(self.net);
    }

    /// A borrow probe: the count should be ≥ 1 here, without changing it.
    fn probe(&mut self) {
        self.min_borrow = self.min_borrow.min(self.net - 1);
    }
}

/// The RC events of one block, collapsed per value.
#[derive(Debug, Clone, Default)]
pub struct BlockSummary {
    /// Per-value effect for every non-scalar value the block touches
    /// (including the `+1` of values the block itself defines as owners).
    pub effects: HashMap<ValueId, RcEffect>,
    /// Calls carrying a `borrow_mask` whose callee is *not* extern — the VM
    /// only honors the mask on builtins, so these are protocol violations.
    pub mask_on_internal: Vec<OpId>,
}

/// Summarizes the RC events of `block`. `externs` names the module's extern
/// (builtin) functions: only their calls honor `borrow_mask`.
///
/// Successor-argument consumption is deliberately *excluded* — it is
/// per-edge, so the checker applies it while propagating along each edge.
pub fn summarize_block(body: &Body, block: BlockId, externs: &HashSet<Symbol>) -> BlockSummary {
    let mut summary = BlockSummary::default();
    let bump = |summary: &mut BlockSummary, v: ValueId, delta: i64| {
        if classify(body, v) != RcClass::Scalar {
            summary.effects.entry(v).or_default().add(delta);
        }
    };
    for &op in &body.blocks[block.index()].ops {
        let data = &body.ops[op.index()];
        match data.opcode {
            Opcode::LpInc => bump(&mut summary, data.operands[0], 1),
            Opcode::LpDec => bump(&mut summary, data.operands[0], -1),
            Opcode::Call => {
                let callee = data.attr(AttrKey::Callee).and_then(Attr::as_sym);
                let is_extern = callee.is_some_and(|s| externs.contains(&s));
                let mask = data
                    .attr(AttrKey::BorrowMask)
                    .and_then(Attr::as_int)
                    .unwrap_or(0);
                if mask != 0 && !is_extern {
                    summary.mask_on_internal.push(op);
                }
                for (i, &a) in data.operands.iter().enumerate() {
                    let borrowed = is_extern && i < 64 && mask & (1 << i) != 0;
                    if borrowed {
                        // The callee borrows: no consumption, but the caller
                        // must still hold a reference across the call.
                        if classify(body, a) == RcClass::Owned {
                            summary.effects.entry(a).or_default().probe();
                        }
                    } else {
                        bump(&mut summary, a, -1);
                    }
                }
                if let Some(r) = data.result() {
                    bump(&mut summary, r, 1);
                }
            }
            Opcode::TailCall => {
                for &a in &data.operands {
                    bump(&mut summary, a, -1);
                }
            }
            Opcode::LpConstruct | Opcode::LpPap | Opcode::LpPapExtend => {
                for &a in &data.operands {
                    bump(&mut summary, a, -1);
                }
                if let Some(r) = data.result() {
                    bump(&mut summary, r, 1);
                }
            }
            Opcode::LpBigInt | Opcode::LpStr => {
                if let Some(r) = data.result() {
                    bump(&mut summary, r, 1);
                }
            }
            Opcode::Return | Opcode::LpReturn | Opcode::LpGlobalStore => {
                bump(&mut summary, data.operands[0], -1);
            }
            // Pure ops borrow their operands; br/cond_br/switch_br edge
            // arguments are applied per edge by the checker; unreachable
            // ends the path.
            _ => {}
        }
    }
    summary
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::Builder;

    #[test]
    fn classes_follow_the_table() {
        let (mut body, params) = Body::new(&[Type::Obj, Type::I64]);
        let entry = body.entry_block();
        let mut b = Builder::at_end(&mut body, entry);
        let obj = b.lp_construct(0, vec![]);
        let small = b.lp_int(3);
        let field = b.lp_project(obj, 0);
        b.lp_ret(obj);
        assert_eq!(classify(&body, params[0]), RcClass::Owned);
        assert_eq!(classify(&body, params[1]), RcClass::Scalar);
        assert_eq!(classify(&body, obj), RcClass::Owned);
        assert_eq!(classify(&body, small), RcClass::Scalar);
        assert_eq!(classify(&body, field), RcClass::Alias);
    }

    #[test]
    fn block_summary_collapses_events() {
        // inc p; dec p; dec p  =>  net -1, min -1 (the second dec dips one
        // below the incoming count).
        let (mut body, params) = Body::new(&[Type::Obj]);
        let entry = body.entry_block();
        let mut b = Builder::at_end(&mut body, entry);
        b.lp_inc(params[0]);
        b.lp_dec(params[0]);
        b.lp_dec(params[0]);
        b.lp_ret(params[0]);
        let summary = summarize_block(&body, entry, &HashSet::new());
        let eff = summary.effects[&params[0]];
        // +1 -1 -1 (ret) -1 => net -2; prefixes 1,0,-1,-2 => min -2.
        assert_eq!(eff.net, -2);
        assert_eq!(eff.min, -2);
    }

    #[test]
    fn owned_definition_counts_plus_one() {
        let (mut body, _) = Body::new(&[]);
        let entry = body.entry_block();
        let mut b = Builder::at_end(&mut body, entry);
        let obj = b.lp_construct(1, vec![]);
        b.lp_ret(obj);
        let summary = summarize_block(&body, entry, &HashSet::new());
        let eff = summary.effects[&obj];
        assert_eq!(eff.net, 0); // +1 def, -1 return
        assert_eq!(eff.min, 0);
    }

    #[test]
    fn borrowed_call_args_probe_instead_of_consume() {
        let (mut body, params) = Body::new(&[Type::Obj]);
        let entry = body.entry_block();
        let mut b = Builder::at_end(&mut body, entry);
        let r = b.call(Symbol(7), vec![params[0]], Type::Obj);
        b.lp_ret(r);
        // Mark arg 0 borrowed.
        let call_op = body.defining_op(r).unwrap();
        body.ops[call_op.index()]
            .attrs
            .push((AttrKey::BorrowMask, Attr::Int(1)));

        // With the callee extern: probe (min -1 only if count 0), no net.
        let externs: HashSet<Symbol> = [Symbol(7)].into_iter().collect();
        let s = summarize_block(&body, entry, &externs);
        let eff = s.effects[&params[0]];
        assert_eq!(eff.net, 0);
        assert_eq!(eff.min, 0); // no release event
        assert_eq!(eff.min_borrow, -1); // probe at running count 0 demands >= 1
        assert!(s.mask_on_internal.is_empty());

        // With the callee internal: the mask is a protocol violation.
        let s2 = summarize_block(&body, entry, &HashSet::new());
        assert_eq!(s2.mask_on_internal, vec![call_op]);
        assert_eq!(s2.effects[&params[0]].net, -1); // consumed normally
    }
}
