//! The `rgn` rewrite patterns (Figure 1, §IV-B).
//!
//! Most of the paper's region optimizations come *for free* from generic
//! infrastructure once regions are SSA values:
//!
//! - dead region elimination = DCE on pure `rgn.val` ops,
//! - case elimination's selector step = `select`/`switch_val` constant
//!   folding from `lssa-ir`'s canonicalizer,
//! - common-branch elimination = GRN ([`crate::rgn::grn`]) + the generic
//!   `select(c, x, x) → x` fold.
//!
//! The one genuinely region-specific rewrite lives here:
//! [`RunKnownRegion`] — `rgn.run` of a directly-known, uniquely-used
//! `rgn.val` is replaced by the region's body (the `C → D` step in both
//! Figure 1B and 1C).

use lssa_ir::attr::{Attr, AttrKey};
use lssa_ir::body::Body;
use lssa_ir::ids::OpId;
use lssa_ir::opcode::Opcode;
use lssa_ir::rewrite::{RewriteCtx, RewritePattern};
use lssa_ir::types::Type;

/// Inlines `rgn.run %r(args)` when `%r` is a single-use `rgn.val` whose
/// region is a single block: the region's ops replace the run, block
/// arguments replaced by the run's arguments.
#[derive(Debug, Default, Clone, Copy)]
pub struct RunKnownRegion;

impl RewritePattern for RunKnownRegion {
    fn name(&self) -> &'static str {
        "run-known-region"
    }

    fn match_and_rewrite(&self, body: &mut Body, op: OpId, _ctx: &RewriteCtx<'_>) -> bool {
        if body.ops[op.index()].opcode != Opcode::RgnRun {
            return false;
        }
        let rv = body.ops[op.index()].operands[0];
        let Some(def) = body.defining_op(rv) else {
            return false;
        };
        if body.ops[def.index()].opcode != Opcode::RgnVal {
            return false;
        }
        // Unique use: inlining must not duplicate code (the paper's
        // deduplication guarantee for join points).
        if body.users_of(rv).len() != 1 {
            return false;
        }
        let region = body.ops[def.index()].regions[0];
        if body.regions[region.index()].blocks.len() != 1 {
            return false;
        }
        let inner = body.regions[region.index()].blocks[0];
        let args = body.ops[op.index()].operands[1..].to_vec();
        let params = body.blocks[inner.index()].args.clone();
        if params.len() != args.len() {
            return false; // malformed; let the verifier complain
        }
        let parent = body.ops[op.index()].parent.expect("detached run");
        // Map region parameters to run arguments.
        for (&p, &a) in params.iter().zip(&args) {
            body.replace_all_uses(p, a);
        }
        // Move the region's ops into the parent block, replacing the run.
        body.erase_op(op);
        let moved = std::mem::take(&mut body.blocks[inner.index()].ops);
        for &m in &moved {
            body.ops[m.index()].parent = Some(parent);
        }
        body.blocks[parent.index()].ops.extend(moved);
        body.blocks[inner.index()].parent = None;
        body.regions[region.index()].blocks.clear();
        body.erase_op(def);
        true
    }
}

/// `lp.getlabel` of a statically known value folds to its tag:
/// `lp.construct {tag}` yields `tag`; `lp.int {v}` (a scalar constructor
/// encoding) yields `v` when it fits in `i8`. This is what lets the select /
/// switch folds see through "case of known constructor" (Fig 1B).
#[derive(Debug, Default, Clone, Copy)]
pub struct FoldGetLabel;

impl RewritePattern for FoldGetLabel {
    fn name(&self) -> &'static str {
        "fold-getlabel"
    }

    fn match_and_rewrite(&self, body: &mut Body, op: OpId, _ctx: &RewriteCtx<'_>) -> bool {
        if body.ops[op.index()].opcode != Opcode::LpGetLabel {
            return false;
        }
        let src = body.ops[op.index()].operands[0];
        let Some(def) = body.defining_op(src) else {
            return false;
        };
        let tag = match body.ops[def.index()].opcode {
            Opcode::LpConstruct => body.ops[def.index()]
                .attr(AttrKey::Tag)
                .and_then(|a| a.as_int()),
            Opcode::LpInt => body.ops[def.index()]
                .attr(AttrKey::Value)
                .and_then(|a| a.as_int())
                .filter(|v| (0..=127).contains(v)),
            _ => None,
        };
        let Some(tag) = tag else { return false };
        let konst = body.create_op(
            Opcode::ConstI,
            vec![],
            &[Type::I8],
            vec![(AttrKey::Value, Attr::Int(tag))],
        );
        body.insert_op_before(op, konst);
        let new = body.ops[konst.index()].result().unwrap();
        let old = body.ops[op.index()].result().unwrap();
        body.replace_all_uses(old, new);
        body.erase_op(op);
        true
    }
}

/// `lp.project {i}` of a known `lp.construct` folds to the i-th field.
#[derive(Debug, Default, Clone, Copy)]
pub struct FoldProject;

impl RewritePattern for FoldProject {
    fn name(&self) -> &'static str {
        "fold-project"
    }

    fn match_and_rewrite(&self, body: &mut Body, op: OpId, _ctx: &RewriteCtx<'_>) -> bool {
        if body.ops[op.index()].opcode != Opcode::LpProject {
            return false;
        }
        let src = body.ops[op.index()].operands[0];
        let Some(def) = body.defining_op(src) else {
            return false;
        };
        if body.ops[def.index()].opcode != Opcode::LpConstruct {
            return false;
        }
        let Some(idx) = body.ops[op.index()]
            .attr(AttrKey::Index)
            .and_then(|a| a.as_int())
        else {
            return false;
        };
        let Some(&field) = body.ops[def.index()].operands.get(idx as usize) else {
            return false;
        };
        let old = body.ops[op.index()].result().unwrap();
        body.replace_all_uses(old, field);
        body.erase_op(op);
        true
    }
}

/// The full `rgn`+`lp` pattern set (used together with the generic
/// canonicalization patterns).
pub fn rgn_patterns() -> Vec<Box<dyn RewritePattern>> {
    vec![
        Box::new(RunKnownRegion),
        Box::new(FoldGetLabel),
        Box::new(FoldProject),
    ]
}

/// Generic + rgn canonicalization patterns, for
/// [`lssa_ir::passes::CanonicalizePass::with_extra`].
pub fn all_patterns() -> Vec<Box<dyn RewritePattern>> {
    let mut ps = lssa_ir::passes::canonicalization_patterns();
    ps.extend(rgn_patterns());
    ps
}

#[cfg(test)]
mod tests {
    use super::*;
    use lssa_ir::builder::Builder;
    use lssa_ir::prelude::*;
    use lssa_ir::rewrite::apply_patterns_greedily;

    fn canonicalize(body: &mut Body) -> bool {
        let module = Module::new();
        let ctx = RewriteCtx { module: &module };
        let patterns = all_patterns();
        apply_patterns_greedily(body, &ctx, &patterns)
    }

    /// Figure 1B, complete pipeline:
    /// `case True of True => 3 | False => 5` ⇒ `return 3`.
    #[test]
    fn case_elimination_fig1b() {
        let (mut body, _) = Body::new(&[]);
        let entry = body.entry_block();
        let mut b = Builder::at_end(&mut body, entry);
        let (x, bx) = b.rgn_val(&[]);
        {
            let mut ib = Builder::at_end(b.body, bx);
            let v = ib.lp_int(3);
            ib.lp_ret(v);
        }
        let mut b = Builder::at_end(&mut body, entry);
        let (y, by) = b.rgn_val(&[]);
        {
            let mut ib = Builder::at_end(b.body, by);
            let v = ib.lp_int(5);
            ib.lp_ret(v);
        }
        let mut b = Builder::at_end(&mut body, entry);
        let t = b.const_bool(true);
        let sel = b.select(t, x, y);
        b.rgn_run(sel, vec![]);

        assert!(canonicalize(&mut body));
        // Everything folds down to `lp.int 3; lp.ret`.
        let ops: Vec<Opcode> = body
            .walk_ops()
            .iter()
            .map(|&op| body.ops[op.index()].opcode)
            .collect();
        assert_eq!(ops, vec![Opcode::LpInt, Opcode::LpReturn]);
        let ret = body.walk_ops()[1];
        let v = body.ops[ret.index()].operands[0];
        let def = body.defining_op(v).unwrap();
        assert_eq!(
            body.ops[def.index()].attr(AttrKey::Value).unwrap().as_int(),
            Some(3)
        );
    }

    /// Figure 1C, complete pipeline with GRN:
    /// `case b of True => 7 | False => 7` ⇒ `return 7`.
    #[test]
    fn common_branch_elimination_fig1c() {
        let (mut body, params) = Body::new(&[Type::I1]);
        let entry = body.entry_block();
        for _ in 0..2 {
            let mut b = Builder::at_end(&mut body, entry);
            let (_rv, inner) = b.rgn_val(&[]);
            let mut ib = Builder::at_end(&mut body, inner);
            let v = ib.lp_int(7);
            ib.lp_ret(v);
        }
        let (x, y) = {
            let vals: Vec<ValueId> = body
                .walk_ops()
                .iter()
                .filter(|&&op| body.ops[op.index()].opcode == Opcode::RgnVal)
                .map(|&op| body.ops[op.index()].result().unwrap())
                .collect();
            (vals[0], vals[1])
        };
        let mut b = Builder::at_end(&mut body, entry);
        let sel = b.select(params[0], x, y);
        b.rgn_run(sel, vec![]);

        // Step 1: GRN merges the two regions (select sees %w, %w).
        assert!(crate::rgn::grn::run_on_body(&mut body));
        // Step 2: canonicalize folds the select and inlines the run.
        assert!(canonicalize(&mut body));
        let ops: Vec<Opcode> = body
            .walk_ops()
            .iter()
            .map(|&op| body.ops[op.index()].opcode)
            .collect();
        assert_eq!(ops, vec![Opcode::LpInt, Opcode::LpReturn]);
    }

    /// Figure 1A: dead region elimination is plain DCE.
    #[test]
    fn dead_region_elimination_fig1a() {
        let (mut body, _) = Body::new(&[]);
        let entry = body.entry_block();
        let mut b = Builder::at_end(&mut body, entry);
        let (_dead, bd) = b.rgn_val(&[]);
        {
            let mut ib = Builder::at_end(b.body, bd);
            let v = ib.lp_int(99);
            ib.lp_ret(v);
        }
        let mut b = Builder::at_end(&mut body, entry);
        let (live, bl) = b.rgn_val(&[]);
        {
            let mut ib = Builder::at_end(b.body, bl);
            let v = ib.lp_int(1);
            ib.lp_ret(v);
        }
        let mut b = Builder::at_end(&mut body, entry);
        b.rgn_run(live, vec![]);
        assert!(canonicalize(&mut body));
        // The dead region is gone and the live one inlined.
        let ops: Vec<Opcode> = body
            .walk_ops()
            .iter()
            .map(|&op| body.ops[op.index()].opcode)
            .collect();
        assert_eq!(ops, vec![Opcode::LpInt, Opcode::LpReturn]);
    }

    #[test]
    fn run_with_args_substitutes_params() {
        let (mut body, params) = Body::new(&[Type::Obj]);
        let entry = body.entry_block();
        let mut b = Builder::at_end(&mut body, entry);
        let (rv, inner) = b.rgn_val(&[Type::Obj]);
        {
            let arg = b.body.blocks[inner.index()].args[0];
            let mut ib = Builder::at_end(b.body, inner);
            let c = ib.lp_construct(1, vec![arg]);
            ib.lp_ret(c);
        }
        let mut b = Builder::at_end(&mut body, entry);
        b.rgn_run(rv, vec![params[0]]);
        assert!(canonicalize(&mut body));
        let construct = body
            .walk_ops()
            .into_iter()
            .find(|&op| body.ops[op.index()].opcode == Opcode::LpConstruct)
            .unwrap();
        assert_eq!(body.ops[construct.index()].operands, vec![params[0]]);
    }

    #[test]
    fn shared_region_not_inlined() {
        // A region value with two run sites must not be duplicated.
        let (mut body, params) = Body::new(&[Type::I1]);
        let entry = body.entry_block();
        let b2 = body.new_block(ROOT_REGION, &[]);
        let b3 = body.new_block(ROOT_REGION, &[]);
        let mut b = Builder::at_end(&mut body, entry);
        let (rv, inner) = b.rgn_val(&[]);
        {
            let mut ib = Builder::at_end(b.body, inner);
            let v = ib.lp_int(1);
            ib.lp_ret(v);
        }
        let mut b = Builder::at_end(&mut body, entry);
        b.cond_br(params[0], (b2, vec![]), (b3, vec![]));
        Builder::at_end(&mut body, b2).rgn_run(rv, vec![]);
        Builder::at_end(&mut body, b3).rgn_run(rv, vec![]);
        assert!(!canonicalize(&mut body));
        let n_runs = body
            .walk_ops()
            .iter()
            .filter(|&&op| body.ops[op.index()].opcode == Opcode::RgnRun)
            .count();
        assert_eq!(n_runs, 2);
    }
}
