//! Regenerates the checked-in `.lssa` conformance corpus from the benchmark
//! workloads.
//!
//! ```text
//! cargo run --example gen_corpus
//! ```
//!
//! For every workload at `Scale::Test` this writes
//! `tests/corpus/<name>.lssa` (the program in canonical formatter output, so
//! `lssa fmt --check` passes on the corpus) and
//! `tests/corpus/<name>.expected` (the checksum `main()` must print). The
//! files are committed; `tests/corpus_conformance.rs` asserts they stay
//! byte-identical to what this generator produces, so any change to the
//! workloads, the lowering, or the formatter shows up as a diff here.

use lambda_ssa::driver::workloads::{all, Scale};
use lambda_ssa::{lambda, syntax};

fn main() {
    let root = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/corpus");
    std::fs::create_dir_all(root).expect("create corpus dir");
    for w in all(Scale::Test) {
        let program = lambda::parse_program(&w.src).expect("workload parses");
        let text = syntax::print_program(&program);
        let reparsed = syntax::parse_program(&text).expect("canonical text reparses");
        assert_eq!(reparsed, program, "{}: round-trip must be exact", w.name);
        std::fs::write(format!("{root}/{}.lssa", w.name), &text).expect("write .lssa");
        std::fs::write(
            format!("{root}/{}.expected", w.name),
            format!("{}\n", w.expected_test),
        )
        .expect("write .expected");
        println!("wrote {}.lssa ({} bytes)", w.name, text.len());
    }
}
