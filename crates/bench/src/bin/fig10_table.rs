//! Regenerates Figure 10: speedup of the rgn dialect optimizations over the
//! λrc simplifier (and of running no optimizer at all).
//!
//! Three pipeline variants, as §V-B describes:
//! (a) the MLIR pipeline fed λrc-simplifier-optimized code (the baseline),
//! (b) unoptimized λrc (simpcase disabled) optimized by rgn,
//! (c) unoptimized λrc left unoptimized.
//!
//! ```text
//! cargo run --release -p lssa-bench --bin fig10_table [-- --runs 10 --scale bench]
//! ```

use lssa_bench::{bar, fig10_rows, geomean};
use lssa_driver::workloads::Scale;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let runs = arg_value(&args, "--runs").unwrap_or(10);
    let scale = if args.windows(2).any(|w| w[0] == "--scale" && w[1] == "test") {
        Scale::Test
    } else {
        Scale::Bench
    };
    println!("Figure 10: Speedup of rgn dialect optimizations over the λrc simplifier");
    println!("(a) λrc-simplified input  (b) rgn optimizations only  (c) no optimization");
    println!("bars show a/b (rgn, red in the paper) and a/c (none, gray); median of {runs} runs");
    println!();
    println!(
        "{:<20} {:>9} {:>10}   {:<32} {:>9}",
        "benchmark", "rgn ×", "instrs ×", "rgn vs λrc-simplifier", "none ×"
    );
    let rows = fig10_rows(scale, runs);
    for (name, rgn, none) in &rows {
        println!(
            "{:<20} {:>9.2} {:>10.2}   |{}| {:>9.2}",
            name,
            rgn.speedup_time,
            rgn.speedup_instr,
            bar(rgn.speedup_time, 30),
            none.speedup_time
        );
    }
    let rgn_times: Vec<f64> = rows.iter().map(|(_, r, _)| r.speedup_time).collect();
    let rgn_instrs: Vec<f64> = rows.iter().map(|(_, r, _)| r.speedup_instr).collect();
    let none_times: Vec<f64> = rows.iter().map(|(_, _, n)| n.speedup_time).collect();
    println!(
        "{:<20} {:>9.2} {:>10.2}   |{}| {:>9.2}",
        "geomean",
        geomean(&rgn_times),
        geomean(&rgn_instrs),
        bar(geomean(&rgn_times), 30),
        geomean(&none_times)
    );
    println!();
    println!("paper reports rgn-vs-λrc: 1.05 1.0 0.98 1.05 0.95 0.97 1.0 0.98, geomean 1.0");
}

fn arg_value(args: &[String], flag: &str) -> Option<usize> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}
