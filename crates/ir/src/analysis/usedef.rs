//! Use-def chains: every use site of every SSA value, indexed once.
//!
//! In SSA form, reaching definitions degenerate to a lookup — each value has
//! exactly one definition ([`crate::body::ValueDef`]) and it dominates every
//! use — so the interesting direction is def→uses. [`Body::users_of`] scans
//! the whole arena per query; [`UseDefChains`] builds the full index in one
//! walk and also records *where* each use sits (operand slot vs.
//! successor-argument slot), which per-op rewrites need.

use crate::body::{Body, ValueDef};
use crate::ids::{BlockId, OpId, ValueId};
use std::collections::HashMap;

/// How a value is referenced at a use site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UseKind {
    /// The `index`-th operand of the op.
    Operand,
    /// The `index`-th flattened successor argument of the terminator
    /// (counting across successors in order).
    SuccessorArg,
}

/// One reference to a value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UseSite {
    /// The op containing the use.
    pub op: OpId,
    /// The block containing `op`.
    pub block: BlockId,
    /// Position within the op's operand list or flattened successor args.
    pub index: u32,
    /// Operand or successor-argument use.
    pub kind: UseKind,
}

/// The def→uses index for one body.
#[derive(Debug, Clone, Default)]
pub struct UseDefChains {
    uses: HashMap<ValueId, Vec<UseSite>>,
}

impl UseDefChains {
    /// Indexes every live, attached op of `body` (all regions).
    pub fn compute(body: &Body) -> UseDefChains {
        let mut uses: HashMap<ValueId, Vec<UseSite>> = HashMap::new();
        for op in body.walk_ops() {
            let data = &body.ops[op.index()];
            let Some(block) = data.parent else { continue };
            for (i, &v) in data.operands.iter().enumerate() {
                uses.entry(v).or_default().push(UseSite {
                    op,
                    block,
                    index: i as u32,
                    kind: UseKind::Operand,
                });
            }
            let mut flat = 0u32;
            for s in &data.successors {
                for &v in &s.args {
                    uses.entry(v).or_default().push(UseSite {
                        op,
                        block,
                        index: flat,
                        kind: UseKind::SuccessorArg,
                    });
                    flat += 1;
                }
            }
        }
        UseDefChains { uses }
    }

    /// All use sites of `v`, in walk order.
    pub fn uses_of(&self, v: ValueId) -> &[UseSite] {
        self.uses.get(&v).map(|u| u.as_slice()).unwrap_or(&[])
    }

    /// Whether `v` has no uses at all.
    pub fn is_unused(&self, v: ValueId) -> bool {
        self.uses_of(v).is_empty()
    }

    /// The unique definition of `v` — SSA's reaching-definitions answer.
    pub fn def_of(body: &Body, v: ValueId) -> ValueDef {
        body.values[v.index()].def
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::body::ROOT_REGION;
    use crate::builder::Builder;
    use crate::types::Type;

    #[test]
    fn operand_and_successor_uses_are_indexed() {
        let (mut body, params) = Body::new(&[Type::I64]);
        let entry = body.entry_block();
        let next = body.new_block(ROOT_REGION, &[Type::I64]);
        let mut b = Builder::at_end(&mut body, entry);
        let s = b.addi(params[0], params[0]);
        b.br(next, vec![s]);
        let nv = body.blocks[next.index()].args[0];
        Builder::at_end(&mut body, next).ret(nv);
        let ud = UseDefChains::compute(&body);

        let p_uses = ud.uses_of(params[0]);
        assert_eq!(p_uses.len(), 2);
        assert!(p_uses
            .iter()
            .all(|u| u.kind == UseKind::Operand && u.block == entry));
        assert_eq!(p_uses[0].index, 0);
        assert_eq!(p_uses[1].index, 1);

        let s_uses = ud.uses_of(s);
        assert_eq!(s_uses.len(), 1);
        assert_eq!(s_uses[0].kind, UseKind::SuccessorArg);
        assert_eq!(s_uses[0].index, 0);

        assert!(!ud.is_unused(nv));
        match UseDefChains::def_of(&body, s) {
            crate::body::ValueDef::OpResult(op, 0) => {
                assert_eq!(body.ops[op.index()].opcode, crate::opcode::Opcode::AddI)
            }
            other => panic!("unexpected def {other:?}"),
        }
    }

    #[test]
    fn unused_value_reports_empty() {
        let (mut body, params) = Body::new(&[Type::I64, Type::I64]);
        let entry = body.entry_block();
        let mut b = Builder::at_end(&mut body, entry);
        b.ret(params[0]);
        let ud = UseDefChains::compute(&body);
        assert!(ud.is_unused(params[1]));
        assert_eq!(ud.uses_of(params[0]).len(), 1);
    }
}
