//! The parallel batch executor — one subsystem for every sharded run.
//!
//! PR 2 and PR 3 each hand-rolled their own `std::thread::scope` sharding
//! (the workload smoke oracle, the conformance suite). This module replaces
//! those one-offs with a single chunked work-queue executor that all batch
//! consumers share: the `correctness` binary, [`crate::pipelines::compile_batch`],
//! and the integration-test harnesses.
//!
//! Design:
//!
//! - **Chunked work queue.** Workers claim contiguous chunks of the input
//!   off a shared atomic cursor, so threads that land cheap jobs keep
//!   pulling work instead of idling behind a static partition.
//! - **Deterministic output.** Each job's result is tagged with its input
//!   index and the merged output is in input order — byte-identical
//!   regardless of `jobs`, chunk size, or scheduling.
//! - **Panic transparency.** Every job runs under `catch_unwind`, so a
//!   panicking job never wedges the batch or loses its worker's other
//!   results. In the default mode the panic is re-raised on the caller's
//!   thread after the whole batch completes — deterministically the
//!   lowest-input-index panic, with a summary counting *all* panicked jobs
//!   when there was more than one. In **quarantine mode**
//!   ([`BatchRunner::map_quarantined`] / [`BatchRunner::run_quarantined`])
//!   nothing is re-raised: each panic becomes a per-job [`JobPanic`] entry
//!   and the rest of the batch is unaffected.
//! - **Aggregation.** [`BatchRunner::run`] wraps each job with wall-clock
//!   timing and returns a [`BatchReport`] carrying per-job durations, the
//!   batch wall time, and (for `Result` jobs) failure accounting.
//!
//! ```
//! use lssa_driver::par::BatchRunner;
//! let squares = BatchRunner::new().with_jobs(4).map(&[1, 2, 3, 4], |n| n * n);
//! assert_eq!(squares, vec![1, 4, 9, 16]);
//! ```

use std::any::Any;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// What `catch_unwind` hands back from a panicked job.
pub(crate) type PanicPayload = Box<dyn Any + Send + 'static>;

/// Best-effort text of a panic payload (`&str` and `String` payloads cover
/// everything `panic!` and the `assert!` family produce).
pub(crate) fn panic_message(payload: &PanicPayload) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| (*s).to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "non-string panic payload".to_string())
}

/// A job panic captured by the quarantine mode: the panic message, carried
/// as a per-job failure value instead of an unwinding panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobPanic {
    /// The panic payload, rendered to text.
    pub message: String,
}

impl fmt::Display for JobPanic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "job panicked: {}", self.message)
    }
}

impl std::error::Error for JobPanic {}

/// The number of worker threads the executor uses by default: the
/// machine's available parallelism, or 1 when that cannot be determined.
pub fn available_jobs() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// A configured batch executor.
///
/// Cheap to build; carries only the thread count and chunk size. See the
/// [module docs](self) for the execution model.
#[derive(Debug, Clone)]
pub struct BatchRunner {
    jobs: usize,
    chunk: usize,
}

impl Default for BatchRunner {
    fn default() -> BatchRunner {
        BatchRunner::new()
    }
}

impl BatchRunner {
    /// An executor using [`available_jobs`] threads and automatic chunking.
    pub fn new() -> BatchRunner {
        BatchRunner {
            jobs: available_jobs(),
            chunk: 0,
        }
    }

    /// Sets the worker-thread count. `0` restores the default
    /// ([`available_jobs`]).
    pub fn with_jobs(mut self, jobs: usize) -> BatchRunner {
        self.jobs = if jobs == 0 { available_jobs() } else { jobs };
        self
    }

    /// Sets the chunk size workers claim per queue pop. `0` (the default)
    /// picks one automatically: small enough that every worker gets several
    /// turns, large enough to keep queue traffic negligible.
    pub fn with_chunk(mut self, chunk: usize) -> BatchRunner {
        self.chunk = chunk;
        self
    }

    /// The worker-thread count a batch of `len` jobs would actually use
    /// (never more threads than jobs).
    pub fn effective_jobs(&self, len: usize) -> usize {
        self.jobs.max(1).min(len.max(1))
    }

    fn effective_chunk(&self, len: usize, jobs: usize) -> usize {
        if self.chunk > 0 {
            return self.chunk;
        }
        // Aim for ~4 turns per worker so stragglers rebalance, capped so
        // progress callbacks stay responsive on huge batches.
        (len / (jobs * 4)).clamp(1, 64)
    }

    /// Applies `f` to every item, in parallel, returning results in input
    /// order regardless of thread count.
    ///
    /// # Panics
    ///
    /// Re-raises the lowest-input-index job panic after the whole batch has
    /// run (see [`BatchRunner::map_with_progress`]).
    pub fn map<T, R>(&self, items: &[T], f: impl Fn(&T) -> R + Sync) -> Vec<R>
    where
        T: Sync,
        R: Send,
    {
        self.map_with_progress(items, f, |_, _| {})
    }

    /// [`BatchRunner::map`], invoking `progress(done, total)` after each
    /// completed chunk. `progress` is called from worker threads; completion
    /// counts are monotone per call site but calls may interleave.
    ///
    /// # Panics
    ///
    /// After the whole batch has run, re-raises the panic of the
    /// lowest-input-index panicking job — deterministic regardless of thread
    /// count. When several jobs panicked, the re-raised payload is a summary
    /// counting all of them (with their input indices), so no failure is
    /// silently dropped.
    pub fn map_with_progress<T, R>(
        &self,
        items: &[T],
        f: impl Fn(&T) -> R + Sync,
        progress: impl Fn(usize, usize) + Sync,
    ) -> Vec<R>
    where
        T: Sync,
        R: Send,
    {
        let results = self.map_caught(items, f, progress);
        let mut out = Vec::with_capacity(results.len());
        let mut panics: Vec<(usize, PanicPayload)> = Vec::new();
        for (i, r) in results.into_iter().enumerate() {
            match r {
                Ok(v) => out.push(v),
                Err(payload) => panics.push((i, payload)),
            }
        }
        if panics.is_empty() {
            return out;
        }
        if panics.len() == 1 {
            // Single failure: re-raise the original payload untouched.
            std::panic::resume_unwind(panics.remove(0).1);
        }
        let indices: Vec<String> = panics.iter().map(|(i, _)| i.to_string()).collect();
        let first = panic_message(&panics[0].1);
        panic!(
            "{} batch jobs panicked (input indices {}); first: {}",
            panics.len(),
            indices.join(", "),
            first
        );
    }

    /// The quarantined sibling of [`BatchRunner::map`]: every panic is
    /// captured as a per-job [`JobPanic`] and nothing is re-raised, so one
    /// hostile job cannot take down the batch (or the process).
    pub fn map_quarantined<T, R>(
        &self,
        items: &[T],
        f: impl Fn(&T) -> R + Sync,
    ) -> Vec<Result<R, JobPanic>>
    where
        T: Sync,
        R: Send,
    {
        self.map_caught(items, f, |_, _| {})
            .into_iter()
            .map(|r| {
                r.map_err(|payload| JobPanic {
                    message: panic_message(&payload),
                })
            })
            .collect()
    }

    /// The shared engine: applies `f` to every item in parallel with each
    /// job under `catch_unwind`, returning per-job outcomes in input order.
    /// A panicking job costs the batch nothing — its worker keeps claiming
    /// chunks and every other result is retained.
    fn map_caught<T, R>(
        &self,
        items: &[T],
        f: impl Fn(&T) -> R + Sync,
        progress: impl Fn(usize, usize) + Sync,
    ) -> Vec<Result<R, PanicPayload>>
    where
        T: Sync,
        R: Send,
    {
        let total = items.len();
        let jobs = self.effective_jobs(total);
        let chunk = self.effective_chunk(total, jobs);
        let guarded = |item: &T| catch_unwind(AssertUnwindSafe(|| f(item)));
        if jobs <= 1 || total <= 1 {
            // Serial fast path — same chunk-grained progress reporting.
            let mut out = Vec::with_capacity(total);
            for (i, item) in items.iter().enumerate() {
                out.push(guarded(item));
                if (i + 1) % chunk == 0 || i + 1 == total {
                    progress(i + 1, total);
                }
            }
            return out;
        }
        let next = AtomicUsize::new(0);
        let done = AtomicUsize::new(0);
        let (guarded, progress, next, done) = (&guarded, &progress, &next, &done);
        let mut buckets: Vec<Vec<(usize, Result<R, PanicPayload>)>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..jobs)
                .map(|w| {
                    std::thread::Builder::new()
                        .name(format!("batch-{w}"))
                        .spawn_scoped(s, move || {
                            let mut local = Vec::new();
                            loop {
                                let start = next.fetch_add(chunk, Ordering::Relaxed);
                                if start >= total {
                                    break;
                                }
                                let end = (start + chunk).min(total);
                                for (i, item) in items[start..end].iter().enumerate() {
                                    local.push((start + i, guarded(item)));
                                }
                                let finished =
                                    done.fetch_add(end - start, Ordering::Relaxed) + (end - start);
                                progress(finished, total);
                            }
                            local
                        })
                        .expect("spawn batch worker")
                })
                .collect();
            // Workers cannot unwind (jobs are caught), so plain joins.
            handles
                .into_iter()
                .map(|h| h.join().expect("batch worker survives"))
                .collect()
        });
        // Merge worker-local results back into input order.
        let mut slots: Vec<Option<Result<R, PanicPayload>>> =
            std::iter::repeat_with(|| None).take(total).collect();
        for bucket in &mut buckets {
            for (i, r) in bucket.drain(..) {
                slots[i] = Some(r);
            }
        }
        slots
            .into_iter()
            .map(|r| r.expect("executor produced a result for every job"))
            .collect()
    }

    /// Runs the batch with per-job timing, aggregating into a
    /// [`BatchReport`].
    ///
    /// # Panics
    ///
    /// Re-raises the lowest-input-index job panic after the whole batch has
    /// run (see [`BatchRunner::map_with_progress`]).
    pub fn run<T, R>(&self, items: &[T], f: impl Fn(&T) -> R + Sync) -> BatchReport<R>
    where
        T: Sync,
        R: Send,
    {
        self.run_with_progress(items, f, |_, _| {})
    }

    /// The quarantined sibling of [`BatchRunner::run`]: per-job timing and
    /// batch accounting, with every job panic captured as a [`JobPanic`]
    /// failure entry instead of unwinding — the mode the fault-tolerant job
    /// layer ([`crate::jobs`]) builds on.
    pub fn run_quarantined<T, R>(
        &self,
        items: &[T],
        f: impl Fn(&T) -> R + Sync,
    ) -> BatchReport<Result<R, JobPanic>>
    where
        T: Sync,
        R: Send,
    {
        let start = Instant::now();
        let timed = self.map_with_progress(
            items,
            |item| {
                let t = Instant::now();
                let result =
                    catch_unwind(AssertUnwindSafe(|| f(item))).map_err(|payload| JobPanic {
                        message: panic_message(&payload),
                    });
                (t.elapsed(), result)
            },
            |_, _| {},
        );
        BatchReport {
            results: timed
                .into_iter()
                .map(|(duration, result)| JobResult { duration, result })
                .collect(),
            wall_time: start.elapsed(),
            jobs: self.effective_jobs(items.len()),
        }
    }

    /// [`BatchRunner::run`] with a chunk-grained progress callback (see
    /// [`BatchRunner::map_with_progress`]).
    ///
    /// # Panics
    ///
    /// Re-raises the lowest-input-index job panic after the whole batch has
    /// run (see [`BatchRunner::map_with_progress`]).
    pub fn run_with_progress<T, R>(
        &self,
        items: &[T],
        f: impl Fn(&T) -> R + Sync,
        progress: impl Fn(usize, usize) + Sync,
    ) -> BatchReport<R>
    where
        T: Sync,
        R: Send,
    {
        let start = Instant::now();
        let timed = self.map_with_progress(
            items,
            |item| {
                let t = Instant::now();
                let result = f(item);
                (t.elapsed(), result)
            },
            progress,
        );
        BatchReport {
            results: timed
                .into_iter()
                .map(|(duration, result)| JobResult { duration, result })
                .collect(),
            wall_time: start.elapsed(),
            jobs: self.effective_jobs(items.len()),
        }
    }
}

/// Convenience wrapper: [`BatchRunner::map`] with the default executor.
pub fn par_map<T, R>(items: &[T], f: impl Fn(&T) -> R + Sync) -> Vec<R>
where
    T: Sync,
    R: Send,
{
    BatchRunner::new().map(items, f)
}

/// One job's outcome inside a [`BatchReport`]. Its position in
/// [`BatchReport::results`] is the job's position in the input slice.
#[derive(Debug, Clone)]
pub struct JobResult<R> {
    /// Wall time this job took on its worker.
    pub duration: Duration,
    /// What the job returned.
    pub result: R,
}

/// Aggregate outcome of one [`BatchRunner::run`] batch: per-job results in
/// input order plus batch-level accounting.
#[derive(Debug, Clone)]
pub struct BatchReport<R> {
    /// Per-job outcomes, in input order.
    pub results: Vec<JobResult<R>>,
    /// Wall time of the whole batch (queue open to last join).
    pub wall_time: Duration,
    /// Worker threads the batch used.
    pub jobs: usize,
}

impl<R> BatchReport<R> {
    /// Number of jobs in the batch.
    pub fn len(&self) -> usize {
        self.results.len()
    }

    /// Whether the batch was empty.
    pub fn is_empty(&self) -> bool {
        self.results.is_empty()
    }

    /// Sum of per-job wall times — the serial cost the batch amortized
    /// across its workers.
    pub fn total_job_time(&self) -> Duration {
        self.results.iter().map(|j| j.duration).sum()
    }

    /// Drops the accounting, keeping the job results in input order.
    pub fn into_results(self) -> Vec<R> {
        self.results.into_iter().map(|j| j.result).collect()
    }
}

impl<R, E> BatchReport<Result<R, E>> {
    /// The failed jobs as `(input index, error)`, in input order.
    pub fn failures(&self) -> impl Iterator<Item = (usize, &E)> {
        self.results
            .iter()
            .enumerate()
            .filter_map(|(i, j)| j.result.as_ref().err().map(|e| (i, e)))
    }

    /// Number of failed jobs.
    pub fn failed(&self) -> usize {
        self.failures().count()
    }

    /// Number of successful jobs.
    pub fn passed(&self) -> usize {
        self.len() - self.failed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::Mutex;

    #[test]
    fn map_preserves_input_order() {
        let items: Vec<usize> = (0..257).collect();
        let expected: Vec<usize> = items.iter().map(|n| n * 2).collect();
        for jobs in [1, 2, 7, 32] {
            for chunk in [0, 1, 3] {
                let got = BatchRunner::new()
                    .with_jobs(jobs)
                    .with_chunk(chunk)
                    .map(&items, |n| n * 2);
                assert_eq!(got, expected, "jobs={jobs} chunk={chunk}");
            }
        }
    }

    #[test]
    fn empty_batch_is_fine() {
        let got: Vec<usize> = BatchRunner::new().map(&[], |n: &usize| *n);
        assert!(got.is_empty());
        let report = BatchRunner::new().run(&[], |n: &usize| *n);
        assert!(report.is_empty());
        assert_eq!(report.len(), 0);
    }

    #[test]
    fn more_jobs_than_items_is_fine() {
        let got = BatchRunner::new().with_jobs(64).map(&[1, 2, 3], |n| n + 1);
        assert_eq!(got, vec![2, 3, 4]);
    }

    #[test]
    fn zero_jobs_means_auto() {
        assert_eq!(
            BatchRunner::new().with_jobs(0).effective_jobs(1024),
            available_jobs()
        );
    }

    #[test]
    fn job_panic_propagates_after_join() {
        let items: Vec<usize> = (0..64).collect();
        let err = catch_unwind(AssertUnwindSafe(|| {
            BatchRunner::new().with_jobs(4).map(&items, |&n| {
                assert!(n != 13, "unlucky job");
                n
            });
        }))
        .expect_err("the panic must reach the caller");
        let msg = err
            .downcast_ref::<&str>()
            .map(|s| s.to_string())
            .or_else(|| err.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        assert!(msg.contains("unlucky job"), "{msg}");
    }

    #[test]
    fn multiple_panics_are_all_accounted() {
        let items: Vec<usize> = (0..64).collect();
        for jobs in [1, 4] {
            let err = catch_unwind(AssertUnwindSafe(|| {
                BatchRunner::new().with_jobs(jobs).map(&items, |&n| {
                    assert!(n % 10 != 3, "bad job {n}");
                    n
                });
            }))
            .expect_err("the panic must reach the caller");
            let msg = err
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| err.downcast_ref::<String>().cloned())
                .unwrap_or_default();
            // Jobs 3, 13, 23, 33, 43, 53, 63 all panicked: the summary must
            // count them and list their input indices, deterministically.
            assert!(msg.contains("7 batch jobs panicked"), "jobs={jobs}: {msg}");
            assert!(
                msg.contains("3, 13, 23, 33, 43, 53, 63"),
                "jobs={jobs}: {msg}"
            );
            assert!(msg.contains("bad job 3"), "jobs={jobs}: {msg}");
        }
    }

    #[test]
    fn quarantine_turns_panics_into_per_job_failures() {
        let items: Vec<usize> = (0..40).collect();
        for jobs in [1, 4] {
            let results = BatchRunner::new()
                .with_jobs(jobs)
                .map_quarantined(&items, |&n| {
                    assert!(n != 7 && n != 19, "poisoned {n}");
                    n * 2
                });
            assert_eq!(results.len(), 40);
            for (i, r) in results.iter().enumerate() {
                match r {
                    Ok(v) => assert_eq!(*v, i * 2),
                    Err(p) => {
                        assert!(i == 7 || i == 19, "unexpected panic at {i}");
                        assert!(p.message.contains(&format!("poisoned {i}")));
                    }
                }
            }
        }
    }

    #[test]
    fn run_quarantined_reports_are_deterministic_across_jobs() {
        let items: Vec<usize> = (0..50).collect();
        let outcome = |jobs: usize| -> Vec<Result<usize, JobPanic>> {
            BatchRunner::new()
                .with_jobs(jobs)
                .run_quarantined(&items, |&n| {
                    assert!(n % 9 != 4, "nope {n}");
                    n + 1
                })
                .results
                .into_iter()
                .map(|j| j.result)
                .collect()
        };
        let serial = outcome(1);
        assert_eq!(serial, outcome(4), "parallel must match serial");
        assert_eq!(serial, outcome(13));
        assert_eq!(
            serial.iter().filter(|r| r.is_err()).count(),
            items.iter().filter(|&&n| n % 9 == 4).count()
        );
    }

    #[test]
    fn progress_is_chunkwise_and_reaches_total() {
        let items: Vec<usize> = (0..100).collect();
        for jobs in [1, 8] {
            let seen = Mutex::new(Vec::new());
            BatchRunner::new()
                .with_jobs(jobs)
                .with_chunk(16)
                .map_with_progress(
                    &items,
                    |n| *n,
                    |done, total| seen.lock().unwrap().push((done, total)),
                );
            let seen = seen.into_inner().unwrap();
            assert!(!seen.is_empty());
            assert!(seen.iter().all(|&(_, t)| t == 100));
            assert_eq!(
                seen.iter().map(|&(d, _)| d).max(),
                Some(100),
                "jobs={jobs}: progress must reach the total"
            );
        }
    }

    #[test]
    fn run_reports_timing_and_failures() {
        let items: Vec<usize> = (0..20).collect();
        let report = BatchRunner::new().with_jobs(4).run(&items, |&n| {
            if n % 5 == 0 {
                Err(format!("bad {n}"))
            } else {
                Ok(n)
            }
        });
        assert_eq!(report.len(), 20);
        assert_eq!(report.failed(), 4);
        assert_eq!(report.passed(), 16);
        let failed: Vec<usize> = report.failures().map(|(i, _)| i).collect();
        assert_eq!(failed, vec![0, 5, 10, 15], "failures stay in input order");
        assert!(report.total_job_time() >= Duration::ZERO);
        // Results sit at their input positions.
        let ok: Vec<Option<usize>> = report
            .results
            .iter()
            .map(|j| j.result.as_ref().ok().copied())
            .collect();
        for (i, v) in ok.iter().enumerate() {
            assert_eq!(*v, (i % 5 != 0).then_some(i), "position {i}");
        }
        assert_eq!(report.into_results().len(), 20);
    }

    #[test]
    fn par_map_convenience_matches_serial() {
        let items: Vec<i64> = (0..50).collect();
        assert_eq!(
            par_map(&items, |n| n * n),
            items.iter().map(|n| n * n).collect::<Vec<_>>()
        );
    }
}
