//! Disassembles the decoded instruction streams of the benchmark
//! workloads, fused next to unfused — the tool to reach for when tuning
//! the superinstruction set.
//!
//! ```text
//! cargo run --release --example dump_decoded [workload]
//! cargo run --release --example dump_decoded -- --pairs
//! ```
//!
//! `--pairs` prints a histogram of adjacent decoded-cell pairs across all
//! workloads' *fused* streams — i.e. what the current superinstruction
//! set leaves on the table. Only fusible adjacencies count: the first
//! cell must fall through and the second must not be a jump target
//! (the same filter the fusion pass applies), so every row is a
//! candidate for a new fusion shape, ranked by static frequency.

use lambda_ssa::driver::pipelines::{compile, CompilerConfig};
use lambda_ssa::driver::workloads::{all, Scale};
use lambda_ssa::vm::{decode_program_with, DecodeOptions, DecodedInstr};
use std::collections::HashMap;

/// A short per-variant mnemonic — finer-grained than `OpClass` (which
/// lumps e.g. `GetLabel` and `Project` together) so the histogram names
/// the exact shapes a new superinstruction would match on.
fn mnemonic(i: &DecodedInstr) -> &'static str {
    match i {
        DecodedInstr::ConstInt { .. } => "constint",
        DecodedInstr::LpInt { .. } => "lpint",
        DecodedInstr::LpBig { .. } => "lpbig",
        DecodedInstr::LpStr { .. } => "lpstr",
        DecodedInstr::Construct { .. } => "construct",
        DecodedInstr::GetLabel { .. } => "getlabel",
        DecodedInstr::Project { .. } => "project",
        DecodedInstr::Pap { .. } => "pap",
        DecodedInstr::PapExtend { .. } => "papextend",
        DecodedInstr::Inc { .. } => "inc",
        DecodedInstr::Dec { .. } => "dec",
        DecodedInstr::Call { .. } => "call",
        DecodedInstr::CallBuiltin { .. } => "callbuiltin",
        DecodedInstr::TailCall { .. } => "tailcall",
        DecodedInstr::Ret { .. } => "ret",
        DecodedInstr::Jump { .. } => "jump",
        DecodedInstr::Branch { .. } => "branch",
        DecodedInstr::Switch { .. } => "switch",
        DecodedInstr::Bin { .. } => "bin",
        DecodedInstr::Cmp { .. } => "cmp",
        DecodedInstr::Select { .. } => "select",
        DecodedInstr::Mask { .. } => "mask",
        DecodedInstr::Move { .. } => "move",
        DecodedInstr::GlobalLoad { .. } => "globalload",
        DecodedInstr::GlobalStore { .. } => "globalstore",
        DecodedInstr::Trap => "trap",
        DecodedInstr::CmpBr { .. } => "cmpbr",
        DecodedInstr::ConstCmpBr { .. } => "constcmpbr",
        DecodedInstr::ConstBin { .. } => "constbin",
        DecodedInstr::BinRet { .. } => "binret",
        DecodedInstr::MovRet { .. } => "movret",
        DecodedInstr::ConstRet { .. } => "constret",
        DecodedInstr::ProjInc { .. } => "projinc",
        DecodedInstr::CallBuiltinRet { .. } => "callbuiltinret",
        DecodedInstr::ConstructRet { .. } => "constructret",
        DecodedInstr::SwitchDense { .. } => "switchdense",
        DecodedInstr::Dec2 { .. } => "dec2",
        DecodedInstr::ProjInc2 { .. } => "projinc2",
        DecodedInstr::Dec4 { .. } => "dec4",
        DecodedInstr::ProjInc2Dec { .. } => "projinc2dec",
    }
}

/// Whether control can reach the next cell by falling through.
fn falls_through(i: &DecodedInstr) -> bool {
    !matches!(
        i,
        DecodedInstr::Jump { .. }
            | DecodedInstr::Branch { .. }
            | DecodedInstr::Switch { .. }
            | DecodedInstr::Ret { .. }
            | DecodedInstr::TailCall { .. }
            | DecodedInstr::Trap
            | DecodedInstr::CmpBr { .. }
            | DecodedInstr::ConstCmpBr { .. }
            | DecodedInstr::BinRet { .. }
            | DecodedInstr::MovRet { .. }
            | DecodedInstr::ConstRet { .. }
            | DecodedInstr::CallBuiltinRet { .. }
            | DecodedInstr::ConstructRet { .. }
            | DecodedInstr::SwitchDense { .. }
    )
}

fn pair_histogram() {
    let mut hist: HashMap<(&'static str, &'static str), u64> = HashMap::new();
    for w in all(Scale::Test) {
        let p = compile(&w.src, CompilerConfig::mlir()).expect("workload compiles");
        let fused = decode_program_with(&p, DecodeOptions::fused());
        for f in &fused.fns {
            let targets = f.jump_targets();
            for i in 0..f.code.len().saturating_sub(1) {
                if !falls_through(&f.code[i]) || targets[i + 1] {
                    continue;
                }
                *hist
                    .entry((mnemonic(&f.code[i]), mnemonic(&f.code[i + 1])))
                    .or_default() += 1;
            }
        }
    }
    let mut rows: Vec<_> = hist.into_iter().collect();
    rows.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    println!("Fusible adjacent decoded-cell pairs across all workloads (fused streams,");
    println!("static counts; first falls through, second is not a jump target):");
    println!();
    for ((a, b), n) in rows {
        println!("  {n:6}  {a} + {b}");
    }
}

fn main() {
    let filter = std::env::args().nth(1);
    if filter.as_deref() == Some("--pairs") {
        pair_histogram();
        return;
    }
    for w in all(Scale::Test) {
        if filter.as_deref().is_some_and(|f| f != w.name) {
            continue;
        }
        let p = compile(&w.src, CompilerConfig::mlir()).expect("workload compiles");
        let fused = decode_program_with(&p, DecodeOptions::fused());
        let unfused = decode_program_with(&p, DecodeOptions::no_fuse());
        println!("==== {} ====", w.name);
        println!(
            "fusion: {:?} ({} superinstructions, {} cells saved)",
            fused.fusion,
            fused.fusion.superinstructions(),
            fused.fusion.cells_saved
        );
        for (f, uf) in fused.fns.iter().zip(&unfused.fns) {
            println!(
                "@{} (arity {}, {} regs, {} cells fused vs {} unfused)",
                f.name,
                f.arity,
                f.n_regs,
                f.code.len(),
                uf.code.len()
            );
            for (i, instr) in f.code.iter().enumerate() {
                println!("  {i:4}: {instr:?}");
            }
        }
    }
}
