//! A cached view of one region's block graph.
//!
//! The arena ([`crate::body::Body`]) stores control flow one-directionally:
//! each terminator lists its successor edges. Dataflow analyses need the
//! other three derived artifacts — predecessors, a reverse-postorder, and
//! the reachable set — so [`BlockGraph`] computes all of them once per
//! region and hands out cheap slices.

use crate::body::Body;
use crate::ids::{BlockId, RegionId};
use std::collections::HashMap;

/// Successors, predecessors, and reverse-postorder for one region.
///
/// Only blocks reachable from the region entry appear in [`BlockGraph::rpo`]
/// and the predecessor map; unreachable blocks are listed separately in
/// [`BlockGraph::unreachable`] so clients can choose to skip or flag them.
#[derive(Debug, Clone)]
pub struct BlockGraph {
    entry: BlockId,
    rpo: Vec<BlockId>,
    rpo_index: HashMap<BlockId, usize>,
    succs: HashMap<BlockId, Vec<BlockId>>,
    preds: HashMap<BlockId, Vec<BlockId>>,
    unreachable: Vec<BlockId>,
}

impl BlockGraph {
    /// Builds the graph for `region` of `body`. The region must have at
    /// least one block (the entry).
    pub fn compute(body: &Body, region: RegionId) -> BlockGraph {
        let blocks = &body.regions[region.index()].blocks;
        let entry = blocks[0];
        let succs_of = |b: BlockId| -> Vec<BlockId> {
            match body.terminator(b) {
                Some(t) => body.ops[t.index()]
                    .successors
                    .iter()
                    .map(|s| s.block)
                    .collect(),
                None => Vec::new(),
            }
        };
        // Iterative DFS producing a postorder; reversed below.
        let mut visited = std::collections::HashSet::new();
        let mut postorder = Vec::new();
        let mut stack = vec![(entry, 0usize)];
        visited.insert(entry);
        let mut succs: HashMap<BlockId, Vec<BlockId>> = HashMap::new();
        while let Some(&mut (b, ref mut i)) = stack.last_mut() {
            let ss = succs.entry(b).or_insert_with(|| succs_of(b));
            if *i < ss.len() {
                let s = ss[*i];
                *i += 1;
                if visited.insert(s) {
                    stack.push((s, 0));
                }
            } else {
                postorder.push(b);
                stack.pop();
            }
        }
        let rpo: Vec<BlockId> = postorder.iter().rev().copied().collect();
        let rpo_index: HashMap<BlockId, usize> =
            rpo.iter().enumerate().map(|(i, &b)| (b, i)).collect();
        let mut preds: HashMap<BlockId, Vec<BlockId>> = HashMap::new();
        for &b in &rpo {
            for &s in succs.get(&b).map(|v| v.as_slice()).unwrap_or(&[]) {
                preds.entry(s).or_default().push(b);
            }
        }
        let unreachable: Vec<BlockId> = blocks
            .iter()
            .copied()
            .filter(|b| !rpo_index.contains_key(b))
            .collect();
        BlockGraph {
            entry,
            rpo,
            rpo_index,
            succs,
            preds,
            unreachable,
        }
    }

    /// Convenience: the graph of the function root region.
    pub fn root(body: &Body) -> BlockGraph {
        BlockGraph::compute(body, crate::body::ROOT_REGION)
    }

    /// The region's entry block.
    pub fn entry(&self) -> BlockId {
        self.entry
    }

    /// Reachable blocks in reverse postorder (entry first).
    pub fn rpo(&self) -> &[BlockId] {
        &self.rpo
    }

    /// The position of `b` in the reverse postorder, if reachable.
    pub fn rpo_index(&self, b: BlockId) -> Option<usize> {
        self.rpo_index.get(&b).copied()
    }

    /// Whether `b` is reachable from the entry.
    pub fn is_reachable(&self, b: BlockId) -> bool {
        self.rpo_index.contains_key(&b)
    }

    /// CFG successors of `b` (empty for blocks without a branching
    /// terminator, and for blocks never visited).
    pub fn succs(&self, b: BlockId) -> &[BlockId] {
        self.succs.get(&b).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// CFG predecessors of `b` among reachable blocks.
    pub fn preds(&self, b: BlockId) -> &[BlockId] {
        self.preds.get(&b).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// Blocks of the region that are not reachable from the entry.
    pub fn unreachable(&self) -> &[BlockId] {
        &self.unreachable
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::CmpPred;
    use crate::body::ROOT_REGION;
    use crate::builder::Builder;
    use crate::types::Type;

    #[test]
    fn diamond_graph_shape() {
        let (mut body, params) = Body::new(&[Type::I1]);
        let entry = body.entry_block();
        let a = body.new_block(ROOT_REGION, &[]);
        let b = body.new_block(ROOT_REGION, &[]);
        let join = body.new_block(ROOT_REGION, &[]);
        Builder::at_end(&mut body, entry).cond_br(params[0], (a, vec![]), (b, vec![]));
        Builder::at_end(&mut body, a).br(join, vec![]);
        Builder::at_end(&mut body, b).br(join, vec![]);
        let mut bj = Builder::at_end(&mut body, join);
        let c = bj.const_i(0, Type::I64);
        bj.ret(c);
        let g = BlockGraph::root(&body);
        assert_eq!(g.entry(), entry);
        assert_eq!(g.rpo().len(), 4);
        assert_eq!(g.rpo()[0], entry);
        assert_eq!(g.rpo_index(entry), Some(0));
        // join is last in any RPO of a diamond.
        assert_eq!(g.rpo()[3], join);
        assert_eq!(g.succs(entry), &[a, b]);
        let mut join_preds = g.preds(join).to_vec();
        join_preds.sort_by_key(|b| b.index());
        assert_eq!(join_preds, vec![a, b]);
        assert!(g.unreachable().is_empty());
    }

    #[test]
    fn unreachable_blocks_are_reported() {
        let (mut body, _) = Body::new(&[]);
        let entry = body.entry_block();
        let dead = body.new_block(ROOT_REGION, &[]);
        let mut b = Builder::at_end(&mut body, entry);
        let c = b.const_i(0, Type::I64);
        b.ret(c);
        Builder::at_end(&mut body, dead).unreachable();
        let g = BlockGraph::root(&body);
        assert!(!g.is_reachable(dead));
        assert_eq!(g.unreachable(), &[dead]);
        assert_eq!(g.rpo(), &[entry]);
    }

    #[test]
    fn loop_preds_include_back_edge() {
        let (mut body, params) = Body::new(&[Type::I64]);
        let entry = body.entry_block();
        let header = body.new_block(ROOT_REGION, &[Type::I64]);
        let exit = body.new_block(ROOT_REGION, &[]);
        Builder::at_end(&mut body, entry).br(header, vec![params[0]]);
        let hv = body.blocks[header.index()].args[0];
        let mut bh = Builder::at_end(&mut body, header);
        let z = bh.const_i(0, Type::I64);
        let c = bh.cmpi(CmpPred::Eq, hv, z);
        bh.cond_br(c, (exit, vec![]), (header, vec![hv]));
        let mut be = Builder::at_end(&mut body, exit);
        let r = be.const_i(1, Type::I64);
        be.ret(r);
        let g = BlockGraph::root(&body);
        let mut hp = g.preds(header).to_vec();
        hp.sort_by_key(|b| b.index());
        assert_eq!(hp, vec![entry, header]);
        assert_eq!(g.succs(header), &[exit, header]);
    }
}
