//! Dead code elimination.
//!
//! Erases (a) pure/allocating ops with no remaining uses and (b) blocks
//! unreachable from their region's entry. The paper's "dead region
//! elimination" (§IV-B.1) is literally this pass applied to `rgn.val`: an
//! unreferenced region value is a dead pure op.

use crate::body::Body;
use crate::module::Module;
use crate::pass::{for_each_function, Pass};
use crate::rewrite::erase_trivially_dead;

/// The DCE pass.
#[derive(Debug, Default, Clone, Copy)]
pub struct DcePass;

impl Pass for DcePass {
    fn name(&self) -> &'static str {
        "dce"
    }

    fn run_on(&self, module: &mut Module) -> bool {
        for_each_function(module, |_, body| run_on_body(body))
    }
}

/// Runs DCE on one body. Returns whether anything changed.
pub fn run_on_body(body: &mut Body) -> bool {
    let mut changed = false;
    loop {
        let mut round = erase_trivially_dead(body);
        round |= crate::passes::simplify_cfg::remove_unreachable_blocks(body);
        changed |= round;
        if !round {
            break;
        }
    }
    changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::Builder;
    use crate::opcode::Opcode;
    use crate::types::{Signature, Type};

    #[test]
    fn dead_chain_is_fully_removed() {
        let (mut body, params) = Body::new(&[Type::I64]);
        let entry = body.entry_block();
        let mut b = Builder::at_end(&mut body, entry);
        let c = b.const_i(2, Type::I64);
        let dead1 = b.muli(params[0], c);
        let _dead2 = b.addi(dead1, c); // uses dead1; both must go
        b.ret(params[0]);
        assert!(run_on_body(&mut body));
        assert_eq!(body.live_op_count(), 1);
    }

    #[test]
    fn dead_region_elimination_fig1a() {
        // Paper §IV-B.1: an unreferenced rgn.val is removed by plain DCE.
        let (mut body, _) = Body::new(&[]);
        let entry = body.entry_block();
        let mut b = Builder::at_end(&mut body, entry);
        let (_dead_rgn, dead_inner) = b.rgn_val(&[]);
        {
            let mut ib = Builder::at_end(b.body, dead_inner);
            let v = ib.lp_int(99);
            ib.lp_ret(v);
        }
        let mut b = Builder::at_end(&mut body, entry);
        let (live_rgn, live_inner) = b.rgn_val(&[]);
        {
            let mut ib = Builder::at_end(b.body, live_inner);
            let v = ib.lp_int(1);
            ib.lp_ret(v);
        }
        let mut b = Builder::at_end(&mut body, entry);
        b.rgn_run(live_rgn, vec![]);
        assert!(run_on_body(&mut body));
        let ops = body.walk_ops();
        let opcodes: Vec<Opcode> = ops.iter().map(|o| body.ops[o.index()].opcode).collect();
        assert_eq!(
            opcodes,
            vec![
                Opcode::RgnVal,
                Opcode::LpInt,
                Opcode::LpReturn,
                Opcode::RgnRun
            ]
        );
    }

    #[test]
    fn unreachable_block_removed() {
        let (mut body, _) = Body::new(&[]);
        let entry = body.entry_block();
        let dead = body.new_block(crate::body::ROOT_REGION, &[]);
        let mut b = Builder::at_end(&mut body, entry);
        let c = b.const_i(0, Type::I64);
        b.ret(c);
        let mut bd = Builder::at_end(&mut body, dead);
        let v = bd.const_i(1, Type::I64);
        bd.ret(v);
        assert!(run_on_body(&mut body));
        assert_eq!(body.regions[0].blocks.len(), 1);
        assert_eq!(body.live_op_count(), 2);
    }

    #[test]
    fn effects_preserved() {
        let mut m = Module::new();
        let (mut body, params) = Body::new(&[Type::Obj]);
        let entry = body.entry_block();
        let mut b = Builder::at_end(&mut body, entry);
        b.lp_inc(params[0]);
        b.lp_dec(params[0]);
        b.lp_ret(params[0]);
        m.add_function("f", Signature::obj(1), body);
        assert!(!DcePass.run(&mut m).changed);
        let body = m.func_by_name("f").unwrap().body.as_ref().unwrap();
        assert_eq!(body.live_op_count(), 3);
    }
}
