//! Resource-governed, fault-tolerant job execution.
//!
//! A *job* is one source program (or pre-decoded program) executed under a
//! [`JobSpec`]: a compiler configuration plus the resource envelope
//! ([`lssa_vm::JobLimits`]), an optional injected fault plan
//! ([`lssa_vm::FaultPlan`]), an optional cooperative [`CancelToken`], and a
//! bounded [`RetryPolicy`]. Every failure mode — step/heap/depth budget,
//! deadline, cancellation, a panic anywhere in the engine, a compile error —
//! comes back as a structured [`JobError`], never as a process abort:
//!
//! - the VM run itself executes under `catch_unwind`, so an engine panic
//!   (including a [`lssa_vm::FaultPlan::panic_at`] planted one) becomes
//!   [`JobError::Panicked`] for that job only;
//! - after every abort the VM is [`purged`](lssa_vm::Vm::purge) (drop-all
//!   frame/heap sweep) and the report carries a `leaked` ledger-drift count,
//!   so the fault-injection gauntlet can assert zero leaked objects on every
//!   abort path;
//! - aborted VMs are then *probed*: faults disarmed, a fresh step allowance
//!   granted, and the program re-run on the same VM to prove the frame pool,
//!   inline caches and shared [`DecodedProgram`] survived the abort
//!   ([`JobReport::probe_ok`]).
//!
//! Batches go through [`run_jobs`], which layers [`BatchRunner`]'s
//! quarantine mode on top so even a panic *outside* the VM (compile,
//! render) is a per-job failure. Reports are deterministic: everything
//! except [`JobReport::duration`] is a pure function of (source, spec).

use crate::par::BatchRunner;
use crate::pipelines::{compile, CompilerConfig, PipelineError};
use lssa_vm::{CancelToken, DecodeOptions, DecodedProgram, ExecOptions, Vm, VmError, VmErrorKind};
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::{Duration, Instant};

/// Step allowance granted to the post-abort reuse probe on top of the
/// aborted run's count.
const PROBE_BUDGET: u64 = 65_536;

/// Structured failure taxonomy for a job: every way a governed run can end
/// short of a rendered result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobError {
    /// The step budget ran out ([`lssa_vm::JobLimits::steps`]).
    StepBudget,
    /// The live-heap byte cap tripped ([`lssa_vm::JobLimits::heap_bytes`]).
    HeapBudget,
    /// The frame-depth cap tripped ([`lssa_vm::JobLimits::max_depth`]).
    DepthBudget,
    /// The wall-clock deadline passed ([`lssa_vm::JobLimits::deadline`]).
    Deadline,
    /// The job was cancelled through its [`CancelToken`].
    Cancelled,
    /// The engine panicked while running the job (caught; the process and
    /// sibling jobs survive).
    Panicked {
        /// The panic payload, when it was a string.
        message: String,
    },
    /// The program failed to compile — never retried.
    CompileError {
        /// The pipeline error, prefixed by its stage.
        message: String,
    },
    /// The program itself trapped (division by zero, missing entry, …).
    Trap {
        /// The VM's trap message.
        message: String,
    },
}

impl JobError {
    /// Stable machine-readable tag, mirroring [`VmErrorKind::code`].
    pub fn code(&self) -> &'static str {
        match self {
            JobError::StepBudget => "step-budget",
            JobError::HeapBudget => "heap-budget",
            JobError::DepthBudget => "depth-budget",
            JobError::Deadline => "deadline",
            JobError::Cancelled => "cancelled",
            JobError::Panicked { .. } => "panicked",
            JobError::CompileError { .. } => "compile-error",
            JobError::Trap { .. } => "trap",
        }
    }

    /// Whether the job exhausted a resource budget (as opposed to failing on
    /// its own merits) — the CLI maps these to exit code 3.
    pub fn is_resource(&self) -> bool {
        matches!(
            self,
            JobError::StepBudget
                | JobError::HeapBudget
                | JobError::DepthBudget
                | JobError::Deadline
                | JobError::Cancelled
        )
    }

    /// Whether a retry could plausibly succeed: panics (environmental) and
    /// deadlines (load-dependent). Budget exhaustion, cancellation, compile
    /// errors and traps are deterministic and never retried.
    pub fn is_transient(&self) -> bool {
        matches!(self, JobError::Panicked { .. } | JobError::Deadline)
    }

    /// The error as a single-line JSON object, e.g.
    /// `{"kind":"step-budget"}` or `{"kind":"panicked","message":"…"}`.
    pub fn to_json(&self) -> String {
        match self {
            JobError::Panicked { message }
            | JobError::CompileError { message }
            | JobError::Trap { message } => {
                format!(
                    "{{\"kind\":\"{}\",\"message\":\"{}\"}}",
                    self.code(),
                    json_escape(message)
                )
            }
            _ => format!("{{\"kind\":\"{}\"}}", self.code()),
        }
    }

    /// Classifies a VM error by its structured kind.
    pub fn from_vm(e: &VmError) -> JobError {
        match e.kind {
            VmErrorKind::Trap => JobError::Trap {
                message: e.message.clone(),
            },
            VmErrorKind::StepBudget => JobError::StepBudget,
            VmErrorKind::HeapBudget => JobError::HeapBudget,
            VmErrorKind::DepthBudget => JobError::DepthBudget,
            VmErrorKind::Deadline => JobError::Deadline,
            VmErrorKind::Cancelled => JobError::Cancelled,
        }
    }

    /// Classifies a pipeline error: execution failures by their VM kind,
    /// everything upstream as [`JobError::CompileError`].
    pub fn from_pipeline(e: &PipelineError) -> JobError {
        match &e.vm {
            Some(vm) => JobError::from_vm(vm),
            None => JobError::CompileError {
                message: e.to_string(),
            },
        }
    }
}

impl fmt::Display for JobError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JobError::StepBudget => write!(f, "{}", lssa_rt::STEP_BUDGET_MSG),
            JobError::HeapBudget => write!(f, "heap budget exhausted"),
            JobError::DepthBudget => write!(f, "frame depth budget exhausted"),
            JobError::Deadline => write!(f, "deadline exceeded"),
            JobError::Cancelled => write!(f, "job cancelled"),
            JobError::Panicked { message } => write!(f, "job panicked: {message}"),
            JobError::CompileError { message } => write!(f, "{message}"),
            JobError::Trap { message } => write!(f, "{message}"),
        }
    }
}

impl std::error::Error for JobError {}

/// Minimal JSON string escaping (quotes, backslashes, control characters).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Bounded retry with linear backoff, applied only to
/// [transient](JobError::is_transient) failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts, including the first (minimum 1).
    pub max_attempts: u32,
    /// Sleep between attempts, scaled linearly by the attempt number.
    pub backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 1,
            backoff: Duration::ZERO,
        }
    }
}

impl RetryPolicy {
    /// Up to `max_attempts` total attempts, no backoff.
    pub fn attempts(max_attempts: u32) -> RetryPolicy {
        RetryPolicy {
            max_attempts,
            backoff: Duration::ZERO,
        }
    }
}

/// Everything a governed job run needs besides the program itself.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// Compiler configuration for source jobs.
    pub config: CompilerConfig,
    /// Decode options (fusion, renumbering).
    pub decode: DecodeOptions,
    /// Execution options: dispatch mode, [`lssa_vm::JobLimits`], and an
    /// optional [`lssa_vm::FaultPlan`].
    pub exec: ExecOptions,
    /// Cooperative cancellation token shared with the job's VM.
    pub cancel: Option<CancelToken>,
    /// Retry policy for transient failures.
    pub retry: RetryPolicy,
    /// Legacy absolute step cap (combined with
    /// [`lssa_vm::JobLimits::steps`]; the tighter bound wins).
    pub max_steps: u64,
}

impl Default for JobSpec {
    fn default() -> JobSpec {
        JobSpec {
            config: CompilerConfig::mlir(),
            decode: DecodeOptions::default(),
            exec: ExecOptions::default(),
            cancel: None,
            retry: RetryPolicy::default(),
            max_steps: u64::MAX,
        }
    }
}

/// The outcome of one governed job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobReport {
    /// The rendered result, or the structured failure.
    pub outcome: Result<String, JobError>,
    /// Execution attempts made (0 when compilation failed).
    pub attempts: u32,
    /// VM steps executed by the last attempt.
    pub steps: u64,
    /// Heap-ledger drift detected across the job's cleanup sweeps: a
    /// nonzero value means objects leaked (or were double-freed) on an
    /// abort path. The gauntlet asserts this is zero everywhere.
    pub leaked: u64,
    /// After an abort: whether the purged VM survived a fault-free re-run
    /// of the same program (`None` when the job succeeded — no probe).
    pub probe_ok: Option<bool>,
    /// Wall-clock time for the whole job (all attempts + probes). Excluded
    /// from determinism comparisons.
    pub duration: Duration,
}

impl JobReport {
    /// Deterministic single-line rendering (everything but `duration`),
    /// e.g. for per-seed gauntlet artifacts.
    pub fn to_line(&self) -> String {
        let outcome = match &self.outcome {
            Ok(r) => format!("ok {}", json_escape(r)),
            Err(e) => format!("err {}", e.to_json()),
        };
        let probe = match self.probe_ok {
            None => "-",
            Some(true) => "ok",
            Some(false) => "FAILED",
        };
        format!(
            "{outcome} attempts={} steps={} leaked={} probe={probe}",
            self.attempts, self.steps, self.leaked
        )
    }
}

/// Compiles `src` under the spec's config and executes it as a governed
/// job. Compile errors are reported (never retried, never panic the
/// caller); execution goes through [`execute_decoded`].
pub fn run_job(src: &str, spec: &JobSpec) -> JobReport {
    let start = Instant::now();
    let compiled = match compile(src, spec.config) {
        Ok(p) => p,
        Err(e) => {
            return JobReport {
                outcome: Err(JobError::from_pipeline(&e)),
                attempts: 0,
                steps: 0,
                leaked: 0,
                probe_ok: None,
                duration: start.elapsed(),
            }
        }
    };
    let decoded = compiled.decoded(spec.decode);
    let mut report = execute_decoded(&decoded, "main", spec);
    report.duration = start.elapsed();
    report
}

/// Executes `entry` of a pre-decoded program as a governed job: the
/// attempt/retry loop around one-VM-per-attempt runs. Public so harnesses (the
/// fault-injection gauntlet) can share one decoded program — and its
/// [`lssa_vm::DecodeCache`] — across thousands of jobs.
pub fn execute_decoded(program: &DecodedProgram, entry: &str, spec: &JobSpec) -> JobReport {
    let start = Instant::now();
    let max_attempts = spec.retry.max_attempts.max(1);
    let mut attempts = 0;
    loop {
        attempts += 1;
        let mut report = run_attempt(program, entry, spec);
        report.attempts = attempts;
        report.duration = start.elapsed();
        match &report.outcome {
            Ok(_) => return report,
            Err(e) if attempts < max_attempts && e.is_transient() => {
                if !spec.retry.backoff.is_zero() {
                    std::thread::sleep(spec.retry.backoff * attempts);
                }
            }
            Err(_) => return report,
        }
    }
}

/// One execution attempt on a fresh VM: run under `catch_unwind`, then on
/// any abort purge, leak-check, and probe.
fn run_attempt(program: &DecodedProgram, entry: &str, spec: &JobSpec) -> JobReport {
    let mut vm = Vm::with_options(program, spec.max_steps, spec.exec);
    if let Some(token) = &spec.cancel {
        vm.set_cancel_token(token.clone());
    }
    let run = catch_unwind(AssertUnwindSafe(|| vm.run(entry)));
    let outcome = match run {
        Ok(Ok(result)) => {
            let rendered = vm.heap.render(result);
            vm.heap.dec(result);
            Ok(rendered)
        }
        Ok(Err(e)) => Err(JobError::from_vm(&e)),
        Err(payload) => Err(JobError::Panicked {
            message: crate::par::panic_message(&payload),
        }),
    };
    let steps = vm.stats().instructions;
    let mut leaked = settle(&mut vm);
    let probe_ok = if outcome.is_err() {
        // Reuse probe: disarm faults, grant a fresh allowance, and re-run on
        // the *same* VM — the frame pool, caches and decoded program must
        // all still work after the abort.
        vm.clear_fault();
        vm.clear_cancel_token();
        vm.set_step_budget(steps.saturating_add(PROBE_BUDGET));
        let probe = catch_unwind(AssertUnwindSafe(|| vm.run(entry)));
        let ok = match probe {
            Ok(Ok(result)) => {
                vm.heap.dec(result);
                true
            }
            // A structured error (e.g. the probe budget also running out on
            // a diverging program) still proves the VM is usable.
            Ok(Err(_)) => true,
            Err(_) => false,
        };
        leaked += settle(&mut vm);
        Some(ok)
    } else {
        None
    };
    JobReport {
        outcome,
        attempts: 1,
        steps,
        leaked,
        probe_ok,
        duration: Duration::ZERO,
    }
}

/// Drop-all sweep + ledger audit: purges the VM and returns the detected
/// heap-bookkeeping drift (0 when every allocation was accounted for).
fn settle(vm: &mut Vm<'_>) -> u64 {
    // The stats ledger and an arena scan must agree on the live count
    // *before* the sweep…
    let drift = vm.heap.stats().live.abs_diff(vm.heap.live_objects());
    vm.purge();
    // …and after it, lifetime allocs and frees must balance exactly.
    let stats = vm.heap.stats();
    drift + stats.allocs.abs_diff(stats.frees)
}

/// Runs one job per source across a [`BatchRunner`] in quarantine mode:
/// any panic that escapes a job (even outside the VM) is folded into that
/// job's report as [`JobError::Panicked`], and report order matches input
/// order regardless of worker count.
pub fn run_jobs(sources: &[&str], spec: &JobSpec, runner: &BatchRunner) -> Vec<JobReport> {
    runner
        .map_quarantined(sources, |src| run_job(src, spec))
        .into_iter()
        .map(|r| match r {
            Ok(report) => report,
            Err(p) => JobReport {
                outcome: Err(JobError::Panicked { message: p.message }),
                attempts: 1,
                steps: 0,
                leaked: 0,
                probe_ok: None,
                duration: Duration::ZERO,
            },
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lssa_vm::{FaultPlan, JobLimits};

    // Diverges at runtime; the unreachable `n < 0` exit keeps compilation
    // terminating (the CFG lowering loops on base-case-free recursion).
    const LOOP: &str = "def spin(n) := if n < 0 then 0 else spin(n + 1)\ndef main() := spin(0)";
    const OK: &str = "def main() := 6 * 7";

    fn spec_with(exec: ExecOptions) -> JobSpec {
        JobSpec {
            exec,
            ..JobSpec::default()
        }
    }

    #[test]
    fn success_renders_and_leaks_nothing() {
        let report = run_job(OK, &JobSpec::default());
        assert_eq!(report.outcome, Ok("42".to_string()));
        assert_eq!(report.attempts, 1);
        assert_eq!(report.leaked, 0);
        assert_eq!(report.probe_ok, None);
    }

    #[test]
    fn step_budget_is_structured_and_probe_passes() {
        let exec = ExecOptions::default().with_limits(JobLimits::default().with_steps(10_000));
        let report = run_job(LOOP, &spec_with(exec));
        assert_eq!(report.outcome, Err(JobError::StepBudget));
        assert_eq!(report.steps, 10_000);
        assert_eq!(report.leaked, 0);
        // The probe re-runs the diverging program and exhausts its own
        // budget — a structured error, so the VM still counts as usable.
        assert_eq!(report.probe_ok, Some(true));
    }

    #[test]
    fn planted_panic_is_caught_and_vm_recovers() {
        let exec = ExecOptions::default()
            .with_limits(JobLimits::default().with_steps(1 << 20))
            .with_fault(FaultPlan {
                panic_at: Some(2048),
                ..FaultPlan::default()
            });
        let report = run_job(LOOP, &spec_with(exec));
        match &report.outcome {
            Err(JobError::Panicked { message }) => {
                assert!(message.contains("planted panic"), "got: {message}")
            }
            other => panic!("expected Panicked, got {other:?}"),
        }
        assert_eq!(report.leaked, 0);
        assert_eq!(report.probe_ok, Some(true));
    }

    #[test]
    fn compile_errors_are_never_retried() {
        let spec = JobSpec {
            retry: RetryPolicy::attempts(5),
            ..JobSpec::default()
        };
        let report = run_job("def main( := 1", &spec);
        assert!(matches!(report.outcome, Err(JobError::CompileError { .. })));
        assert_eq!(report.attempts, 0);
    }

    #[test]
    fn transient_failures_retry_up_to_the_cap() {
        // A planted panic fires every attempt, so the retry loop runs to its
        // cap and reports the last failure.
        let exec = ExecOptions::default()
            .with_limits(JobLimits::default().with_steps(1 << 20))
            .with_fault(FaultPlan {
                panic_at: Some(1024),
                ..FaultPlan::default()
            });
        let spec = JobSpec {
            retry: RetryPolicy::attempts(3),
            ..spec_with(exec)
        };
        let report = run_job(LOOP, &spec);
        assert!(matches!(report.outcome, Err(JobError::Panicked { .. })));
        assert_eq!(report.attempts, 3);
    }

    #[test]
    fn cancellation_via_token_is_structured() {
        let token = CancelToken::new();
        token.cancel();
        let spec = JobSpec {
            cancel: Some(token),
            exec: ExecOptions::default().with_limits(JobLimits::default().with_steps(1 << 24)),
            ..JobSpec::default()
        };
        let report = run_job(LOOP, &spec);
        assert_eq!(report.outcome, Err(JobError::Cancelled));
        assert_eq!(report.leaked, 0);
        assert_eq!(report.probe_ok, Some(true));
    }

    #[test]
    fn batch_reports_are_input_ordered_and_quarantined() {
        let exec = ExecOptions::default().with_limits(JobLimits::default().with_steps(50_000));
        let spec = spec_with(exec);
        let sources = [OK, LOOP, "def main( := 1", OK];
        let runner = BatchRunner::new().with_jobs(2);
        let reports = run_jobs(&sources, &spec, &runner);
        assert_eq!(reports.len(), 4);
        assert_eq!(reports[0].outcome, Ok("42".to_string()));
        assert_eq!(reports[1].outcome, Err(JobError::StepBudget));
        assert!(matches!(
            reports[2].outcome,
            Err(JobError::CompileError { .. })
        ));
        assert_eq!(reports[3].outcome, Ok("42".to_string()));
    }

    #[test]
    fn json_shapes_are_stable() {
        assert_eq!(JobError::StepBudget.to_json(), "{\"kind\":\"step-budget\"}");
        assert_eq!(
            JobError::Panicked {
                message: "a \"b\"\n".into()
            }
            .to_json(),
            "{\"kind\":\"panicked\",\"message\":\"a \\\"b\\\"\\n\"}"
        );
    }
}
