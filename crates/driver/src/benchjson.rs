//! Machine-readable benchmark results (`lssa bench --json`).
//!
//! Every workload is compiled once (full MLIR pipeline), then executed in
//! both decode modes — fused superinstructions and `--no-fuse` — several
//! times, recording the median wall time next to the deterministic
//! counters (instructions executed, fused cells and share, heap
//! allocations). The records serialize to `BENCH_<scale>.json`, giving
//! the repository a perf trajectory that survives across PRs: commit the
//! file, diff it later.
//!
//! The JSON is written by hand — the workspace is offline and a perf
//! baseline does not justify a serde dependency.

use crate::pipelines::{compile, CompilerConfig};
use crate::workloads::Workload;
use lssa_vm::DecodeOptions;
use std::fmt::Write as _;
use std::time::Instant;

/// One decode mode's measurement for one workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModeResult {
    /// Median wall time over the runs, in milliseconds.
    pub wall_ms: f64,
    /// Cells executed (deterministic, identical across runs).
    pub instructions: u64,
    /// Superinstruction cells in the decoded stream (static).
    pub fused_cells: u64,
    /// Share of executed cells that were superinstructions (0..=1).
    pub fused_share: f64,
    /// Heap objects allocated over the run.
    pub heap_allocs: u64,
}

/// Fused and unfused measurements for one workload.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRecord {
    /// Workload name.
    pub name: String,
    /// Default decode (superinstruction fusion on).
    pub fused: ModeResult,
    /// `--no-fuse` decode.
    pub unfused: ModeResult,
}

impl BenchRecord {
    /// Wall-clock speedup of fused over unfused dispatch.
    pub fn speedup(&self) -> f64 {
        self.unfused.wall_ms / self.fused.wall_ms
    }
}

fn measure_mode(
    program: &lssa_vm::CompiledProgram,
    opts: DecodeOptions,
    runs: usize,
    max_steps: u64,
) -> ModeResult {
    assert!(runs >= 1);
    let decoded = program.decoded(opts);
    let mut times = Vec::with_capacity(runs);
    let mut stats = lssa_vm::VmStatistics::default();
    for _ in 0..runs {
        let start = Instant::now();
        let out = lssa_vm::run_decoded(&decoded, "main", max_steps).expect("benchmark run");
        times.push(start.elapsed());
        assert_eq!(out.stats.heap.live, 0, "benchmark leaked");
        stats = out.vm_stats;
    }
    times.sort();
    ModeResult {
        wall_ms: times[times.len() / 2].as_secs_f64() * 1e3,
        instructions: stats.instructions,
        fused_cells: stats.fused_cells,
        fused_share: stats.fused_share(),
        heap_allocs: stats.heap.allocs,
    }
}

/// Measures one workload in both decode modes (compiling it once with the
/// full MLIR pipeline).
///
/// # Panics
///
/// Panics if the workload fails to compile or run — benchmarks must be
/// green before being timed.
pub fn measure_workload(w: &Workload, runs: usize, max_steps: u64) -> BenchRecord {
    let program =
        compile(&w.src, CompilerConfig::mlir()).unwrap_or_else(|e| panic!("{}: {e}", w.name));
    BenchRecord {
        name: w.name.to_string(),
        fused: measure_mode(&program, DecodeOptions::fused(), runs, max_steps),
        unfused: measure_mode(&program, DecodeOptions::no_fuse(), runs, max_steps),
    }
}

/// Measures every given workload ([`measure_workload`]).
///
/// # Panics
///
/// See [`measure_workload`].
pub fn run_suite(workloads: &[Workload], runs: usize, max_steps: u64) -> Vec<BenchRecord> {
    workloads
        .iter()
        .map(|w| measure_workload(w, runs, max_steps))
        .collect()
}

/// The conventional output path for a scale: `BENCH_<scale>.json`.
pub fn default_path(scale_label: &str) -> String {
    format!("BENCH_{scale_label}.json")
}

fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

fn mode_json(out: &mut String, label: &str, m: &ModeResult) {
    let _ = write!(
        out,
        "      \"{label}\": {{ \"wall_ms\": {:.3}, \"instructions\": {}, \
         \"fused_cells\": {}, \"fused_share\": {:.4}, \"heap_allocs\": {} }}",
        m.wall_ms, m.instructions, m.fused_cells, m.fused_share, m.heap_allocs
    );
}

/// Serializes the records. `scale_label` and `runs` document how the
/// numbers were produced; wall times are milliseconds, `fused_share` is a
/// 0..=1 fraction of executed cells.
pub fn render_json(scale_label: &str, runs: usize, records: &[BenchRecord]) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"scale\": \"");
    escape_into(&mut out, scale_label);
    let _ = writeln!(out, "\",\n  \"runs\": {runs},\n  \"workloads\": [");
    for (i, r) in records.iter().enumerate() {
        out.push_str("    {\n      \"name\": \"");
        escape_into(&mut out, &r.name);
        out.push_str("\",\n");
        mode_json(&mut out, "fused", &r.fused);
        out.push_str(",\n");
        mode_json(&mut out, "unfused", &r.unfused);
        let _ = write!(out, ",\n      \"speedup\": {:.3}\n    }}", r.speedup());
        out.push_str(if i + 1 < records.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::{by_name, Scale};

    #[test]
    fn measures_and_serializes_a_workload() {
        let w = by_name("filter", Scale::Test).unwrap();
        let r = measure_workload(&w, 2, 500_000_000);
        assert_eq!(r.fused.heap_allocs, r.unfused.heap_allocs, "same program");
        assert!(r.fused.instructions < r.unfused.instructions, "fewer cells");
        assert!(r.fused.fused_cells > 0);
        assert_eq!(r.unfused.fused_cells, 0);
        let json = render_json("test", 2, &[r]);
        assert!(json.contains("\"name\": \"filter\""));
        assert!(json.contains("\"fused\":"));
        assert!(json.contains("\"unfused\":"));
        assert!(json.contains("\"speedup\":"));
        // Brackets balance (cheap well-formedness check without a parser).
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn json_strings_are_escaped() {
        let mut s = String::new();
        escape_into(&mut s, "a\"b\\c\nd");
        assert_eq!(s, "a\\\"b\\\\c\\u000ad");
    }

    #[test]
    fn default_path_is_scale_keyed() {
        assert_eq!(default_path("bench"), "BENCH_bench.json");
    }
}
