//! The execution engine.
//!
//! An iterative interpreter over a pooled frame stack, executing the
//! pre-decoded instruction stream of [`crate::decode`]:
//!
//! - frames live in a **pool with a free list** — the stack holds indices
//!   into the pool, a `Ret` returns its frame (register file included) to
//!   the free list, and the next call reuses it without reallocating;
//! - `TailCall` *reuses the current frame's register file in place* — tail
//!   calls consume no stack and, once warm, **no heap allocation per
//!   iteration**, delivering the `musttail` guarantee of §III-E at zero
//!   amortized cost;
//! - `PapExtend` uses the shared saturation semantics from `lssa-rt`, so
//!   closure behaviour matches the reference interpreter exactly;
//! - every instruction executed is counted **per opcode class**
//!   ([`VmStatistics`], the run-side analogue of `lssa-ir`'s per-pass
//!   `PassStatistics`), giving a deterministic performance metric alongside
//!   wall-clock time.

use crate::bytecode::{CompiledProgram, Reg};
use crate::decode::{DecodeOptions, DecodedInstr, DecodedProgram, OpClass};
use lssa_rt::{pap_extend, pap_new, ApplyOutcome, FuncId, Heap, HeapStats, Int, ObjRef};
use std::fmt;
use std::time::{Duration, Instant};

/// A runtime failure (trap, stack/step limits, type confusion).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VmError {
    /// Description.
    pub message: String,
}

impl fmt::Display for VmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "vm error: {}", self.message)
    }
}

impl std::error::Error for VmError {}

fn err(message: impl Into<String>) -> VmError {
    VmError {
        message: message.into(),
    }
}

/// Execution statistics (the compact summary; see [`VmStatistics`] for the
/// per-opcode-class breakdown).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Instructions executed.
    pub instructions: u64,
    /// Function calls made (including tail calls).
    pub calls: u64,
    /// Maximum frame-stack depth.
    pub max_stack: u64,
    /// Heap statistics at the end of the run.
    pub heap: HeapStats,
}

/// Per-opcode-class execution statistics — the VM-side mirror of the
/// compile-side `PassStatistics`: what ran, how often, what it allocated,
/// and how long the whole run took.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VmStatistics {
    /// Instructions executed, per [`OpClass`] (indexed by discriminant).
    pub executed: [u64; OpClass::COUNT],
    /// Heap objects allocated while executing each class.
    pub class_allocs: [u64; OpClass::COUNT],
    /// Total instructions executed.
    pub instructions: u64,
    /// Function calls made (including tail calls).
    pub calls: u64,
    /// Maximum frame-stack depth (the frame pool's high-water mark).
    pub max_depth: u64,
    /// Frames freshly allocated in the pool (not reused).
    pub frame_allocs: u64,
    /// Frames recycled through the free list.
    pub frame_reuses: u64,
    /// Tail calls that reused the current register file in place.
    pub tail_frame_reuses: u64,
    /// Superinstruction cells in the decoded stream (static count; 0 when
    /// decoded with `--no-fuse`).
    pub fused_cells: u64,
    /// Wall time spent executing.
    pub duration: Duration,
    /// Heap statistics at the end of the run.
    pub heap: HeapStats,
}

impl VmStatistics {
    /// Executed count for one class.
    pub fn executed_of(&self, class: OpClass) -> u64 {
        self.executed[class as usize]
    }

    /// Heap allocations attributed to one class.
    pub fn allocs_of(&self, class: OpClass) -> u64 {
        self.class_allocs[class as usize]
    }

    /// Executed cells that were fused superinstructions.
    pub fn fused_executed(&self) -> u64 {
        OpClass::ALL
            .iter()
            .filter(|c| c.is_fused())
            .map(|&c| self.executed_of(c))
            .sum()
    }

    /// Share of executed cells that were fused superinstructions (0..=1).
    pub fn fused_share(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.fused_executed() as f64 / self.instructions as f64
        }
    }

    /// Folds statistics from an independent run into this record (counts
    /// sum, depths take the maximum) — used to aggregate run-side costs
    /// across a whole workload suite, like `PassStatistics::absorb_parallel`
    /// on the compile side.
    pub fn merge(&mut self, other: &VmStatistics) {
        for i in 0..OpClass::COUNT {
            self.executed[i] += other.executed[i];
            self.class_allocs[i] += other.class_allocs[i];
        }
        self.instructions += other.instructions;
        self.calls += other.calls;
        self.max_depth = self.max_depth.max(other.max_depth);
        self.frame_allocs += other.frame_allocs;
        self.frame_reuses += other.frame_reuses;
        self.tail_frame_reuses += other.tail_frame_reuses;
        self.fused_cells += other.fused_cells;
        self.duration += other.duration;
        self.heap.absorb(&other.heap);
    }

    /// Renders the per-opcode-class table (the payload behind
    /// `lssa run --vm-stats`), in the same fixed-width style as the
    /// compile-side pass tables.
    pub fn render_table(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "vm: {} instructions, {} calls, max depth {}, {:.3}ms",
            self.instructions,
            self.calls,
            self.max_depth,
            self.duration.as_secs_f64() * 1e3,
        );
        let _ = writeln!(
            out,
            "  {:<19} {:>14} {:>12} {:>7}",
            "opcode class", "executed", "heap-allocs", "share"
        );
        for class in OpClass::ALL {
            let executed = self.executed_of(class);
            if executed == 0 {
                continue;
            }
            let share = if self.instructions == 0 {
                0.0
            } else {
                executed as f64 * 100.0 / self.instructions as f64
            };
            let _ = writeln!(
                out,
                "  {:<19} {:>14} {:>12} {:>6.1}%",
                class.name(),
                executed,
                self.allocs_of(class),
                share,
            );
        }
        let _ = writeln!(
            out,
            "  frames: {} allocated, {} reused via free list, {} tail-call in-place reuses",
            self.frame_allocs, self.frame_reuses, self.tail_frame_reuses,
        );
        let _ = writeln!(
            out,
            "  fused: {} superinstruction cells decoded, {:.1}% of executed cells were fused",
            self.fused_cells,
            self.fused_share() * 100.0,
        );
        let _ = writeln!(
            out,
            "  heap: {} allocs ({} ctor, {} closure, {} array, {} str, {} bigint), {} frees, peak {} live",
            self.heap.allocs,
            self.heap.ctor_allocs,
            self.heap.closure_allocs,
            self.heap.array_allocs,
            self.heap.str_allocs,
            self.heap.bigint_allocs,
            self.heap.frees,
            self.heap.peak_live,
        );
        out
    }
}

/// Result of running a program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunOutcome {
    /// Stable rendering of the produced value.
    pub rendered: String,
    /// Compact statistics.
    pub stats: ExecStats,
    /// Per-opcode-class statistics.
    pub vm_stats: VmStatistics,
}

/// One pooled frame. The register file and the over-application buffer are
/// retained across reuses, so a recycled frame costs no allocation.
#[derive(Debug, Default)]
struct Frame {
    func: u32,
    pc: u32,
    /// Register in the *caller's* frame receiving the return value.
    ret_dst: Reg,
    regs: Vec<u64>,
    /// Arguments still to be applied to the returned closure
    /// (over-saturated `papextend`).
    after_ret: Vec<ObjRef>,
}

/// The virtual machine: executes a [`DecodedProgram`] over a pooled frame
/// stack.
#[derive(Debug)]
pub struct Vm<'p> {
    program: &'p DecodedProgram,
    /// The runtime heap (public for tests).
    pub heap: Heap,
    globals: Vec<ObjRef>,
    max_steps: u64,
    steps: u64,
    calls: u64,
    max_depth: u64,
    executed: [u64; OpClass::COUNT],
    class_allocs: [u64; OpClass::COUNT],
    frame_allocs: u64,
    frame_reuses: u64,
    tail_frame_reuses: u64,
    exec_time: Duration,
    /// Frame pool; `stack` holds indices into it, `free` the recyclable ones.
    pool: Vec<Frame>,
    free: Vec<u32>,
    stack: Vec<u32>,
    /// Argument staging buffer, reused across every call and tail call.
    scratch: Vec<u64>,
    /// Object-argument staging buffer for builtin calls, reused likewise.
    scratch_objs: Vec<ObjRef>,
}

impl<'p> Vm<'p> {
    /// Creates a VM for a decoded `program` with a step budget.
    pub fn new(program: &'p DecodedProgram, max_steps: u64) -> Vm<'p> {
        Vm {
            program,
            heap: Heap::new(),
            globals: vec![ObjRef::scalar(0); program.globals.len()],
            max_steps,
            steps: 0,
            calls: 0,
            max_depth: 0,
            executed: [0; OpClass::COUNT],
            class_allocs: [0; OpClass::COUNT],
            frame_allocs: 0,
            frame_reuses: 0,
            tail_frame_reuses: 0,
            exec_time: Duration::ZERO,
            pool: Vec::new(),
            free: Vec::new(),
            stack: Vec::new(),
            scratch: Vec::new(),
            scratch_objs: Vec::new(),
        }
    }

    /// Runs `entry` (zero-argument) to completion and returns the result.
    ///
    /// # Errors
    ///
    /// Returns an error on traps, step exhaustion, or a missing entry point.
    pub fn run(&mut self, entry: &str) -> Result<ObjRef, VmError> {
        let idx = self
            .program
            .fn_index(entry)
            .ok_or_else(|| err(format!("no function @{entry}")))?;
        self.call(idx, Vec::new())
    }

    /// Calls function `idx` with owned arguments.
    ///
    /// # Errors
    ///
    /// See [`Vm::run`].
    pub fn call(&mut self, idx: usize, args: Vec<ObjRef>) -> Result<ObjRef, VmError> {
        let start = Instant::now();
        let result = self.run_loop(idx, args);
        self.exec_time += start.elapsed();
        result
    }

    fn run_loop(&mut self, idx: usize, args: Vec<ObjRef>) -> Result<ObjRef, VmError> {
        // Return any residue of a previous errored run to the free list.
        while let Some(fi) = self.stack.pop() {
            self.pool[fi as usize].after_ret.clear();
            self.free.push(fi);
        }
        self.stage_objs(&args);
        let fi = self.alloc_frame(idx, Reg(0))?;
        self.stack.push(fi);
        let prog = self.program;
        loop {
            self.max_depth = self.max_depth.max(self.stack.len() as u64);
            if self.steps >= self.max_steps {
                return Err(err("step budget exhausted (likely non-termination)"));
            }
            self.steps += 1;
            let fi = *self.stack.last().expect("empty stack") as usize;
            let frame = &mut self.pool[fi];
            let f = &prog.fns[frame.func as usize];
            let pc = frame.pc as usize;
            let instr = *f
                .code
                .get(pc)
                .ok_or_else(|| err(format!("pc out of range in @{}", f.name)))?;
            frame.pc = pc as u32 + 1;
            self.executed[instr.class() as usize] += 1;
            match instr {
                DecodedInstr::ConstInt { dst, v } => frame.regs[dst.0 as usize] = v as u64,
                DecodedInstr::LpInt { dst, v } => {
                    frame.regs[dst.0 as usize] = ObjRef::scalar(v).to_bits();
                }
                DecodedInstr::LpBig { dst, idx } => {
                    let a0 = self.heap.alloc_count();
                    let n = prog.big_pool[idx as usize].clone();
                    frame.regs[dst.0 as usize] = self.heap.mk_nat(n).to_bits();
                    self.class_allocs[OpClass::Alloc as usize] += self.heap.alloc_count() - a0;
                }
                DecodedInstr::LpStr { dst, idx } => {
                    let s = prog.str_pool[idx as usize].clone();
                    frame.regs[dst.0 as usize] = self.heap.alloc_str(s).to_bits();
                    self.class_allocs[OpClass::Alloc as usize] += 1;
                }
                DecodedInstr::Construct { dst, tag, args } => {
                    let fields: Vec<ObjRef> = f
                        .arg_regs(args)
                        .iter()
                        .map(|&r| ObjRef::from_bits(frame.regs[r.0 as usize]))
                        .collect();
                    frame.regs[dst.0 as usize] = self.heap.alloc_ctor(tag, fields).to_bits();
                    self.class_allocs[OpClass::Alloc as usize] += 1;
                }
                DecodedInstr::GetLabel { dst, src } => {
                    let o = ObjRef::from_bits(frame.regs[src.0 as usize]);
                    frame.regs[dst.0 as usize] = self.heap.ctor_tag(o) as u64;
                }
                DecodedInstr::Project { dst, src, idx } => {
                    let o = ObjRef::from_bits(frame.regs[src.0 as usize]);
                    frame.regs[dst.0 as usize] = self.heap.ctor_field(o, idx as usize).to_bits();
                }
                DecodedInstr::Pap {
                    dst,
                    func,
                    arity,
                    args_off,
                    args_len,
                } => {
                    let vals: Vec<ObjRef> = f
                        .arg_regs(crate::decode::ArgSlice {
                            off: args_off,
                            len: args_len,
                        })
                        .iter()
                        .map(|&r| ObjRef::from_bits(frame.regs[r.0 as usize]))
                        .collect();
                    let a0 = self.heap.alloc_count();
                    let outcome = pap_new(&mut self.heap, FuncId(func), arity, vals);
                    self.class_allocs[OpClass::Closure as usize] += self.heap.alloc_count() - a0;
                    self.apply(dst, outcome)?;
                }
                DecodedInstr::PapExtend { dst, closure, args } => {
                    let c = ObjRef::from_bits(frame.regs[closure.0 as usize]);
                    if !matches!(self.heap.data(c), lssa_rt::ObjData::Closure { .. }) {
                        return Err(err("papextend of a non-closure value"));
                    }
                    let vals: Vec<ObjRef> = f
                        .arg_regs(args)
                        .iter()
                        .map(|&r| ObjRef::from_bits(frame.regs[r.0 as usize]))
                        .collect();
                    let a0 = self.heap.alloc_count();
                    let outcome = pap_extend(&mut self.heap, c, vals);
                    self.class_allocs[OpClass::Closure as usize] += self.heap.alloc_count() - a0;
                    self.apply(dst, outcome)?;
                }
                DecodedInstr::Inc { src } => {
                    let o = ObjRef::from_bits(frame.regs[src.0 as usize]);
                    self.heap.inc(o);
                }
                DecodedInstr::Dec { src } => {
                    let o = ObjRef::from_bits(frame.regs[src.0 as usize]);
                    self.heap.dec(o);
                }
                DecodedInstr::Call { dst, func, args } => {
                    let scratch = &mut self.scratch;
                    scratch.clear();
                    scratch.extend(f.arg_regs(args).iter().map(|&r| frame.regs[r.0 as usize]));
                    let nfi = self.alloc_frame(func as usize, dst)?;
                    self.stack.push(nfi);
                }
                DecodedInstr::CallBuiltin { dst, builtin, args } => {
                    // Builtins take a slice, so the arguments stage through
                    // a reused buffer — no allocation per call.
                    let vals = &mut self.scratch_objs;
                    vals.clear();
                    vals.extend(
                        f.arg_regs(args)
                            .iter()
                            .map(|&r| ObjRef::from_bits(frame.regs[r.0 as usize])),
                    );
                    self.calls += 1;
                    let a0 = self.heap.alloc_count();
                    let out = builtin.call(&mut self.heap, &self.scratch_objs);
                    self.class_allocs[OpClass::CallBuiltin as usize] +=
                        self.heap.alloc_count() - a0;
                    self.pool[fi].regs[dst.0 as usize] = out.to_bits();
                }
                DecodedInstr::TailCall { func, args } => {
                    let target = prog
                        .fns
                        .get(func as usize)
                        .ok_or_else(|| err(format!("bad function index {func}")))?;
                    if args.len as usize != target.arity as usize {
                        return Err(err(format!(
                            "@{} called with {} args (arity {})",
                            target.name, args.len, target.arity
                        )));
                    }
                    self.calls += 1;
                    self.tail_frame_reuses += 1;
                    // Copy the outgoing arguments aside, then reuse the
                    // register file in place: constant stack space and,
                    // once the buffers are warm, zero heap allocation.
                    let scratch = &mut self.scratch;
                    scratch.clear();
                    scratch.extend(f.arg_regs(args).iter().map(|&r| frame.regs[r.0 as usize]));
                    frame.regs.clear();
                    frame.regs.extend_from_slice(scratch);
                    frame.regs.resize(target.n_regs as usize, 0);
                    frame.func = func;
                    frame.pc = 0;
                    // `ret_dst` and `after_ret` carry over unchanged.
                }
                DecodedInstr::Ret { src } => {
                    let bits = frame.regs[src.0 as usize];
                    if let Some(value) = self.do_ret(fi, bits)? {
                        return Ok(value);
                    }
                }
                DecodedInstr::Jump { target } => frame.pc = target,
                DecodedInstr::Branch {
                    cond,
                    then_t,
                    else_t,
                } => {
                    frame.pc = if frame.regs[cond.0 as usize] != 0 {
                        then_t
                    } else {
                        else_t
                    };
                }
                DecodedInstr::Switch {
                    idx,
                    cases,
                    default,
                } => {
                    let v = frame.regs[idx.0 as usize] as i64;
                    frame.pc = f.cases[cases.range()]
                        .iter()
                        .find(|&&(c, _)| c == v)
                        .map(|&(_, t)| t)
                        .unwrap_or(default);
                }
                DecodedInstr::Bin { op, dst, a, b } => {
                    let x = frame.regs[a.0 as usize] as i64;
                    let y = frame.regs[b.0 as usize] as i64;
                    let v = op
                        .eval(x, y)
                        .ok_or_else(|| err("integer division by zero"))?;
                    frame.regs[dst.0 as usize] = v as u64;
                }
                DecodedInstr::Cmp { pred, dst, a, b } => {
                    let x = frame.regs[a.0 as usize] as i64;
                    let y = frame.regs[b.0 as usize] as i64;
                    frame.regs[dst.0 as usize] = pred.eval(x, y) as u64;
                }
                DecodedInstr::Select { dst, c, a, b } => {
                    let v = if frame.regs[c.0 as usize] != 0 {
                        frame.regs[a.0 as usize]
                    } else {
                        frame.regs[b.0 as usize]
                    };
                    frame.regs[dst.0 as usize] = v;
                }
                DecodedInstr::Mask { dst, src, mask } => {
                    frame.regs[dst.0 as usize] = frame.regs[src.0 as usize] & mask;
                }
                DecodedInstr::Move { dst, src } => {
                    frame.regs[dst.0 as usize] = frame.regs[src.0 as usize];
                }
                DecodedInstr::GlobalLoad { dst, idx } => {
                    frame.regs[dst.0 as usize] = self.globals[idx as usize].to_bits();
                }
                DecodedInstr::GlobalStore { idx, src } => {
                    self.globals[idx as usize] = ObjRef::from_bits(frame.regs[src.0 as usize]);
                }
                DecodedInstr::Trap => {
                    return Err(err(format!("reached unreachable code in @{}", f.name)))
                }
                DecodedInstr::CmpBr {
                    pred,
                    a,
                    b,
                    then_t,
                    else_t,
                } => {
                    let x = frame.regs[a.0 as usize] as i64;
                    let y = frame.regs[b.0 as usize] as i64;
                    frame.pc = if pred.eval(x, y) { then_t } else { else_t };
                }
                DecodedInstr::ConstCmpBr {
                    pred,
                    a,
                    imm,
                    then_t,
                    else_t,
                } => {
                    let x = frame.regs[a.0 as usize] as i64;
                    frame.pc = if pred.eval(x, i64::from(imm)) {
                        then_t
                    } else {
                        else_t
                    };
                }
                DecodedInstr::ConstBin {
                    op,
                    imm_rhs,
                    dst,
                    src,
                    imm,
                } => {
                    let s = frame.regs[src.0 as usize] as i64;
                    let (x, y) = if imm_rhs { (s, imm) } else { (imm, s) };
                    let v = op
                        .eval(x, y)
                        .ok_or_else(|| err("integer division by zero"))?;
                    frame.regs[dst.0 as usize] = v as u64;
                }
                DecodedInstr::BinRet { op, a, b } => {
                    let x = frame.regs[a.0 as usize] as i64;
                    let y = frame.regs[b.0 as usize] as i64;
                    let v = op
                        .eval(x, y)
                        .ok_or_else(|| err("integer division by zero"))?;
                    if let Some(value) = self.do_ret(fi, v as u64)? {
                        return Ok(value);
                    }
                }
                DecodedInstr::MovRet { src } => {
                    let bits = frame.regs[src.0 as usize];
                    if let Some(value) = self.do_ret(fi, bits)? {
                        return Ok(value);
                    }
                }
                DecodedInstr::ConstRet { v } => {
                    if let Some(value) = self.do_ret(fi, ObjRef::scalar(v).to_bits())? {
                        return Ok(value);
                    }
                }
                DecodedInstr::ProjInc { dst, src, idx } => {
                    let o = ObjRef::from_bits(frame.regs[src.0 as usize]);
                    let field = self.heap.ctor_field(o, idx as usize);
                    self.heap.inc(field);
                    frame.regs[dst.0 as usize] = field.to_bits();
                }
                DecodedInstr::CallBuiltinRet { builtin, args } => {
                    let vals = &mut self.scratch_objs;
                    vals.clear();
                    vals.extend(
                        f.arg_regs(args)
                            .iter()
                            .map(|&r| ObjRef::from_bits(frame.regs[r.0 as usize])),
                    );
                    self.calls += 1;
                    let a0 = self.heap.alloc_count();
                    let out = builtin.call(&mut self.heap, &self.scratch_objs);
                    self.class_allocs[OpClass::FusedCallBuiltinRet as usize] +=
                        self.heap.alloc_count() - a0;
                    if let Some(value) = self.do_ret(fi, out.to_bits())? {
                        return Ok(value);
                    }
                }
                DecodedInstr::ConstructRet { tag, args } => {
                    let fields: Vec<ObjRef> = f
                        .arg_regs(args)
                        .iter()
                        .map(|&r| ObjRef::from_bits(frame.regs[r.0 as usize]))
                        .collect();
                    let obj = self.heap.alloc_ctor(tag, fields);
                    self.class_allocs[OpClass::FusedConstructRet as usize] += 1;
                    if let Some(value) = self.do_ret(fi, obj.to_bits())? {
                        return Ok(value);
                    }
                }
                DecodedInstr::SwitchDense {
                    idx,
                    cases,
                    default,
                } => {
                    let v = frame.regs[idx.0 as usize] as i64;
                    let run = &f.cases[cases.range()];
                    // The run is sorted and contiguous: `v - first_key`
                    // indexes it directly (checked_sub: a key range that
                    // underflows i64 is certainly out of the table).
                    frame.pc = match v.checked_sub(run[0].0) {
                        Some(p) if (p as u64) < run.len() as u64 => run[p as usize].1,
                        _ => default,
                    };
                }
            }
        }
    }

    /// Completes a return of `bits` from the frame at pool index `fi` —
    /// shared by `Ret` and every fused `*Ret` superinstruction. Recycles
    /// the frame, resumes any over-saturated application (allocation there
    /// is attributed to the `ret` class regardless of the fused shape), and
    /// either writes the caller's destination register (`None`) or, when
    /// the stack is empty, yields the whole-program result (`Some`).
    fn do_ret(&mut self, fi: usize, bits: u64) -> Result<Option<ObjRef>, VmError> {
        let value = ObjRef::from_bits(bits);
        let frame = &mut self.pool[fi];
        let ret_dst = frame.ret_dst;
        let after_ret = std::mem::take(&mut frame.after_ret);
        self.stack.pop();
        self.free.push(fi as u32);
        if !after_ret.is_empty() {
            // Continue an over-saturated application.
            if !matches!(self.heap.data(value), lssa_rt::ObjData::Closure { .. }) {
                return Err(err("over-application of a non-closure result"));
            }
            let a0 = self.heap.alloc_count();
            let outcome = pap_extend(&mut self.heap, value, after_ret);
            self.class_allocs[OpClass::Ret as usize] += self.heap.alloc_count() - a0;
            if self.stack.is_empty() {
                // Whole-program result must not be pending.
                return match outcome {
                    ApplyOutcome::Partial(c) => Ok(Some(c)),
                    _ => Err(err("dangling over-application at exit")),
                };
            }
            self.apply(ret_dst, outcome)?;
            return Ok(None);
        }
        match self.stack.last() {
            Some(&ci) => {
                self.pool[ci as usize].regs[ret_dst.0 as usize] = bits;
                Ok(None)
            }
            None => Ok(Some(value)),
        }
    }

    /// Stages owned object arguments into the scratch buffer (the calling
    /// convention of [`Vm::alloc_frame`]).
    fn stage_objs(&mut self, args: &[ObjRef]) {
        self.scratch.clear();
        self.scratch.extend(args.iter().map(|a| a.to_bits()));
    }

    /// Takes a frame from the free list (or grows the pool), wires it to
    /// `func` with the staged arguments, and returns its pool index. The
    /// caller pushes the index onto the stack.
    fn alloc_frame(&mut self, func: usize, ret_dst: Reg) -> Result<u32, VmError> {
        let f = self
            .program
            .fns
            .get(func)
            .ok_or_else(|| err(format!("bad function index {func}")))?;
        if self.scratch.len() != f.arity as usize {
            return Err(err(format!(
                "@{} called with {} args (arity {})",
                f.name,
                self.scratch.len(),
                f.arity
            )));
        }
        self.calls += 1;
        let fi = match self.free.pop() {
            Some(fi) => {
                self.frame_reuses += 1;
                fi
            }
            None => {
                self.frame_allocs += 1;
                self.pool.push(Frame::default());
                u32::try_from(self.pool.len() - 1).expect("frame pool exhausted")
            }
        };
        let frame = &mut self.pool[fi as usize];
        frame.func = func as u32;
        frame.pc = 0;
        frame.ret_dst = ret_dst;
        debug_assert!(frame.after_ret.is_empty(), "recycled frame carries state");
        frame.regs.clear();
        frame.regs.extend_from_slice(&self.scratch);
        frame.regs.resize(f.n_regs as usize, 0);
        Ok(fi)
    }

    /// Handles a pap/papextend outcome: either a value, or a frame to push.
    fn apply(&mut self, dst: Reg, outcome: ApplyOutcome) -> Result<(), VmError> {
        match outcome {
            ApplyOutcome::Partial(c) => {
                let &fi = self.stack.last().expect("apply without frame");
                self.pool[fi as usize].regs[dst.0 as usize] = c.to_bits();
                Ok(())
            }
            ApplyOutcome::Call { func, args } => {
                self.stage_objs(&args);
                let fi = self.alloc_frame(func.0 as usize, dst)?;
                self.stack.push(fi);
                Ok(())
            }
            ApplyOutcome::CallThen { func, args, rest } => {
                self.stage_objs(&args);
                let fi = self.alloc_frame(func.0 as usize, dst)?;
                self.pool[fi as usize].after_ret = rest;
                self.stack.push(fi);
                Ok(())
            }
        }
    }

    /// Compact statistics so far.
    pub fn stats(&self) -> ExecStats {
        ExecStats {
            instructions: self.steps,
            calls: self.calls,
            max_stack: self.max_depth,
            heap: self.heap.stats(),
        }
    }

    /// Full per-opcode-class statistics so far.
    pub fn statistics(&self) -> VmStatistics {
        VmStatistics {
            executed: self.executed,
            class_allocs: self.class_allocs,
            instructions: self.steps,
            calls: self.calls,
            max_depth: self.max_depth,
            frame_allocs: self.frame_allocs,
            frame_reuses: self.frame_reuses,
            tail_frame_reuses: self.tail_frame_reuses,
            fused_cells: self.program.fusion.superinstructions(),
            duration: self.exec_time,
            heap: self.heap.stats(),
        }
    }

    /// Decodes an integer result (convenience for tests).
    pub fn to_int(&self, r: ObjRef) -> Int {
        self.heap.get_int(r)
    }
}

/// Runs `entry` of a pre-decoded program and renders the result.
///
/// # Errors
///
/// See [`Vm::run`].
pub fn run_decoded(
    program: &DecodedProgram,
    entry: &str,
    max_steps: u64,
) -> Result<RunOutcome, VmError> {
    let mut vm = Vm::new(program, max_steps);
    let result = vm.run(entry)?;
    let rendered = vm.heap.render(result);
    vm.heap.dec(result);
    Ok(RunOutcome {
        rendered,
        stats: vm.stats(),
        vm_stats: vm.statistics(),
    })
}

/// Decodes `program` under `opts` (memoized per program, see
/// [`CompiledProgram::decoded`]), then runs `entry` and renders the result.
///
/// # Errors
///
/// See [`Vm::run`].
pub fn run_program_with(
    program: &CompiledProgram,
    entry: &str,
    max_steps: u64,
    opts: DecodeOptions,
) -> Result<RunOutcome, VmError> {
    run_decoded(&program.decoded(opts), entry, max_steps)
}

/// [`run_program_with`] under the default decode options (fusion on).
///
/// # Errors
///
/// See [`Vm::run`].
pub fn run_program(
    program: &CompiledProgram,
    entry: &str,
    max_steps: u64,
) -> Result<RunOutcome, VmError> {
    run_program_with(program, entry, max_steps, DecodeOptions::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bytecode::{BinOp, CmpPred, CompiledFn, CompiledProgram, Instr};
    use crate::decode::decode_program;

    fn single(code: Vec<Instr>, n_regs: u16) -> CompiledProgram {
        CompiledProgram {
            fns: vec![CompiledFn {
                name: "main".into(),
                arity: 0,
                n_regs,
                code,
            }],
            ..CompiledProgram::default()
        }
    }

    /// `loop(n): if n == 0 ret 7 else tail loop(n-1)` — every iteration is
    /// pure arith + one builtin, so the steady state allocates nothing.
    fn tail_loop(n: i64) -> CompiledProgram {
        CompiledProgram {
            fns: vec![
                CompiledFn {
                    name: "main".into(),
                    arity: 0,
                    n_regs: 2,
                    code: vec![
                        Instr::LpInt { dst: Reg(0), v: n },
                        Instr::Call {
                            dst: Reg(1),
                            func: 1,
                            args: vec![Reg(0)],
                        },
                        Instr::Ret { src: Reg(1) },
                    ],
                },
                CompiledFn {
                    name: "loop".into(),
                    arity: 1,
                    n_regs: 4,
                    code: vec![
                        Instr::GetLabel {
                            dst: Reg(1),
                            src: Reg(0),
                        },
                        Instr::ConstInt { dst: Reg(2), v: 0 },
                        Instr::Cmp {
                            pred: CmpPred::Eq,
                            dst: Reg(2),
                            a: Reg(1),
                            b: Reg(2),
                        },
                        Instr::Branch {
                            cond: Reg(2),
                            then_t: 4,
                            else_t: 6,
                        },
                        Instr::LpInt { dst: Reg(3), v: 7 },
                        Instr::Ret { src: Reg(3) },
                        Instr::LpInt { dst: Reg(2), v: 1 },
                        Instr::CallBuiltin {
                            dst: Reg(3),
                            builtin: lssa_rt::Builtin::NatSub,
                            args: vec![Reg(0), Reg(2)],
                        },
                        Instr::TailCall {
                            func: 1,
                            args: vec![Reg(3)],
                        },
                    ],
                },
            ],
            ..CompiledProgram::default()
        }
    }

    #[test]
    fn returns_scalar() {
        let p = single(
            vec![
                Instr::LpInt { dst: Reg(0), v: 42 },
                Instr::Ret { src: Reg(0) },
            ],
            1,
        );
        let out = run_program(&p, "main", 1000).unwrap();
        assert_eq!(out.rendered, "42");
        // LpInt + Ret fuse into a single ConstRet superinstruction.
        assert_eq!(out.stats.instructions, 1);
        assert_eq!(out.vm_stats.executed_of(OpClass::FusedConstRet), 1);
        assert_eq!(out.vm_stats.fused_cells, 1);
        // The unfused stream executes the two original cells.
        let unfused = run_program_with(&p, "main", 1000, DecodeOptions::no_fuse()).unwrap();
        assert_eq!(unfused.rendered, "42");
        assert_eq!(unfused.stats.instructions, 2);
        assert_eq!(unfused.vm_stats.executed_of(OpClass::Const), 1);
        assert_eq!(unfused.vm_stats.executed_of(OpClass::Ret), 1);
        assert_eq!(unfused.vm_stats.fused_cells, 0);
    }

    #[test]
    fn arithmetic_and_branching() {
        // if (2 < 3) then 10 else 20
        let p = single(
            vec![
                Instr::ConstInt { dst: Reg(0), v: 2 },
                Instr::ConstInt { dst: Reg(1), v: 3 },
                Instr::Cmp {
                    pred: CmpPred::Slt,
                    dst: Reg(2),
                    a: Reg(0),
                    b: Reg(1),
                },
                Instr::Branch {
                    cond: Reg(2),
                    then_t: 4,
                    else_t: 6,
                },
                Instr::LpInt { dst: Reg(3), v: 10 },
                Instr::Ret { src: Reg(3) },
                Instr::LpInt { dst: Reg(3), v: 20 },
                Instr::Ret { src: Reg(3) },
            ],
            4,
        );
        assert_eq!(run_program(&p, "main", 1000).unwrap().rendered, "10");
    }

    #[test]
    fn tail_call_uses_constant_stack() {
        let p = tail_loop(1_000_000);
        let d = decode_program(&p);
        let mut vm = Vm::new(&d, 100_000_000);
        let r = vm.run("main").unwrap();
        assert_eq!(vm.heap.render(r), "7");
        assert!(vm.stats().max_stack <= 2, "tail calls must not grow stack");
    }

    #[test]
    fn deep_tail_recursion_keeps_frame_pool_constant() {
        // The frame-pool high-water mark and the number of fresh frame
        // allocations must not depend on recursion depth: only `main` and
        // one `loop` frame ever exist, however deep the tail recursion.
        let shallow = run_program(&tail_loop(1_000), "main", 100_000_000).unwrap();
        let deep = run_program(&tail_loop(1_000_000), "main", 100_000_000).unwrap();
        for out in [&shallow, &deep] {
            assert_eq!(out.vm_stats.max_depth, 2);
            assert_eq!(out.vm_stats.frame_allocs, 2);
        }
        assert_eq!(
            deep.vm_stats.tail_frame_reuses, 1_000_000,
            "every iteration reuses the frame in place"
        );
        // The tail-call fast path performs zero heap allocations per
        // iteration: a run 1000x deeper allocates not one object more.
        assert_eq!(deep.vm_stats.heap.allocs, shallow.vm_stats.heap.allocs);
        assert_eq!(
            deep.vm_stats.allocs_of(OpClass::TailCall),
            0,
            "tail calls never touch the heap"
        );
    }

    #[test]
    fn closure_via_pap_extend() {
        // add(a, b) = a + b ; main: c = pap add [10]; papextend c [32]
        let p = CompiledProgram {
            fns: vec![
                CompiledFn {
                    name: "main".into(),
                    arity: 0,
                    n_regs: 3,
                    code: vec![
                        Instr::LpInt { dst: Reg(0), v: 10 },
                        Instr::Pap {
                            dst: Reg(1),
                            func: 1,
                            arity: 2,
                            args: vec![Reg(0)],
                        },
                        Instr::LpInt { dst: Reg(2), v: 32 },
                        Instr::PapExtend {
                            dst: Reg(0),
                            closure: Reg(1),
                            args: vec![Reg(2)],
                        },
                        Instr::Ret { src: Reg(0) },
                    ],
                },
                CompiledFn {
                    name: "add".into(),
                    arity: 2,
                    n_regs: 3,
                    code: vec![
                        Instr::CallBuiltin {
                            dst: Reg(2),
                            builtin: lssa_rt::Builtin::NatAdd,
                            args: vec![Reg(0), Reg(1)],
                        },
                        Instr::Ret { src: Reg(2) },
                    ],
                },
            ],
            ..CompiledProgram::default()
        };
        let out = run_program(&p, "main", 1000).unwrap();
        assert_eq!(out.rendered, "42");
        assert!(out.vm_stats.allocs_of(OpClass::Closure) >= 1);
    }

    #[test]
    fn step_budget_enforced() {
        let p = single(vec![Instr::Jump { target: 0 }], 1);
        let e = run_program(&p, "main", 100).unwrap_err();
        assert!(e.message.contains("step budget"));
    }

    #[test]
    fn trap_reports_function() {
        let p = single(vec![Instr::Trap], 1);
        let e = run_program(&p, "main", 100).unwrap_err();
        assert!(e.message.contains("unreachable"), "{e}");
        assert!(e.message.contains("main"), "{e}");
    }

    #[test]
    fn division_by_zero_traps() {
        let p = single(
            vec![
                Instr::ConstInt { dst: Reg(0), v: 1 },
                Instr::ConstInt { dst: Reg(1), v: 0 },
                Instr::Bin {
                    op: BinOp::Div,
                    dst: Reg(0),
                    a: Reg(0),
                    b: Reg(1),
                },
                Instr::Ret { src: Reg(0) },
            ],
            2,
        );
        let e = run_program(&p, "main", 100).unwrap_err();
        assert!(e.message.contains("division"), "{e}");
    }

    #[test]
    fn globals_round_trip() {
        let mut p = single(
            vec![
                Instr::LpInt { dst: Reg(0), v: 5 },
                Instr::GlobalStore {
                    idx: 0,
                    src: Reg(0),
                },
                Instr::GlobalLoad {
                    dst: Reg(1),
                    idx: 0,
                },
                Instr::Ret { src: Reg(1) },
            ],
            2,
        );
        p.globals.push("slot".into());
        assert_eq!(run_program(&p, "main", 100).unwrap().rendered, "5");
    }

    #[test]
    fn vm_is_reusable_after_an_error() {
        // An errored run leaves no residue: the same VM can run again and
        // its frame pool is intact.
        let p = CompiledProgram {
            fns: vec![
                CompiledFn {
                    name: "main".into(),
                    arity: 0,
                    n_regs: 1,
                    code: vec![
                        Instr::LpInt { dst: Reg(0), v: 3 },
                        Instr::Ret { src: Reg(0) },
                    ],
                },
                CompiledFn {
                    name: "boom".into(),
                    arity: 0,
                    n_regs: 1,
                    code: vec![Instr::Trap],
                },
            ],
            ..CompiledProgram::default()
        };
        let d = decode_program(&p);
        let mut vm = Vm::new(&d, 1000);
        assert!(vm.run("boom").is_err());
        let r = vm.run("main").unwrap();
        assert_eq!(vm.heap.render(r), "3");
    }

    #[test]
    fn statistics_table_renders() {
        let out = run_program(&tail_loop(10), "main", 100_000).unwrap();
        let table = out.vm_stats.render_table();
        for needle in ["opcode class", "tail-call", "frames:", "heap:"] {
            assert!(table.contains(needle), "missing {needle}\n{table}");
        }
    }
}
