//! Pass management and instrumentation.
//!
//! Mirrors MLIR's pass manager at the granularity we need, extended with the
//! instrumentation the evaluation's ablations depend on. The pieces:
//!
//! - [`Pass`] — a module transformation. Implementations provide
//!   [`Pass::run_on`] (the raw transform, returning whether IR changed);
//!   the provided [`Pass::run`] wraps it with instrumentation and returns a
//!   [`PassStatistics`] record (runs, changed, live-op counts before/after,
//!   wall time).
//! - [`PassManager`] — a *named* sequence of passes and nested pipelines.
//!   Nested pipelines ([`PassManager::add_pipeline`]) carry their own name,
//!   verification setting, and fixpoint bound, so a driver can compose
//!   e.g. `generic-opt = [cleanup*, inline, cleanup*]` declaratively.
//! - [`PassManager::run_to_fixpoint`] — repeats the whole pipeline until a
//!   full sweep reports no change (or the iteration bound is hit); this
//!   replaces hand-rolled `for _ in 0..k { pm.run(..) }` loops and records
//!   whether the pipeline actually converged.
//! - [`PipelineRunReport`] — aggregated per-pass statistics for one
//!   pipeline execution, renderable as a table
//!   ([`PipelineRunReport::render_table`]) — the payload behind the `lssa`
//!   CLI's `--pass-stats` and the `ablation` binary's statistics output.
//! - A dump hook ([`PassManager::dump_after_each`]) invoked with the pass
//!   path and the module after every pass — the engine behind
//!   `--print-ir-after-all`-style debugging.
//!
//! Function-scoped passes use [`for_each_function`], which temporarily
//! detaches a function's body so the pass can read module-level context
//! (callee signatures, globals) while mutating the body.

use crate::analysis::rc_check;
use crate::body::Body;
use crate::module::Module;
use crate::verifier::verify_module;
use std::time::{Duration, Instant};

/// A module-level transformation.
pub trait Pass {
    /// Pass name (diagnostics, pipeline dumps, statistics rows).
    fn name(&self) -> &'static str;

    /// Runs the raw transform; returns whether anything changed.
    fn run_on(&self, module: &mut Module) -> bool;

    /// Runs the pass with instrumentation: live-op counts before and after,
    /// wall time, and the change flag, packaged as [`PassStatistics`].
    fn run(&self, module: &mut Module) -> PassStatistics {
        let mut stats = instrumented_run(|m| self.run_on(m), module, self.name());
        stats.extra = self.stat_counters();
        stats
    }

    /// Pass-specific named counters for the last [`Pass::run_on`] execution
    /// (e.g. rc-opt's elided-pair count), folded into
    /// [`PassStatistics::extra`]. The default is no counters.
    fn stat_counters(&self) -> Vec<(&'static str, u64)> {
        Vec::new()
    }
}

fn instrumented_run(
    run: impl FnOnce(&mut Module) -> bool,
    module: &mut Module,
    path: &str,
) -> PassStatistics {
    let ops_before = module.live_op_count();
    let start = Instant::now();
    let changed = run(module);
    PassStatistics {
        pass: path.to_string(),
        runs: 1,
        changed,
        ops_before,
        ops_after: module.live_op_count(),
        duration: start.elapsed(),
        extra: Vec::new(),
    }
}

/// Instrumentation record for one (or several merged) pass executions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PassStatistics {
    /// Pass path within its pipeline (e.g. `cleanup/dce` for a nested run).
    pub pass: String,
    /// How many executions this record aggregates.
    pub runs: usize,
    /// Whether any execution changed the IR.
    pub changed: bool,
    /// Live (attached) op count before the first execution.
    pub ops_before: usize,
    /// Live op count after the last execution.
    pub ops_after: usize,
    /// Total wall time across executions.
    pub duration: Duration,
    /// Pass-specific named counters (see [`Pass::stat_counters`]), summed
    /// across merged executions.
    pub extra: Vec<(&'static str, u64)>,
}

impl PassStatistics {
    /// Folds a *later execution in the same compilation* into this record:
    /// op counts stay first-before / last-after.
    pub fn absorb(&mut self, later: &PassStatistics) {
        self.runs += later.runs;
        self.changed |= later.changed;
        self.ops_after = later.ops_after;
        self.duration += later.duration;
        self.absorb_extra(&later.extra);
    }

    /// Folds the same pass from an *independent compilation* into this
    /// record: op counts sum, so `ops-in → ops-out` stays a meaningful
    /// aggregate shrinkage measure.
    pub fn absorb_parallel(&mut self, other: &PassStatistics) {
        self.runs += other.runs;
        self.changed |= other.changed;
        self.ops_before += other.ops_before;
        self.ops_after += other.ops_after;
        self.duration += other.duration;
        self.absorb_extra(&other.extra);
    }

    fn absorb_extra(&mut self, other: &[(&'static str, u64)]) {
        for &(key, n) in other {
            match self.extra.iter_mut().find(|(k, _)| *k == key) {
                Some((_, total)) => *total += n,
                None => self.extra.push((key, n)),
            }
        }
    }
}

/// Aggregated statistics for one pipeline execution (or several merged
/// executions across independent compilations — see
/// [`PipelineRunReport::merge`]).
#[derive(Debug, Clone)]
pub struct PipelineRunReport {
    /// Pipeline name.
    pub pipeline: String,
    /// How many independent executions this report aggregates (1 until
    /// [`PipelineRunReport::merge`] is used).
    pub invocations: usize,
    /// Whether the pipeline ran with a fixpoint bound above one sweep
    /// (controls how convergence is rendered).
    pub fixpoint: bool,
    /// Number of full sweeps executed, summed across invocations.
    pub iterations: usize,
    /// Whether every invocation ended with a sweep that reported no change
    /// (fixpoint reached). A single-sweep run that changed the IR is *not*
    /// converged.
    pub converged: bool,
    /// Whether any pass changed the IR.
    pub changed: bool,
    /// Per-pass statistics, in first-execution order, merged across sweeps.
    pub passes: Vec<PassStatistics>,
    /// Total wall time of the run.
    pub duration: Duration,
}

impl PipelineRunReport {
    /// Folds another run of the *same pipeline shape* into this report
    /// (used to aggregate statistics across many compilations).
    pub fn merge(&mut self, other: &PipelineRunReport) {
        self.invocations += other.invocations;
        self.fixpoint |= other.fixpoint;
        self.iterations += other.iterations;
        self.converged &= other.converged;
        self.changed |= other.changed;
        self.duration += other.duration;
        for s in &other.passes {
            match self.passes.iter_mut().find(|e| e.pass == s.pass) {
                Some(existing) => existing.absorb_parallel(s),
                None => self.passes.push(s.clone()),
            }
        }
    }

    /// Renders the report as a fixed-width statistics table.
    pub fn render_table(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let invocations = if self.invocations == 1 {
            String::new()
        } else {
            format!(" across {} invocations", self.invocations)
        };
        let convergence = if !self.fixpoint {
            ""
        } else if self.converged {
            " (converged)"
        } else if self.changed {
            " (iteration budget hit)"
        } else {
            ""
        };
        let noun = match (self.fixpoint, self.iterations) {
            (true, 1) => "iteration",
            (true, _) => "iterations",
            (false, 1) => "sweep",
            (false, _) => "sweeps",
        };
        let _ = writeln!(
            out,
            "pipeline `{}`: {} {}{}{}, {:.3}ms",
            self.pipeline,
            self.iterations,
            noun,
            invocations,
            convergence,
            self.duration.as_secs_f64() * 1e3,
        );
        let _ = writeln!(
            out,
            "  {:<28} {:>5} {:>8} {:>10} {:>10} {:>10}",
            "pass", "runs", "changed", "ops-in", "ops-out", "time"
        );
        for s in &self.passes {
            let time = format!("{:.3}ms", s.duration.as_secs_f64() * 1e3);
            let extra: String = s.extra.iter().map(|(k, n)| format!("  {k}={n}")).collect();
            let _ = writeln!(
                out,
                "  {:<28} {:>5} {:>8} {:>10} {:>10} {:>10}{extra}",
                s.pass,
                s.runs,
                if s.changed { "yes" } else { "no" },
                s.ops_before,
                s.ops_after,
                time,
            );
        }
        out
    }
}

fn merge_stat(stats: &mut Vec<PassStatistics>, s: PassStatistics) {
    match stats.iter_mut().find(|e| e.pass == s.pass) {
        Some(existing) => existing.absorb(&s),
        None => stats.push(s),
    }
}

/// Runs `f` on every function body, with the module visible (minus the body
/// being transformed). Returns whether any function changed.
pub fn for_each_function(
    module: &mut Module,
    mut f: impl FnMut(&Module, &mut Body) -> bool,
) -> bool {
    let mut changed = false;
    for i in 0..module.funcs.len() {
        let Some(mut body) = module.funcs[i].body.take() else {
            continue;
        };
        changed |= f(module, &mut body);
        module.funcs[i].body = Some(body);
    }
    changed
}

/// Hook invoked with `(pass path, module)` after each pass execution.
pub type DumpHook = Box<dyn Fn(&str, &Module)>;

/// Borrowed [`DumpHook`], threaded through nested sweep recursion.
type DumpHookRef<'a> = &'a dyn Fn(&str, &Module);

enum Entry {
    Pass(Box<dyn Pass>),
    Pipeline(PassManager),
}

/// A named sequence of passes and nested pipelines, with optional
/// inter-pass verification, an iteration bound for fixpoint driving, and an
/// IR dump hook.
pub struct PassManager {
    name: String,
    entries: Vec<Entry>,
    verify_each: bool,
    verify_rc: bool,
    max_iters: usize,
    dump_after: Option<DumpHook>,
}

impl Default for PassManager {
    fn default() -> PassManager {
        PassManager::named("pipeline")
    }
}

impl std::fmt::Debug for PassManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PassManager")
            .field("name", &self.name)
            .field("passes", &self.pipeline())
            .field("verify_each", &self.verify_each)
            .field("verify_rc", &self.verify_rc)
            .field("max_iters", &self.max_iters)
            .finish()
    }
}

impl PassManager {
    /// Creates an empty, anonymous single-sweep pipeline.
    pub fn new() -> PassManager {
        PassManager::default()
    }

    /// Creates an empty named pipeline.
    pub fn named(name: impl Into<String>) -> PassManager {
        PassManager {
            name: name.into(),
            entries: Vec::new(),
            verify_each: false,
            verify_rc: false,
            max_iters: 1,
            dump_after: None,
        }
    }

    /// The pipeline's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Enables verification after every pass.
    pub fn verify_each(mut self, yes: bool) -> PassManager {
        self.verify_each = yes;
        self
    }

    /// Enables RC-linearity checking after every pass
    /// ([`rc_check::check_module_strict`]): a pass that unbalances an
    /// `lp.inc`/`lp.dec` protocol panics with the offending function and
    /// block path. The check's wall time is recorded as a `verify-rc-us`
    /// counter on the pass's statistics row. Only meaningful on pipelines
    /// whose input already follows the λrc protocol (rc-opt and later).
    pub fn verify_rc(mut self, yes: bool) -> PassManager {
        self.verify_rc = yes;
        self
    }

    /// Sets the fixpoint iteration bound used by [`PassManager::run`] (and
    /// by the parent pipeline when this manager is nested). The default is
    /// 1: a single sweep.
    pub fn fixpoint(mut self, max_iters: usize) -> PassManager {
        assert!(max_iters >= 1, "a pipeline runs at least once");
        self.max_iters = max_iters;
        self
    }

    /// Appends a pass.
    #[allow(clippy::should_implement_trait)] // builder-style `add`, not ops::Add
    pub fn add(mut self, pass: impl Pass + 'static) -> PassManager {
        self.entries.push(Entry::Pass(Box::new(pass)));
        self
    }

    /// Appends a nested pipeline, which keeps its own name, verification
    /// setting, and fixpoint bound when run by this manager.
    pub fn add_pipeline(mut self, nested: PassManager) -> PassManager {
        self.entries.push(Entry::Pipeline(nested));
        self
    }

    /// Installs a hook called with `(pass path, module)` after every pass —
    /// the engine behind `--print-ir-after-all`.
    pub fn dump_after_each(mut self, hook: impl Fn(&str, &Module) + 'static) -> PassManager {
        self.dump_after = Some(Box::new(hook));
        self
    }

    /// Flattened pass paths in execution order (`nested/pass` for passes
    /// inside nested pipelines).
    pub fn pipeline(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_paths("", &mut out);
        out
    }

    fn collect_paths(&self, prefix: &str, out: &mut Vec<String>) {
        for entry in &self.entries {
            match entry {
                Entry::Pass(p) => out.push(join_path(prefix, p.name())),
                Entry::Pipeline(nested) => {
                    nested.collect_paths(&join_path(prefix, &nested.name), out)
                }
            }
        }
    }

    /// Runs the pipeline: up to its configured [`PassManager::fixpoint`]
    /// bound of sweeps (default one).
    ///
    /// # Panics
    ///
    /// Panics if `verify_each` is enabled and a pass breaks the IR — that is
    /// a compiler bug, and the panic message names the offending pass.
    pub fn run(&self, module: &mut Module) -> PipelineRunReport {
        self.run_to_fixpoint(module, self.max_iters)
    }

    /// Repeats the pipeline until a full sweep reports no change, up to
    /// `max_iters` sweeps. The report records the sweep count and whether
    /// the pipeline converged.
    ///
    /// # Panics
    ///
    /// Panics if `verify_each` is enabled and a pass breaks the IR, and if
    /// `max_iters` is zero.
    pub fn run_to_fixpoint(&self, module: &mut Module, max_iters: usize) -> PipelineRunReport {
        assert!(max_iters >= 1, "a pipeline runs at least once");
        let start = Instant::now();
        let mut passes = Vec::new();
        let mut iterations = 0;
        let mut changed = false;
        let mut converged = false;
        // Op count carried across passes and sweeps: pass N's ops-after is
        // pass N+1's ops-before, so each pass costs one counting walk, not
        // two.
        let mut op_count = module.live_op_count();
        while iterations < max_iters {
            iterations += 1;
            let sweep = self.run_sweep(
                module,
                "",
                self.dump_after.as_deref(),
                &mut passes,
                &mut op_count,
            );
            changed |= sweep;
            if !sweep {
                converged = true;
                break;
            }
        }
        PipelineRunReport {
            pipeline: self.name.clone(),
            invocations: 1,
            fixpoint: max_iters > 1,
            iterations,
            converged,
            changed,
            passes,
            duration: start.elapsed(),
        }
    }

    /// One sweep over the entries. Nested pipelines run to their own
    /// fixpoint bound. `op_count` is the module's current live-op count on
    /// entry and is updated to the count after the sweep. Returns whether
    /// anything changed.
    fn run_sweep(
        &self,
        module: &mut Module,
        prefix: &str,
        hook: Option<DumpHookRef<'_>>,
        stats: &mut Vec<PassStatistics>,
        op_count: &mut usize,
    ) -> bool {
        let mut changed = false;
        for entry in &self.entries {
            match entry {
                Entry::Pass(pass) => {
                    let path = join_path(prefix, pass.name());
                    let ops_before = *op_count;
                    let start = Instant::now();
                    let pass_changed = pass.run_on(module);
                    let duration = start.elapsed();
                    *op_count = module.live_op_count();
                    let mut s = PassStatistics {
                        pass: path.clone(),
                        runs: 1,
                        changed: pass_changed,
                        ops_before,
                        ops_after: *op_count,
                        duration,
                        extra: pass.stat_counters(),
                    };
                    if self.verify_rc {
                        let rc_start = Instant::now();
                        let result = rc_check::check_module_strict(module);
                        let micros = rc_start.elapsed().as_micros() as u64;
                        s.extra.push(("verify-rc-us", micros));
                        if let Err(msg) = result {
                            panic!("rc verification failed after pass `{path}`: {msg}");
                        }
                    }
                    changed |= s.changed;
                    merge_stat(stats, s);
                    if let Some(h) = hook {
                        h(&path, module);
                    }
                    if self.verify_each {
                        verify_or_panic(module, &path);
                    }
                }
                Entry::Pipeline(nested) => {
                    let path = join_path(prefix, &nested.name);
                    // A nested pipeline prefers its own dump hook.
                    let hook = nested.dump_after.as_deref().or(hook);
                    let mut iters = 0;
                    loop {
                        iters += 1;
                        let sweep = nested.run_sweep(module, &path, hook, stats, op_count);
                        changed |= sweep;
                        if !sweep || iters >= nested.max_iters {
                            break;
                        }
                    }
                }
            }
        }
        changed
    }
}

fn join_path(prefix: &str, name: &str) -> String {
    if prefix.is_empty() {
        name.to_string()
    } else {
        format!("{prefix}/{name}")
    }
}

fn verify_or_panic(module: &Module, pass: &str) {
    if let Err(errs) = verify_module(module) {
        let msgs: Vec<String> = errs.iter().map(|e| e.to_string()).collect();
        panic!(
            "verification failed after pass `{pass}`:\n{}",
            msgs.join("\n")
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::Builder;
    use crate::types::{Signature, Type};
    use std::cell::Cell;
    use std::rc::Rc;

    struct CountingPass(Rc<Cell<usize>>);
    impl Pass for CountingPass {
        fn name(&self) -> &'static str {
            "counting"
        }
        fn run_on(&self, _m: &mut Module) -> bool {
            self.0.set(self.0.get() + 1);
            false
        }
    }

    /// Reports "changed" for its first `0` runs... configurable below.
    struct ChangesFor {
        left: Rc<Cell<usize>>,
    }
    impl Pass for ChangesFor {
        fn name(&self) -> &'static str {
            "changes-for"
        }
        fn run_on(&self, _m: &mut Module) -> bool {
            let left = self.left.get();
            if left > 0 {
                self.left.set(left - 1);
                true
            } else {
                false
            }
        }
    }

    fn tiny_module() -> Module {
        let mut m = Module::new();
        let (mut body, _) = Body::new(&[]);
        let entry = body.entry_block();
        let mut b = Builder::at_end(&mut body, entry);
        let c = b.const_i(0, Type::I64);
        b.ret(c);
        m.add_function("f", Signature::new(vec![], Type::I64), body);
        m
    }

    #[test]
    fn passes_run_in_order() {
        let mut m = tiny_module();
        let count = Rc::new(Cell::new(0));
        let pm = PassManager::named("test")
            .verify_each(true)
            .add(CountingPass(count.clone()));
        assert_eq!(pm.pipeline(), vec!["counting"]);
        let report = pm.run(&mut m);
        assert!(!report.changed);
        assert!(report.converged);
        assert_eq!(count.get(), 1);
        assert_eq!(report.passes.len(), 1);
        assert_eq!(report.passes[0].runs, 1);
        assert_eq!(report.passes[0].ops_before, 2);
        assert_eq!(report.passes[0].ops_after, 2);
    }

    #[test]
    fn fixpoint_stops_when_quiet_and_reports_convergence() {
        let mut m = tiny_module();
        let left = Rc::new(Cell::new(2));
        let pm = PassManager::named("fp").add(ChangesFor { left });
        let report = pm.run_to_fixpoint(&mut m, 10);
        // Two changing sweeps plus the quiet one that proves the fixpoint.
        assert_eq!(report.iterations, 3);
        assert!(report.converged);
        assert!(report.changed);
        assert_eq!(report.passes[0].runs, 3);
    }

    #[test]
    fn fixpoint_budget_hit_is_reported() {
        let mut m = tiny_module();
        let left = Rc::new(Cell::new(100));
        let pm = PassManager::named("fp").add(ChangesFor { left });
        let report = pm.run_to_fixpoint(&mut m, 2);
        assert_eq!(report.iterations, 2);
        assert!(!report.converged);
        assert!(report.changed);
    }

    #[test]
    fn nested_pipelines_get_path_names_and_own_fixpoint() {
        let mut m = tiny_module();
        let count = Rc::new(Cell::new(0));
        let left = Rc::new(Cell::new(3));
        let inner = PassManager::named("cleanup")
            .fixpoint(8)
            .add(ChangesFor { left });
        let pm = PassManager::named("outer")
            .add_pipeline(inner)
            .add(CountingPass(count.clone()));
        assert_eq!(pm.pipeline(), vec!["cleanup/changes-for", "counting"]);
        let report = pm.run(&mut m);
        // The nested pipeline fixpointed within the single outer sweep:
        // three changing runs plus one quiet run.
        let nested = report
            .passes
            .iter()
            .find(|s| s.pass == "cleanup/changes-for");
        assert_eq!(nested.unwrap().runs, 4);
        assert_eq!(count.get(), 1);
        assert!(report.changed);
    }

    #[test]
    fn dump_hook_sees_every_pass() {
        let mut m = tiny_module();
        let seen = Rc::new(std::cell::RefCell::new(Vec::new()));
        let seen2 = seen.clone();
        let count = Rc::new(Cell::new(0));
        let pm = PassManager::named("dumped")
            .add(CountingPass(count))
            .dump_after_each(move |path, _m| seen2.borrow_mut().push(path.to_string()));
        pm.run(&mut m);
        assert_eq!(*seen.borrow(), vec!["counting"]);
    }

    #[test]
    fn render_table_mentions_pipeline_and_passes() {
        let mut m = tiny_module();
        let count = Rc::new(Cell::new(0));
        let pm = PassManager::named("tbl").add(CountingPass(count));
        let table = pm.run(&mut m).render_table();
        assert!(table.contains("pipeline `tbl`"), "{table}");
        assert!(table.contains("counting"), "{table}");
        assert!(table.contains("ops-in"), "{table}");
    }

    #[test]
    fn for_each_function_sees_module() {
        let mut m = tiny_module();
        m.declare_extern("rt", Signature::obj(1));
        let mut names = Vec::new();
        for_each_function(&mut m, |module, _body| {
            names.push(module.funcs.len());
            false
        });
        // One function with a body; externs skipped. The module still lists
        // both functions while the body is detached.
        assert_eq!(names, vec![2]);
    }
}
