//! Machine-readable benchmark results (`lssa bench --json` / `--check`).
//!
//! Every workload is compiled once (full MLIR pipeline), then executed
//! under each **knob configuration** — the ablation ladder for the VM's
//! dispatch optimisations — in interleaved rounds (round-robin over the
//! ladder, so a slow system phase taxes every config alike), recording
//! the *minimum* wall time next to the deterministic counters
//! (instructions executed, fused share, heap allocations, inline-cache
//! hits/misses). The minimum, not the median: on a shared machine the
//! best observed run is the least-noise estimate of a deterministic
//! program's true cost. The ladder:
//!
//! | config           | dispatch | inline cache | renumber | fusion | rc-opt |
//! |------------------|----------|--------------|----------|--------|--------|
//! | `base`           | match    | off          | off      | on     | on     |
//! | `threaded`       | threaded | off          | off      | on     | on     |
//! | `threaded_cache` | threaded | on           | off      | on     | on     |
//! | `full`           | threaded | on           | on       | on     | on     |
//! | `full_nofuse`    | threaded | on           | on       | off    | on     |
//! | `full_norc`      | threaded | on           | on       | on     | off    |
//!
//! `base` is the PR 5 interpreter (match dispatch over fused cells), so
//! each record's `speedup` — `base` wall over `full` wall — tracks the
//! aggregate win of this PR's three optimisations, and consecutive rows
//! isolate each knob's contribution. `full_norc` is the only rung that
//! recompiles: it drops the compile-time reference-count optimization
//! pass (everything else reuses one compilation), so `full` vs
//! `full_norc` isolates the rc-opt win — watch the `rc_cells` column
//! (executed plain `inc`/`dec` cells plus fused `dec+dec` cells) drop.
//! The records serialize to
//! `BENCH_<scale>.json`: commit the file, diff it later, and
//! [`check_against`] a committed baseline to catch regressions in CI
//! (instruction counts must match exactly; wall time within a tolerance).
//!
//! The JSON is written *and parsed* by hand — the workspace is offline and
//! a perf baseline does not justify a serde dependency. The parser only
//! accepts the shape [`render_json`] emits.

use crate::pipelines::{compile, Backend, CompilerConfig};
use crate::workloads::Workload;
use lssa_core::PipelineOptions;
use lssa_vm::{DecodeOptions, DispatchMode, ExecOptions, OpClass};
use std::fmt::Write as _;
use std::time::Instant;

/// One knob configuration: a label plus the decode/exec option pair and
/// the compile-side rc-opt switch.
#[derive(Debug, Clone, Copy)]
pub struct KnobConfig {
    /// Stable row label (a JSON key, so `[a-z_]+`).
    pub label: &'static str,
    /// Decode-time options (fusion, register renumbering).
    pub decode: DecodeOptions,
    /// Execution options (dispatch mode, inline caches).
    pub exec: ExecOptions,
    /// Whether the compile pipeline runs the reference-count
    /// optimization pass (`false` only on the `full_norc` rung).
    pub rc_opt: bool,
}

/// The measured ladder, in ablation order (see the module docs).
pub fn knob_configs() -> [KnobConfig; 6] {
    let match_nc = ExecOptions::default()
        .with_dispatch(DispatchMode::Match)
        .with_inline_cache(false);
    let threaded_nc = ExecOptions::default().with_inline_cache(false);
    let threaded_c = ExecOptions::default();
    [
        KnobConfig {
            label: "base",
            decode: DecodeOptions::fused().with_renumber(false),
            exec: match_nc,
            rc_opt: true,
        },
        KnobConfig {
            label: "threaded",
            decode: DecodeOptions::fused().with_renumber(false),
            exec: threaded_nc,
            rc_opt: true,
        },
        KnobConfig {
            label: "threaded_cache",
            decode: DecodeOptions::fused().with_renumber(false),
            exec: threaded_c,
            rc_opt: true,
        },
        KnobConfig {
            label: "full",
            decode: DecodeOptions::fused(),
            exec: threaded_c,
            rc_opt: true,
        },
        KnobConfig {
            label: "full_nofuse",
            decode: DecodeOptions::no_fuse().with_renumber(true),
            exec: threaded_c,
            rc_opt: true,
        },
        KnobConfig {
            label: "full_norc",
            decode: DecodeOptions::fused(),
            exec: threaded_c,
            rc_opt: false,
        },
    ]
}

/// One knob configuration's measurement for one workload.
#[derive(Debug, Clone, PartialEq)]
pub struct KnobResult {
    /// Which [`KnobConfig`] produced this row.
    pub config: &'static str,
    /// Minimum wall time over the interleaved rounds, in milliseconds.
    pub wall_ms: f64,
    /// Cells executed (deterministic, identical across runs).
    pub instructions: u64,
    /// Superinstruction cells in the decoded stream (static).
    pub fused_cells: u64,
    /// Share of executed cells that were superinstructions (0..=1).
    pub fused_share: f64,
    /// Heap objects allocated over the run.
    pub heap_allocs: u64,
    /// Inline-cache hits (0 when caching is off).
    pub cache_hits: u64,
    /// Inline-cache misses (0 when caching is off).
    pub cache_misses: u64,
    /// Executed reference-count cells: plain `inc`/`dec` plus the fused
    /// `dec+dec` / `dec x4` superinstructions (the traffic rc-opt
    /// removes).
    pub rc_cells: u64,
}

/// All knob rows for one workload.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRecord {
    /// Workload name.
    pub name: String,
    /// One row per [`knob_configs`] entry, in ladder order.
    pub rows: Vec<KnobResult>,
}

impl BenchRecord {
    /// The row for a config label, if measured.
    pub fn row(&self, config: &str) -> Option<&KnobResult> {
        self.rows.iter().find(|r| r.config == config)
    }

    /// Wall-clock speedup of the `full` configuration over `base` (the
    /// PR 5 interpreter).
    ///
    /// # Panics
    ///
    /// Panics if either row is missing.
    pub fn speedup(&self) -> f64 {
        self.row("base").expect("base row").wall_ms / self.row("full").expect("full row").wall_ms
    }
}

/// Geometric mean of per-workload [`BenchRecord::speedup`]s — the
/// headline "aggregate over the PR 5 baseline" number.
pub fn geomean_speedup(records: &[BenchRecord]) -> f64 {
    if records.is_empty() {
        return 1.0;
    }
    let log_sum: f64 = records.iter().map(|r| r.speedup().ln()).sum();
    (log_sum / records.len() as f64).exp()
}

/// Measures one workload under every knob configuration. The workload
/// compiles twice — once with the full MLIR pipeline, once with rc-opt
/// disabled for the `full_norc` rung — then the configs run in
/// interleaved rounds — base, threaded, …, then the whole ladder again —
/// and each row keeps its best time, so system-wide slow phases cannot
/// bias one config against another.
///
/// # Panics
///
/// Panics if the workload fails to compile or run — benchmarks must be
/// green before being timed.
pub fn measure_workload(w: &Workload, runs: usize, max_steps: u64) -> BenchRecord {
    assert!(runs >= 1);
    let program =
        compile(&w.src, CompilerConfig::mlir()).unwrap_or_else(|e| panic!("{}: {e}", w.name));
    let norc_config = CompilerConfig {
        backend: Backend::Mlir(PipelineOptions {
            rc_opt: false,
            ..PipelineOptions::full()
        }),
        ..CompilerConfig::mlir()
    };
    let program_norc = compile(&w.src, norc_config).unwrap_or_else(|e| panic!("{}: {e}", w.name));
    let configs = knob_configs();
    let mut best: Vec<Option<KnobResult>> = vec![None; configs.len()];
    for _ in 0..runs {
        for (slot, cfg) in best.iter_mut().zip(&configs) {
            let program = if cfg.rc_opt { &program } else { &program_norc };
            let decoded = program.decoded(cfg.decode);
            let start = Instant::now();
            let out = lssa_vm::run_decoded_with(&decoded, "main", max_steps, cfg.exec)
                .expect("benchmark");
            let wall_ms = start.elapsed().as_secs_f64() * 1e3;
            assert_eq!(out.stats.heap.live, 0, "benchmark leaked");
            let stats = out.vm_stats;
            if slot.as_ref().is_none_or(|r| wall_ms < r.wall_ms) {
                *slot = Some(KnobResult {
                    config: cfg.label,
                    wall_ms,
                    instructions: stats.instructions,
                    fused_cells: stats.fused_cells,
                    fused_share: stats.fused_share(),
                    heap_allocs: stats.heap.allocs,
                    cache_hits: stats.cache_hits,
                    cache_misses: stats.cache_misses,
                    rc_cells: stats.executed_of(OpClass::Rc)
                        + stats.executed_of(OpClass::FusedDec2)
                        + stats.executed_of(OpClass::FusedDec4),
                });
            }
        }
    }
    BenchRecord {
        name: w.name.to_string(),
        rows: best.into_iter().map(|r| r.expect("runs >= 1")).collect(),
    }
}

/// Measures every given workload ([`measure_workload`]).
///
/// # Panics
///
/// See [`measure_workload`].
pub fn run_suite(workloads: &[Workload], runs: usize, max_steps: u64) -> Vec<BenchRecord> {
    workloads
        .iter()
        .map(|w| measure_workload(w, runs, max_steps))
        .collect()
}

/// The conventional output path for a scale: `BENCH_<scale>.json`.
pub fn default_path(scale_label: &str) -> String {
    format!("BENCH_{scale_label}.json")
}

fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

fn row_json(out: &mut String, m: &KnobResult) {
    let _ = write!(
        out,
        "      \"{}\": {{ \"wall_ms\": {:.3}, \"instructions\": {}, \
         \"fused_cells\": {}, \"fused_share\": {:.4}, \"heap_allocs\": {}, \
         \"cache_hits\": {}, \"cache_misses\": {}, \"rc_cells\": {} }}",
        m.config,
        m.wall_ms,
        m.instructions,
        m.fused_cells,
        m.fused_share,
        m.heap_allocs,
        m.cache_hits,
        m.cache_misses,
        m.rc_cells
    );
}

/// Serializes the records. `scale_label` and `runs` document how the
/// numbers were produced; wall times are milliseconds, `fused_share` is a
/// 0..=1 fraction of executed cells, `speedup` is `base` over `full`.
pub fn render_json(scale_label: &str, runs: usize, records: &[BenchRecord]) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"scale\": \"");
    escape_into(&mut out, scale_label);
    let _ = writeln!(out, "\",\n  \"runs\": {runs},");
    out.push_str("  \"configs\": [");
    for (i, cfg) in knob_configs().iter().enumerate() {
        let sep = if i == 0 { "" } else { ", " };
        let _ = write!(out, "{sep}\"{}\"", cfg.label);
    }
    out.push_str("],\n  \"workloads\": [\n");
    for (i, r) in records.iter().enumerate() {
        out.push_str("    {\n      \"name\": \"");
        escape_into(&mut out, &r.name);
        out.push_str("\",\n");
        for m in &r.rows {
            row_json(&mut out, m);
            out.push_str(",\n");
        }
        let _ = write!(out, "      \"speedup\": {:.3}\n    }}", r.speedup());
        out.push_str(if i + 1 < records.len() { ",\n" } else { "\n" });
    }
    let _ = write!(
        out,
        "  ],\n  \"geomean_speedup\": {:.3}\n}}\n",
        geomean_speedup(records)
    );
    out
}

/// One `(workload, config)` row recovered from a committed baseline file.
#[derive(Debug, Clone, PartialEq)]
pub struct BaselineRow {
    /// Workload name.
    pub name: String,
    /// Config label (`base`, `threaded`, …).
    pub config: String,
    /// Recorded median wall time in milliseconds.
    pub wall_ms: f64,
    /// Recorded deterministic instruction count.
    pub instructions: u64,
    /// Recorded executed rc-cell count (`None` in baselines written
    /// before the counter existed).
    pub rc_cells: Option<u64>,
}

fn field_after<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\": ");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest.find([',', ' ', '}']).unwrap_or(rest.len());
    Some(&rest[..end])
}

/// Recovers the `(workload, config, wall, instructions)` rows from a
/// baseline file previously written by [`render_json`]. Line-oriented by
/// design: it accepts exactly the shape this module emits.
///
/// # Errors
///
/// Returns a message naming the first malformed line.
pub fn parse_baseline(json: &str) -> Result<Vec<BaselineRow>, String> {
    let mut rows = Vec::new();
    let mut name: Option<String> = None;
    for line in json.lines() {
        let t = line.trim();
        if let Some(rest) = t.strip_prefix("\"name\": \"") {
            let n = rest
                .strip_suffix("\",")
                .ok_or_else(|| format!("malformed name line: {t}"))?;
            name = Some(n.to_string());
            continue;
        }
        if t.contains("\"wall_ms\":") {
            let config = t
                .strip_prefix('"')
                .and_then(|r| r.split_once('"'))
                .map(|(c, _)| c.to_string())
                .ok_or_else(|| format!("malformed row line: {t}"))?;
            let wall_ms = field_after(t, "wall_ms")
                .and_then(|v| v.parse().ok())
                .ok_or_else(|| format!("bad wall_ms in: {t}"))?;
            let instructions = field_after(t, "instructions")
                .and_then(|v| v.parse().ok())
                .ok_or_else(|| format!("bad instructions in: {t}"))?;
            let rc_cells = field_after(t, "rc_cells").and_then(|v| v.parse().ok());
            rows.push(BaselineRow {
                name: name
                    .clone()
                    .ok_or_else(|| format!("row before name: {t}"))?,
                config,
                wall_ms,
                instructions,
                rc_cells,
            });
        }
    }
    if rows.is_empty() {
        return Err("no benchmark rows found in baseline".to_string());
    }
    Ok(rows)
}

/// The result of checking fresh measurements against a baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckOutcome {
    /// Rows compared (workload × config pairs present in both sets).
    pub compared: usize,
    /// Human-readable regression descriptions; empty means the check
    /// passed.
    pub failures: Vec<String>,
}

/// Compares fresh measurements against a committed baseline: instruction
/// counts must match **exactly** (they are deterministic), wall time may
/// regress by at most `tolerance_pct` percent. A fresh row missing from
/// the baseline is skipped (new workloads are not regressions); a
/// baseline row missing from the fresh set is a failure (a workload or
/// config silently disappeared).
pub fn check_against(
    baseline: &[BaselineRow],
    fresh: &[BenchRecord],
    tolerance_pct: f64,
) -> CheckOutcome {
    let mut failures = Vec::new();
    let mut compared = 0;
    for b in baseline {
        let Some(row) = fresh
            .iter()
            .find(|r| r.name == b.name)
            .and_then(|r| r.row(&b.config))
        else {
            failures.push(format!(
                "{}/{}: row missing from fresh run",
                b.name, b.config
            ));
            continue;
        };
        compared += 1;
        if row.instructions != b.instructions {
            failures.push(format!(
                "{}/{}: instructions changed {} -> {} (deterministic counter; \
                 regenerate the baseline if intentional)",
                b.name, b.config, b.instructions, row.instructions
            ));
        }
        let limit = b.wall_ms * (1.0 + tolerance_pct / 100.0);
        if row.wall_ms > limit {
            failures.push(format!(
                "{}/{}: wall time {:.3}ms exceeds baseline {:.3}ms by more than {}%",
                b.name, b.config, row.wall_ms, b.wall_ms, tolerance_pct
            ));
        }
    }
    CheckOutcome { compared, failures }
}

/// Noise floor for wall-time deltas in [`render_diff`]: changes within
/// ±this percentage are annotated as noise rather than wins/regressions.
pub const DIFF_NOISE_PCT: f64 = 5.0;

/// Formats a signed delta between two counter values: `=` when equal,
/// otherwise `+N`/`-N` with the percentage change.
fn counter_delta(old: u64, new: u64) -> String {
    if old == new {
        return "=".to_string();
    }
    let delta = new as i64 - old as i64;
    let pct = if old == 0 {
        f64::INFINITY
    } else {
        delta as f64 * 100.0 / old as f64
    };
    format!("{delta:+} ({pct:+.1}%)")
}

/// Renders the per-workload, per-config delta table between two baseline
/// files (`lssa bench --diff old.json new.json`). Wall-time deltas
/// within ±[`DIFF_NOISE_PCT`] percent are annotated `~noise` — wall
/// times are the only noisy column; the instruction and rc-cell counters
/// are deterministic, so any delta there is a real compiler/VM change.
/// Rows present on only one side are called out instead of silently
/// dropped.
pub fn render_diff(old: &[BaselineRow], new: &[BaselineRow]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<16} {:<15} {:>9} {:>9} {:>8}  {:>16}  {:>16}  note",
        "workload", "config", "old ms", "new ms", "wall", "instructions", "rc_cells"
    );
    for n in new {
        let Some(o) = old
            .iter()
            .find(|o| o.name == n.name && o.config == n.config)
        else {
            let _ = writeln!(
                out,
                "{:<16} {:<15} {:>9} {:>9.3} {:>8}  {:>16}  {:>16}  added (no old row)",
                n.name, n.config, "-", n.wall_ms, "-", n.instructions, "-"
            );
            continue;
        };
        let wall_pct = if o.wall_ms > 0.0 {
            (n.wall_ms - o.wall_ms) * 100.0 / o.wall_ms
        } else {
            0.0
        };
        let note = if wall_pct.abs() <= DIFF_NOISE_PCT {
            "~noise"
        } else if wall_pct < 0.0 {
            "faster"
        } else {
            "slower"
        };
        let rc = match (o.rc_cells, n.rc_cells) {
            (Some(a), Some(b)) => counter_delta(a, b),
            _ => "-".to_string(),
        };
        let _ = writeln!(
            out,
            "{:<16} {:<15} {:>9.3} {:>9.3} {:>+7.1}%  {:>16}  {:>16}  {}",
            n.name,
            n.config,
            o.wall_ms,
            n.wall_ms,
            wall_pct,
            counter_delta(o.instructions, n.instructions),
            rc,
            note
        );
    }
    for o in old {
        if !new.iter().any(|n| n.name == o.name && n.config == o.config) {
            let _ = writeln!(
                out,
                "{:<16} {:<15} {:>9.3} {:>9} {:>8}  {:>16}  {:>16}  removed (no new row)",
                o.name, o.config, o.wall_ms, "-", "-", o.instructions, "-"
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::{by_name, Scale};

    #[test]
    fn measures_and_serializes_a_workload() {
        let w = by_name("filter", Scale::Test).unwrap();
        let r = measure_workload(&w, 2, 500_000_000);
        let base = r.row("base").unwrap();
        let full = r.row("full").unwrap();
        let nofuse = r.row("full_nofuse").unwrap();
        let norc = r.row("full_norc").unwrap();
        assert_eq!(base.heap_allocs, full.heap_allocs, "same program");
        assert!(full.instructions < nofuse.instructions, "fusion cuts cells");
        assert_eq!(
            base.instructions, full.instructions,
            "dispatch/caches/renumbering must not change the cell count"
        );
        assert!(
            full.rc_cells < norc.rc_cells,
            "rc-opt must cut executed rc cells ({} vs {})",
            full.rc_cells,
            norc.rc_cells
        );
        assert!(
            full.instructions <= norc.instructions,
            "rc-opt only removes cells"
        );
        assert!(full.fused_cells > 0);
        assert_eq!(nofuse.fused_cells, 0);
        assert_eq!(base.cache_hits, 0, "caching off in base");
        assert!(
            full.cache_hits > 0,
            "a call-heavy workload must hit the inline caches"
        );
        let json = render_json("test", 2, std::slice::from_ref(&r));
        assert!(json.contains("\"name\": \"filter\""));
        for cfg in knob_configs() {
            assert!(
                json.contains(&format!("\"{}\":", cfg.label)),
                "{}",
                cfg.label
            );
        }
        assert!(json.contains("\"speedup\":"));
        assert!(json.contains("\"geomean_speedup\":"));
        // Brackets balance (cheap well-formedness check without a parser).
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        // The baseline parser round-trips what the renderer wrote.
        let rows = parse_baseline(&json).unwrap();
        assert_eq!(rows.len(), knob_configs().len());
        assert_eq!(rows[0].name, "filter");
        assert_eq!(rows[0].config, "base");
        assert_eq!(rows[0].instructions, base.instructions);
        assert_eq!(rows[0].rc_cells, Some(base.rc_cells));
        assert!((rows[0].wall_ms - base.wall_ms).abs() < 0.001);
        // And checking fresh-vs-own-baseline passes. The JSON rounds walls
        // to 3 decimals, so the parsed baseline can sit up to 0.0005ms
        // below the in-memory value — several percent of a sub-0.01ms
        // quick wall; the tolerance must cover that slack.
        let outcome = check_against(&rows, std::slice::from_ref(&r), 25.0);
        assert_eq!(outcome.compared, rows.len());
        assert!(outcome.failures.is_empty(), "{:?}", outcome.failures);
    }

    #[test]
    fn check_flags_instruction_and_wall_regressions() {
        let fresh = BenchRecord {
            name: "w".into(),
            rows: vec![KnobResult {
                config: "full",
                wall_ms: 2.0,
                instructions: 100,
                fused_cells: 0,
                fused_share: 0.0,
                heap_allocs: 0,
                cache_hits: 0,
                cache_misses: 0,
                rc_cells: 0,
            }],
        };
        let baseline = vec![
            BaselineRow {
                name: "w".into(),
                config: "full".into(),
                wall_ms: 1.0,
                instructions: 99,
                rc_cells: None,
            },
            BaselineRow {
                name: "gone".into(),
                config: "full".into(),
                wall_ms: 1.0,
                instructions: 1,
                rc_cells: None,
            },
        ];
        let out = check_against(&baseline, std::slice::from_ref(&fresh), 10.0);
        assert_eq!(out.compared, 1);
        assert_eq!(out.failures.len(), 3, "{:?}", out.failures);
        assert!(out.failures.iter().any(|f| f.contains("instructions")));
        assert!(out.failures.iter().any(|f| f.contains("wall time")));
        assert!(out.failures.iter().any(|f| f.contains("missing")));
        // Generous tolerance forgives the wall slip but not the counter.
        let out = check_against(&baseline[..1], std::slice::from_ref(&fresh), 200.0);
        assert_eq!(out.failures.len(), 1);
    }

    #[test]
    fn diff_annotates_noise_and_counters() {
        let row = |name: &str, config: &str, wall, instructions, rc| BaselineRow {
            name: name.into(),
            config: config.into(),
            wall_ms: wall,
            instructions,
            rc_cells: rc,
        };
        let old = vec![
            row("qsort", "full", 10.0, 1000, Some(300)),
            row("qsort", "full_norc", 12.0, 1200, Some(900)),
            row("gone", "full", 1.0, 10, None),
        ];
        let new = vec![
            row("qsort", "full", 10.2, 1000, Some(300)),
            row("qsort", "full_norc", 9.0, 1100, Some(700)),
            row("fresh", "full", 2.0, 20, Some(5)),
        ];
        let table = render_diff(&old, &new);
        let lines: Vec<&str> = table.lines().collect();
        assert!(lines[1].contains("~noise"), "{table}");
        assert!(lines[1].contains('='), "unchanged counters: {table}");
        assert!(lines[2].contains("faster"), "{table}");
        assert!(lines[2].contains("-100 (-8.3%)"), "{table}");
        assert!(lines[2].contains("-200 (-22.2%)"), "{table}");
        assert!(lines[3].contains("added"), "{table}");
        assert!(lines[4].contains("removed"), "{table}");
    }

    #[test]
    fn json_strings_are_escaped() {
        let mut s = String::new();
        escape_into(&mut s, "a\"b\\c\nd");
        assert_eq!(s, "a\\\"b\\\\c\\u000ad");
    }

    #[test]
    fn default_path_is_scale_keyed() {
        assert_eq!(default_path("bench"), "BENCH_bench.json");
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse_baseline("{}").is_err());
        assert!(parse_baseline("\"wall_ms\": nope").is_err());
    }
}
