//! The λpure / λrc abstract syntax.
//!
//! λpure is LEAN4's minimal, pure, strict, higher-order IR (§II-B of the
//! paper): A-normal-form expressions built from `let`, data constructors,
//! projections, pattern matching (`case`), full calls, partial applications,
//! closure applications, and join points. λrc is the same syntax extended
//! with explicit reference-count instructions (`inc` / `dec`); a term is "in
//! λrc" when those have been inserted by [`crate::rc::insert_rc`].
//!
//! Join-point discipline: this crate locally lambda-lifts join points, so a
//! join point's body may only reference its own parameters (checked by
//! [`crate::wellformed`]). Jumps pass everything explicitly, which keeps
//! reference counting compositional.

use std::collections::BTreeSet;
use std::fmt;

/// A local variable (unique within one function).
pub type VarId = u32;

/// A join-point label (unique within one function).
pub type JoinId = u32;

/// A bindable value (the right-hand side of a `let`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Value {
    /// Alias of another variable.
    Var(VarId),
    /// Machine-word integer literal.
    LitInt(i64),
    /// Arbitrary-precision integer literal (decimal digits).
    LitBig(String),
    /// String literal.
    LitStr(String),
    /// Data constructor application: `ctor_tag(args…)`.
    Ctor {
        /// Variant tag.
        tag: u32,
        /// Field values.
        args: Vec<VarId>,
    },
    /// Field projection `proj_idx(var)`.
    Proj {
        /// The constructor value.
        var: VarId,
        /// Field index.
        idx: u32,
    },
    /// Saturated call of a top-level function.
    Call {
        /// Function name.
        func: String,
        /// Arguments (exactly the function's arity).
        args: Vec<VarId>,
    },
    /// Partial application of a top-level function (closure creation).
    Pap {
        /// Function name.
        func: String,
        /// Captured arguments (fewer than the arity).
        args: Vec<VarId>,
    },
    /// Application of a closure value to further arguments.
    App {
        /// The closure.
        closure: VarId,
        /// Arguments to add.
        args: Vec<VarId>,
    },
}

impl Value {
    /// Variables this value mentions, with multiplicity.
    pub fn operands(&self) -> Vec<VarId> {
        match self {
            Value::Var(v) | Value::Proj { var: v, .. } => vec![*v],
            Value::LitInt(_) | Value::LitBig(_) | Value::LitStr(_) => vec![],
            Value::Ctor { args, .. } | Value::Call { args, .. } | Value::Pap { args, .. } => {
                args.clone()
            }
            Value::App { closure, args } => {
                let mut v = vec![*closure];
                v.extend(args);
                v
            }
        }
    }

    /// Whether evaluating the value has no observable effect (so an unused
    /// binding can be dropped). All λpure values qualify; `App` may invoke
    /// arbitrary user code, and calls may not terminate, so both are kept.
    pub fn is_droppable(&self) -> bool {
        !matches!(self, Value::Call { .. } | Value::App { .. })
    }
}

/// One arm of a `case`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Alt {
    /// The constructor tag this arm matches.
    pub tag: u32,
    /// The arm's body.
    pub body: Expr,
}

/// A λpure / λrc expression ("function body" in LEAN's IR terminology).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    /// `let var = val; body`.
    Let {
        /// The bound variable.
        var: VarId,
        /// The bound value.
        val: Value,
        /// Continuation.
        body: Box<Expr>,
    },
    /// Join-point declaration: `join label(params…) = jp_body; body`.
    ///
    /// Control enters `body`; `jump label(args…)` inside `body` transfers to
    /// `jp_body`. The jp body may reference only its `params`.
    LetJoin {
        /// Label.
        label: JoinId,
        /// Join-point parameters.
        params: Vec<VarId>,
        /// The join point's body (the "after-jump" code).
        jp_body: Box<Expr>,
        /// The scope in which the join point is visible ("pre-jump").
        body: Box<Expr>,
    },
    /// Pattern match on a constructor tag.
    Case {
        /// The value whose tag is inspected.
        scrutinee: VarId,
        /// Arms, in ascending tag order.
        alts: Vec<Alt>,
        /// Fallback when no arm matches.
        default: Option<Box<Expr>>,
    },
    /// Transfer to an enclosing join point.
    Jump {
        /// Target label.
        label: JoinId,
        /// Arguments for the join point's parameters.
        args: Vec<VarId>,
    },
    /// Return a variable from the function.
    Ret(VarId),
    /// λrc: increment `var`'s reference count `n` times, then `body`.
    Inc {
        /// Variable to retain.
        var: VarId,
        /// Retain count.
        n: u32,
        /// Continuation.
        body: Box<Expr>,
    },
    /// λrc: decrement `var`'s reference count, then `body`.
    Dec {
        /// Variable to release.
        var: VarId,
        /// Continuation.
        body: Box<Expr>,
    },
}

impl Expr {
    /// Free variables of the expression.
    pub fn free_vars(&self) -> BTreeSet<VarId> {
        let mut out = BTreeSet::new();
        self.collect_free_vars(&mut BTreeSet::new(), &mut out);
        out
    }

    fn collect_free_vars(&self, bound: &mut BTreeSet<VarId>, out: &mut BTreeSet<VarId>) {
        let record = |v: VarId, bound: &BTreeSet<VarId>, out: &mut BTreeSet<VarId>| {
            if !bound.contains(&v) {
                out.insert(v);
            }
        };
        match self {
            Expr::Let { var, val, body } => {
                for v in val.operands() {
                    record(v, bound, out);
                }
                let newly = bound.insert(*var);
                body.collect_free_vars(bound, out);
                if newly {
                    bound.remove(var);
                }
            }
            Expr::LetJoin {
                params,
                jp_body,
                body,
                ..
            } => {
                let mut jp_bound = bound.clone();
                jp_bound.extend(params.iter().copied());
                jp_body.collect_free_vars(&mut jp_bound, out);
                body.collect_free_vars(bound, out);
            }
            Expr::Case {
                scrutinee,
                alts,
                default,
            } => {
                record(*scrutinee, bound, out);
                for alt in alts {
                    alt.body.collect_free_vars(bound, out);
                }
                if let Some(d) = default {
                    d.collect_free_vars(bound, out);
                }
            }
            Expr::Jump { args, .. } => {
                for &v in args {
                    record(v, bound, out);
                }
            }
            Expr::Ret(v) => record(*v, bound, out),
            Expr::Inc { var, body, .. } | Expr::Dec { var, body } => {
                record(*var, bound, out);
                body.collect_free_vars(bound, out);
            }
        }
    }

    /// Whether the expression contains any `inc`/`dec` (i.e. is λrc).
    pub fn has_rc_ops(&self) -> bool {
        match self {
            Expr::Inc { .. } | Expr::Dec { .. } => true,
            Expr::Let { body, .. } => body.has_rc_ops(),
            Expr::LetJoin { jp_body, body, .. } => body.has_rc_ops() || jp_body.has_rc_ops(),
            Expr::Case { alts, default, .. } => {
                alts.iter().any(|a| a.body.has_rc_ops())
                    || default.as_ref().map(|d| d.has_rc_ops()).unwrap_or(false)
            }
            Expr::Jump { .. } | Expr::Ret(_) => false,
        }
    }

    /// Number of AST nodes (size metric for tests and the simplifier).
    pub fn size(&self) -> usize {
        match self {
            Expr::Let { body, .. } => 1 + body.size(),
            Expr::LetJoin { jp_body, body, .. } => 1 + jp_body.size() + body.size(),
            Expr::Case { alts, default, .. } => {
                1 + alts.iter().map(|a| a.body.size()).sum::<usize>()
                    + default.as_ref().map(|d| d.size()).unwrap_or(0)
            }
            Expr::Jump { .. } | Expr::Ret(_) => 1,
            Expr::Inc { body, .. } | Expr::Dec { body, .. } => 1 + body.size(),
        }
    }

    /// Renames *free* occurrences of variables according to `map`.
    /// Binders are never renamed; a binder that shadows a map key disables
    /// the renaming in its scope.
    pub fn rename_free(&self, map: &std::collections::HashMap<VarId, VarId>) -> Expr {
        self.rename_rec(map, &mut BTreeSet::new())
    }

    fn rename_rec(
        &self,
        map: &std::collections::HashMap<VarId, VarId>,
        bound: &mut BTreeSet<VarId>,
    ) -> Expr {
        let r = |v: VarId, bound: &BTreeSet<VarId>| -> VarId {
            if bound.contains(&v) {
                v
            } else {
                map.get(&v).copied().unwrap_or(v)
            }
        };
        let rename_value = |val: &Value, bound: &BTreeSet<VarId>| -> Value {
            match val {
                Value::Var(v) => Value::Var(r(*v, bound)),
                Value::LitInt(_) | Value::LitBig(_) | Value::LitStr(_) => val.clone(),
                Value::Ctor { tag, args } => Value::Ctor {
                    tag: *tag,
                    args: args.iter().map(|&a| r(a, bound)).collect(),
                },
                Value::Proj { var, idx } => Value::Proj {
                    var: r(*var, bound),
                    idx: *idx,
                },
                Value::Call { func, args } => Value::Call {
                    func: func.clone(),
                    args: args.iter().map(|&a| r(a, bound)).collect(),
                },
                Value::Pap { func, args } => Value::Pap {
                    func: func.clone(),
                    args: args.iter().map(|&a| r(a, bound)).collect(),
                },
                Value::App { closure, args } => Value::App {
                    closure: r(*closure, bound),
                    args: args.iter().map(|&a| r(a, bound)).collect(),
                },
            }
        };
        match self {
            Expr::Let { var, val, body } => {
                let val = rename_value(val, bound);
                let newly = bound.insert(*var);
                let body = body.rename_rec(map, bound);
                if newly {
                    bound.remove(var);
                }
                Expr::Let {
                    var: *var,
                    val,
                    body: Box::new(body),
                }
            }
            Expr::LetJoin {
                label,
                params,
                jp_body,
                body,
            } => {
                let mut jp_bound = bound.clone();
                jp_bound.extend(params.iter().copied());
                Expr::LetJoin {
                    label: *label,
                    params: params.clone(),
                    jp_body: Box::new(jp_body.rename_rec(map, &mut jp_bound)),
                    body: Box::new(body.rename_rec(map, bound)),
                }
            }
            Expr::Case {
                scrutinee,
                alts,
                default,
            } => Expr::Case {
                scrutinee: r(*scrutinee, bound),
                alts: alts
                    .iter()
                    .map(|a| Alt {
                        tag: a.tag,
                        body: a.body.rename_rec(map, bound),
                    })
                    .collect(),
                default: default.as_ref().map(|d| Box::new(d.rename_rec(map, bound))),
            },
            Expr::Jump { label, args } => Expr::Jump {
                label: *label,
                args: args.iter().map(|&a| r(a, bound)).collect(),
            },
            Expr::Ret(v) => Expr::Ret(r(*v, bound)),
            Expr::Inc { var, n, body } => Expr::Inc {
                var: r(*var, bound),
                n: *n,
                body: Box::new(body.rename_rec(map, bound)),
            },
            Expr::Dec { var, body } => Expr::Dec {
                var: r(*var, bound),
                body: Box::new(body.rename_rec(map, bound)),
            },
        }
    }

    /// Structural equality modulo binder names and join labels — used by
    /// `simpcase` to detect identical case branches.
    pub fn alpha_eq(&self, other: &Expr) -> bool {
        alpha_eq_rec(self, other, &mut AlphaCtx::default())
    }
}

/// Variable/label correspondence built up during alpha comparison.
#[derive(Default)]
struct AlphaCtx {
    vars: std::collections::HashMap<VarId, VarId>,
    joins: std::collections::HashMap<JoinId, JoinId>,
}

impl AlphaCtx {
    fn var_eq(&self, a: VarId, b: VarId) -> bool {
        match self.vars.get(&a) {
            Some(&mapped) => mapped == b,
            None => a == b,
        }
    }

    fn join_eq(&self, a: JoinId, b: JoinId) -> bool {
        match self.joins.get(&a) {
            Some(&mapped) => mapped == b,
            None => a == b,
        }
    }
}

fn value_alpha_eq(a: &Value, b: &Value, ctx: &AlphaCtx) -> bool {
    let veq = |x: &VarId, y: &VarId| ctx.var_eq(*x, *y);
    let args_eq = |xs: &[VarId], ys: &[VarId]| {
        xs.len() == ys.len() && xs.iter().zip(ys).all(|(x, y)| veq(x, y))
    };
    match (a, b) {
        (Value::Var(x), Value::Var(y)) => veq(x, y),
        (Value::LitInt(x), Value::LitInt(y)) => x == y,
        (Value::LitBig(x), Value::LitBig(y)) => x == y,
        (Value::LitStr(x), Value::LitStr(y)) => x == y,
        (Value::Ctor { tag: t1, args: a1 }, Value::Ctor { tag: t2, args: a2 }) => {
            t1 == t2 && args_eq(a1, a2)
        }
        (Value::Proj { var: v1, idx: i1 }, Value::Proj { var: v2, idx: i2 }) => {
            veq(v1, v2) && i1 == i2
        }
        (Value::Call { func: f1, args: a1 }, Value::Call { func: f2, args: a2 })
        | (Value::Pap { func: f1, args: a1 }, Value::Pap { func: f2, args: a2 }) => {
            f1 == f2 && args_eq(a1, a2)
        }
        (
            Value::App {
                closure: c1,
                args: a1,
            },
            Value::App {
                closure: c2,
                args: a2,
            },
        ) => veq(c1, c2) && args_eq(a1, a2),
        _ => false,
    }
}

fn alpha_eq_rec(a: &Expr, b: &Expr, ctx: &mut AlphaCtx) -> bool {
    match (a, b) {
        (
            Expr::Let {
                var: v1,
                val: x1,
                body: b1,
            },
            Expr::Let {
                var: v2,
                val: x2,
                body: b2,
            },
        ) => {
            if !value_alpha_eq(x1, x2, ctx) {
                return false;
            }
            let prev = ctx.vars.insert(*v1, *v2);
            let out = alpha_eq_rec(b1, b2, ctx);
            match prev {
                Some(p) => {
                    ctx.vars.insert(*v1, p);
                }
                None => {
                    ctx.vars.remove(v1);
                }
            }
            out
        }
        (
            Expr::LetJoin {
                label: l1,
                params: p1,
                jp_body: j1,
                body: b1,
            },
            Expr::LetJoin {
                label: l2,
                params: p2,
                jp_body: j2,
                body: b2,
            },
        ) => {
            if p1.len() != p2.len() {
                return false;
            }
            let mut inner = AlphaCtx::default();
            for (&x, &y) in p1.iter().zip(p2) {
                inner.vars.insert(x, y);
            }
            inner.joins = ctx.joins.clone();
            if !alpha_eq_rec(j1, j2, &mut inner) {
                return false;
            }
            let prev = ctx.joins.insert(*l1, *l2);
            let out = alpha_eq_rec(b1, b2, ctx);
            match prev {
                Some(p) => {
                    ctx.joins.insert(*l1, p);
                }
                None => {
                    ctx.joins.remove(l1);
                }
            }
            out
        }
        (
            Expr::Case {
                scrutinee: s1,
                alts: a1,
                default: d1,
            },
            Expr::Case {
                scrutinee: s2,
                alts: a2,
                default: d2,
            },
        ) => {
            ctx.var_eq(*s1, *s2)
                && a1.len() == a2.len()
                && a1
                    .iter()
                    .zip(a2)
                    .all(|(x, y)| x.tag == y.tag && alpha_eq_rec(&x.body, &y.body, ctx))
                && match (d1, d2) {
                    (None, None) => true,
                    (Some(x), Some(y)) => alpha_eq_rec(x, y, ctx),
                    _ => false,
                }
        }
        (
            Expr::Jump {
                label: l1,
                args: a1,
            },
            Expr::Jump {
                label: l2,
                args: a2,
            },
        ) => {
            ctx.join_eq(*l1, *l2)
                && a1.len() == a2.len()
                && a1.iter().zip(a2).all(|(x, y)| ctx.var_eq(*x, *y))
        }
        (Expr::Ret(x), Expr::Ret(y)) => ctx.var_eq(*x, *y),
        (
            Expr::Inc {
                var: v1,
                n: n1,
                body: b1,
            },
            Expr::Inc {
                var: v2,
                n: n2,
                body: b2,
            },
        ) => ctx.var_eq(*v1, *v2) && n1 == n2 && alpha_eq_rec(b1, b2, ctx),
        (Expr::Dec { var: v1, body: b1 }, Expr::Dec { var: v2, body: b2 }) => {
            ctx.var_eq(*v1, *v2) && alpha_eq_rec(b1, b2, ctx)
        }
        _ => false,
    }
}

/// A top-level function definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FnDef {
    /// The function's global name.
    pub name: String,
    /// Parameter variables.
    pub params: Vec<VarId>,
    /// The body.
    pub body: Expr,
    /// Exclusive upper bound on variable ids used in this function (for
    /// fresh-variable generation).
    pub next_var: VarId,
    /// Exclusive upper bound on join labels.
    pub next_join: JoinId,
}

impl FnDef {
    /// Allocates a fresh variable.
    pub fn fresh_var(&mut self) -> VarId {
        let v = self.next_var;
        self.next_var += 1;
        v
    }

    /// The function's arity.
    pub fn arity(&self) -> usize {
        self.params.len()
    }
}

/// A whole λpure/λrc program.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Program {
    /// Functions, in definition order.
    pub fns: Vec<FnDef>,
}

impl Program {
    /// Looks up a function by name.
    pub fn fn_by_name(&self, name: &str) -> Option<&FnDef> {
        self.fns.iter().find(|f| f.name == name)
    }

    /// Arity of a named function, if it exists.
    pub fn arity_of(&self, name: &str) -> Option<usize> {
        self.fn_by_name(name).map(|f| f.arity())
    }
}

// ---- pretty printing -------------------------------------------------------

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn vars(args: &[VarId]) -> String {
            args.iter()
                .map(|a| format!("x{a}"))
                .collect::<Vec<_>>()
                .join(", ")
        }
        match self {
            Value::Var(v) => write!(f, "x{v}"),
            Value::LitInt(n) => write!(f, "{n}"),
            Value::LitBig(s) => write!(f, "big({s})"),
            Value::LitStr(s) => write!(f, "{s:?}"),
            Value::Ctor { tag, args } => write!(f, "ctor_{tag}({})", vars(args)),
            Value::Proj { var, idx } => write!(f, "proj_{idx}(x{var})"),
            Value::Call { func, args } => write!(f, "call @{func}({})", vars(args)),
            Value::Pap { func, args } => write!(f, "pap @{func}({})", vars(args)),
            Value::App { closure, args } => write!(f, "app x{closure}({})", vars(args)),
        }
    }
}

impl Expr {
    fn fmt_indented(&self, f: &mut fmt::Formatter<'_>, indent: usize) -> fmt::Result {
        let pad = "  ".repeat(indent);
        match self {
            Expr::Let { var, val, body } => {
                writeln!(f, "{pad}let x{var} = {val};")?;
                body.fmt_indented(f, indent)
            }
            Expr::LetJoin {
                label,
                params,
                jp_body,
                body,
            } => {
                let ps = params
                    .iter()
                    .map(|p| format!("x{p}"))
                    .collect::<Vec<_>>()
                    .join(", ");
                writeln!(f, "{pad}join j{label}({ps}) =")?;
                jp_body.fmt_indented(f, indent + 1)?;
                writeln!(f, "{pad}in")?;
                body.fmt_indented(f, indent)
            }
            Expr::Case {
                scrutinee,
                alts,
                default,
            } => {
                writeln!(f, "{pad}case x{scrutinee} of")?;
                for alt in alts {
                    writeln!(f, "{pad}| {} =>", alt.tag)?;
                    alt.body.fmt_indented(f, indent + 1)?;
                }
                if let Some(d) = default {
                    writeln!(f, "{pad}| default =>")?;
                    d.fmt_indented(f, indent + 1)?;
                }
                Ok(())
            }
            Expr::Jump { label, args } => {
                let vs = args
                    .iter()
                    .map(|a| format!("x{a}"))
                    .collect::<Vec<_>>()
                    .join(", ");
                writeln!(f, "{pad}jump j{label}({vs})")
            }
            Expr::Ret(v) => writeln!(f, "{pad}ret x{v}"),
            Expr::Inc { var, n, body } => {
                if *n == 1 {
                    writeln!(f, "{pad}inc x{var};")?;
                } else {
                    writeln!(f, "{pad}inc x{var} *{n};")?;
                }
                body.fmt_indented(f, indent)
            }
            Expr::Dec { var, body } => {
                writeln!(f, "{pad}dec x{var};")?;
                body.fmt_indented(f, indent)
            }
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.fmt_indented(f, 0)
    }
}

impl fmt::Display for FnDef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ps = self
            .params
            .iter()
            .map(|p| format!("x{p}"))
            .collect::<Vec<_>>()
            .join(", ");
        writeln!(f, "def @{}({ps}) :=", self.name)?;
        self.body.fmt_indented(f, 1)
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for func in &self.fns {
            writeln!(f, "{func}")?;
        }
        Ok(())
    }
}

/// Convenience constructors for building expressions in tests and lowerings.
pub mod build {
    use super::*;

    /// `let var = val; body`
    pub fn let_(var: VarId, val: Value, body: Expr) -> Expr {
        Expr::Let {
            var,
            val,
            body: Box::new(body),
        }
    }

    /// `ret v`
    pub fn ret(v: VarId) -> Expr {
        Expr::Ret(v)
    }

    /// `case scrutinee of alts | default`
    pub fn case(scrutinee: VarId, alts: Vec<(u32, Expr)>, default: Option<Expr>) -> Expr {
        Expr::Case {
            scrutinee,
            alts: alts
                .into_iter()
                .map(|(tag, body)| Alt { tag, body })
                .collect(),
            default: default.map(Box::new),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::build::*;
    use super::*;

    fn sample() -> Expr {
        // let x1 = 5; case x0 of | 0 => ret x1 | default => ret x0
        let_(
            1,
            Value::LitInt(5),
            case(0, vec![(0, ret(1))], Some(ret(0))),
        )
    }

    #[test]
    fn free_vars_basic() {
        let e = sample();
        let fv = e.free_vars();
        assert!(fv.contains(&0));
        assert!(!fv.contains(&1), "let-bound variable is not free");
    }

    #[test]
    fn free_vars_join_points() {
        // join j0(x1) = ret x1 in jump j0(x0)
        let e = Expr::LetJoin {
            label: 0,
            params: vec![1],
            jp_body: Box::new(ret(1)),
            body: Box::new(Expr::Jump {
                label: 0,
                args: vec![0],
            }),
        };
        let fv = e.free_vars();
        assert_eq!(fv.into_iter().collect::<Vec<_>>(), vec![0]);
    }

    #[test]
    fn free_vars_value_operands() {
        let e = let_(
            2,
            Value::Ctor {
                tag: 1,
                args: vec![0, 1],
            },
            ret(2),
        );
        let fv = e.free_vars();
        assert_eq!(fv.into_iter().collect::<Vec<_>>(), vec![0, 1]);
    }

    #[test]
    fn shadowing_not_a_concern_but_rebinding_handled() {
        // let x1 = x0; let x1 = x1; ret x1 — rebinding the same id.
        let e = let_(1, Value::Var(0), let_(1, Value::Var(1), ret(1)));
        let fv = e.free_vars();
        assert_eq!(fv.into_iter().collect::<Vec<_>>(), vec![0]);
    }

    #[test]
    fn has_rc_ops_detects() {
        let pure = sample();
        assert!(!pure.has_rc_ops());
        let rc = Expr::Inc {
            var: 0,
            n: 1,
            body: Box::new(pure),
        };
        assert!(rc.has_rc_ops());
    }

    #[test]
    fn size_counts_nodes() {
        assert_eq!(sample().size(), 4);
    }

    #[test]
    fn display_round_readable() {
        let text = sample().to_string();
        assert!(text.contains("let x1 = 5;"), "{text}");
        assert!(text.contains("case x0 of"), "{text}");
    }

    #[test]
    fn value_droppable_classification() {
        assert!(Value::LitInt(3).is_droppable());
        assert!(Value::Ctor {
            tag: 0,
            args: vec![]
        }
        .is_droppable());
        assert!(!Value::Call {
            func: "f".into(),
            args: vec![]
        }
        .is_droppable());
        assert!(!Value::App {
            closure: 0,
            args: vec![1]
        }
        .is_droppable());
    }

    #[test]
    fn fresh_var_increments() {
        let mut f = FnDef {
            name: "t".into(),
            params: vec![0],
            body: ret(0),
            next_var: 1,
            next_join: 0,
        };
        assert_eq!(f.fresh_var(), 1);
        assert_eq!(f.fresh_var(), 2);
        assert_eq!(f.arity(), 1);
    }
}
