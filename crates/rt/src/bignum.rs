//! Arbitrary-precision natural numbers and integers.
//!
//! LEAN's runtime uses GMP for its `Nat` and `Int` types once values exceed
//! the machine-word range. This module is the from-scratch stand-in: a
//! little-endian, `u64`-limb magnitude type [`Nat`] and a sign-magnitude
//! integer type [`Int`].
//!
//! The representation invariant for [`Nat`] is that the limb vector never has
//! trailing zero limbs; the empty vector denotes zero. [`Int`] never stores a
//! negative zero.

use std::cmp::Ordering;
use std::fmt;

/// An arbitrary-precision natural number (unsigned).
///
/// # Examples
///
/// ```
/// use lssa_rt::bignum::Nat;
/// let a = Nat::from_u64(u64::MAX);
/// let b = a.add(&Nat::from_u64(1));
/// assert_eq!(b.to_string(), "18446744073709551616");
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct Nat {
    /// Little-endian limbs; no trailing zeros.
    limbs: Vec<u64>,
}

impl Nat {
    /// The natural number zero.
    pub fn zero() -> Nat {
        Nat { limbs: Vec::new() }
    }

    /// The natural number one.
    pub fn one() -> Nat {
        Nat { limbs: vec![1] }
    }

    /// Builds a natural from a machine word.
    pub fn from_u64(v: u64) -> Nat {
        if v == 0 {
            Nat::zero()
        } else {
            Nat { limbs: vec![v] }
        }
    }

    /// Builds a natural from a 128-bit value.
    pub fn from_u128(v: u128) -> Nat {
        let lo = v as u64;
        let hi = (v >> 64) as u64;
        let mut n = Nat {
            limbs: vec![lo, hi],
        };
        n.normalize();
        n
    }

    /// Builds a natural from raw little-endian limbs (normalizing).
    pub fn from_limbs(limbs: Vec<u64>) -> Nat {
        let mut n = Nat { limbs };
        n.normalize();
        n
    }

    /// Returns the little-endian limbs (no trailing zeros).
    pub fn limbs(&self) -> &[u64] {
        &self.limbs
    }

    fn normalize(&mut self) {
        while let Some(&0) = self.limbs.last() {
            self.limbs.pop();
        }
    }

    /// Whether this value is zero.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// Whether this value is one.
    pub fn is_one(&self) -> bool {
        self.limbs.len() == 1 && self.limbs[0] == 1
    }

    /// Converts to `u64` if the value fits.
    pub fn to_u64(&self) -> Option<u64> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(self.limbs[0]),
            _ => None,
        }
    }

    /// Converts to `u128` if the value fits.
    pub fn to_u128(&self) -> Option<u128> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(self.limbs[0] as u128),
            2 => Some(self.limbs[0] as u128 | ((self.limbs[1] as u128) << 64)),
            _ => None,
        }
    }

    /// Number of significant bits (`0` for zero).
    pub fn bits(&self) -> u64 {
        match self.limbs.last() {
            None => 0,
            Some(&top) => (self.limbs.len() as u64 - 1) * 64 + (64 - top.leading_zeros() as u64),
        }
    }

    /// Compares two naturals.
    pub fn cmp_nat(&self, other: &Nat) -> Ordering {
        if self.limbs.len() != other.limbs.len() {
            return self.limbs.len().cmp(&other.limbs.len());
        }
        for i in (0..self.limbs.len()).rev() {
            match self.limbs[i].cmp(&other.limbs[i]) {
                Ordering::Equal => continue,
                ord => return ord,
            }
        }
        Ordering::Equal
    }

    /// Addition.
    pub fn add(&self, other: &Nat) -> Nat {
        let (big, small) = if self.limbs.len() >= other.limbs.len() {
            (self, other)
        } else {
            (other, self)
        };
        let mut out = Vec::with_capacity(big.limbs.len() + 1);
        let mut carry = 0u64;
        for i in 0..big.limbs.len() {
            let b = big.limbs[i];
            let s = small.limbs.get(i).copied().unwrap_or(0);
            let (x, c1) = b.overflowing_add(s);
            let (x, c2) = x.overflowing_add(carry);
            carry = (c1 as u64) + (c2 as u64);
            out.push(x);
        }
        if carry != 0 {
            out.push(carry);
        }
        Nat::from_limbs(out)
    }

    /// Subtraction; returns `None` when `other > self`.
    pub fn checked_sub(&self, other: &Nat) -> Option<Nat> {
        if self.cmp_nat(other) == Ordering::Less {
            return None;
        }
        let mut out = Vec::with_capacity(self.limbs.len());
        let mut borrow = 0u64;
        for i in 0..self.limbs.len() {
            let a = self.limbs[i];
            let b = other.limbs.get(i).copied().unwrap_or(0);
            let (x, b1) = a.overflowing_sub(b);
            let (x, b2) = x.overflowing_sub(borrow);
            borrow = (b1 as u64) + (b2 as u64);
            out.push(x);
        }
        debug_assert_eq!(borrow, 0);
        Some(Nat::from_limbs(out))
    }

    /// Truncating subtraction: `max(self - other, 0)`. Matches LEAN `Nat.sub`.
    pub fn sat_sub(&self, other: &Nat) -> Nat {
        self.checked_sub(other).unwrap_or_else(Nat::zero)
    }

    /// Multiplication (schoolbook).
    pub fn mul(&self, other: &Nat) -> Nat {
        if self.is_zero() || other.is_zero() {
            return Nat::zero();
        }
        let mut out = vec![0u64; self.limbs.len() + other.limbs.len()];
        for (i, &a) in self.limbs.iter().enumerate() {
            let mut carry = 0u128;
            for (j, &b) in other.limbs.iter().enumerate() {
                let cur = out[i + j] as u128 + (a as u128) * (b as u128) + carry;
                out[i + j] = cur as u64;
                carry = cur >> 64;
            }
            let mut k = i + other.limbs.len();
            while carry != 0 {
                let cur = out[k] as u128 + carry;
                out[k] = cur as u64;
                carry = cur >> 64;
                k += 1;
            }
        }
        Nat::from_limbs(out)
    }

    /// Left shift by `sh` bits.
    pub fn shl(&self, sh: u64) -> Nat {
        if self.is_zero() || sh == 0 {
            return self.clone();
        }
        let limb_shift = (sh / 64) as usize;
        let bit_shift = (sh % 64) as u32;
        let mut out = vec![0u64; limb_shift];
        if bit_shift == 0 {
            out.extend_from_slice(&self.limbs);
        } else {
            let mut carry = 0u64;
            for &l in &self.limbs {
                out.push((l << bit_shift) | carry);
                carry = l >> (64 - bit_shift);
            }
            if carry != 0 {
                out.push(carry);
            }
        }
        Nat::from_limbs(out)
    }

    /// Right shift by `sh` bits.
    pub fn shr(&self, sh: u64) -> Nat {
        let limb_shift = (sh / 64) as usize;
        if limb_shift >= self.limbs.len() {
            return Nat::zero();
        }
        let bit_shift = (sh % 64) as u32;
        let rest = &self.limbs[limb_shift..];
        if bit_shift == 0 {
            return Nat::from_limbs(rest.to_vec());
        }
        let mut out = Vec::with_capacity(rest.len());
        for i in 0..rest.len() {
            let lo = rest[i] >> bit_shift;
            let hi = rest.get(i + 1).map(|&l| l << (64 - bit_shift)).unwrap_or(0);
            out.push(lo | hi);
        }
        Nat::from_limbs(out)
    }

    /// Division with remainder by a single machine word.
    ///
    /// # Panics
    ///
    /// Panics if `d == 0`.
    pub fn div_rem_u64(&self, d: u64) -> (Nat, u64) {
        assert!(d != 0, "division by zero");
        let mut out = vec![0u64; self.limbs.len()];
        let mut rem = 0u128;
        for i in (0..self.limbs.len()).rev() {
            let cur = (rem << 64) | self.limbs[i] as u128;
            out[i] = (cur / d as u128) as u64;
            rem = cur % d as u128;
        }
        (Nat::from_limbs(out), rem as u64)
    }

    /// Division with remainder. Returns `(quotient, remainder)`.
    ///
    /// Implements Knuth's Algorithm D for multi-limb divisors.
    ///
    /// # Panics
    ///
    /// Panics if `other` is zero.
    pub fn div_rem(&self, other: &Nat) -> (Nat, Nat) {
        assert!(!other.is_zero(), "division by zero");
        match self.cmp_nat(other) {
            Ordering::Less => return (Nat::zero(), self.clone()),
            Ordering::Equal => return (Nat::one(), Nat::zero()),
            Ordering::Greater => {}
        }
        if other.limbs.len() == 1 {
            let (q, r) = self.div_rem_u64(other.limbs[0]);
            return (q, Nat::from_u64(r));
        }
        // Knuth Algorithm D. Normalize so the divisor's top bit is set.
        let shift = other.limbs.last().unwrap().leading_zeros() as u64;
        let u = self.shl(shift);
        let v = other.shl(shift);
        let n = v.limbs.len();
        let m = u.limbs.len() - n;
        let mut un = u.limbs.clone();
        un.push(0); // u has m+n+1 limbs
        let vn = &v.limbs;
        let v_top = vn[n - 1];
        let v_next = vn[n - 2];
        let mut q = vec![0u64; m + 1];
        for j in (0..=m).rev() {
            // Trial quotient from top two limbs of the current remainder.
            let num = ((un[j + n] as u128) << 64) | un[j + n - 1] as u128;
            let mut qhat = num / v_top as u128;
            let mut rhat = num % v_top as u128;
            while qhat >> 64 != 0 || qhat * v_next as u128 > ((rhat << 64) | un[j + n - 2] as u128)
            {
                qhat -= 1;
                rhat += v_top as u128;
                if rhat >> 64 != 0 {
                    break;
                }
            }
            // Multiply-and-subtract: un[j..j+n+1] -= qhat * vn.
            let mut borrow = 0i128;
            let mut carry = 0u128;
            for i in 0..n {
                let p = qhat * vn[i] as u128 + carry;
                carry = p >> 64;
                let sub = (un[j + i] as i128) - (p as u64 as i128) - borrow;
                un[j + i] = sub as u64;
                borrow = if sub < 0 { 1 } else { 0 };
            }
            let sub = (un[j + n] as i128) - (carry as i128) - borrow;
            un[j + n] = sub as u64;
            if sub < 0 {
                // qhat was one too large; add back.
                qhat -= 1;
                let mut c = 0u128;
                for i in 0..n {
                    let s = un[j + i] as u128 + vn[i] as u128 + c;
                    un[j + i] = s as u64;
                    c = s >> 64;
                }
                un[j + n] = (un[j + n] as u128 + c) as u64;
            }
            q[j] = qhat as u64;
        }
        let quotient = Nat::from_limbs(q);
        let rem = Nat::from_limbs(un[..n].to_vec()).shr(shift);
        (quotient, rem)
    }

    /// LEAN-semantics division: `x / 0 = 0`.
    pub fn div(&self, other: &Nat) -> Nat {
        if other.is_zero() {
            Nat::zero()
        } else {
            self.div_rem(other).0
        }
    }

    /// LEAN-semantics modulo: `x % 0 = x`.
    pub fn rem(&self, other: &Nat) -> Nat {
        if other.is_zero() {
            self.clone()
        } else {
            self.div_rem(other).1
        }
    }

    /// Exponentiation by squaring.
    pub fn pow(&self, mut e: u64) -> Nat {
        let mut base = self.clone();
        let mut acc = Nat::one();
        while e > 0 {
            if e & 1 == 1 {
                acc = acc.mul(&base);
            }
            e >>= 1;
            if e > 0 {
                base = base.mul(&base);
            }
        }
        acc
    }

    /// Greatest common divisor (Euclid).
    pub fn gcd(&self, other: &Nat) -> Nat {
        let mut a = self.clone();
        let mut b = other.clone();
        while !b.is_zero() {
            let r = a.rem(&b);
            a = b;
            b = r;
        }
        a
    }

    /// Parses a decimal string.
    ///
    /// # Errors
    ///
    /// Returns `Err` on an empty string or non-digit characters.
    pub fn from_str_decimal(s: &str) -> Result<Nat, ParseNatError> {
        if s.is_empty() {
            return Err(ParseNatError);
        }
        let mut acc = Nat::zero();
        // Process 19 digits at a time (max power of 10 in u64).
        let bytes = s.as_bytes();
        let mut i = 0;
        while i < bytes.len() {
            let chunk_len = (bytes.len() - i).min(19);
            let chunk = &s[i..i + chunk_len];
            let v: u64 = chunk.parse().map_err(|_| ParseNatError)?;
            let scale = 10u64.pow(chunk_len as u32 - 1) as u128 * 10;
            acc = acc.mul(&Nat::from_u128(scale)).add(&Nat::from_u64(v));
            i += chunk_len;
        }
        Ok(acc)
    }
}

/// Error parsing a decimal natural.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParseNatError;

impl fmt::Display for ParseNatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid decimal natural number")
    }
}

impl std::error::Error for ParseNatError {}

impl fmt::Display for Nat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return write!(f, "0");
        }
        // Repeatedly divide by 10^19 and print chunks.
        let mut chunks = Vec::new();
        let mut cur = self.clone();
        const CHUNK: u64 = 10_000_000_000_000_000_000;
        while !cur.is_zero() {
            let (q, r) = cur.div_rem_u64(CHUNK);
            chunks.push(r);
            cur = q;
        }
        write!(f, "{}", chunks.pop().unwrap())?;
        for c in chunks.iter().rev() {
            write!(f, "{c:019}")?;
        }
        Ok(())
    }
}

impl fmt::Debug for Nat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Nat({self})")
    }
}

impl PartialOrd for Nat {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Nat {
    fn cmp(&self, other: &Self) -> Ordering {
        self.cmp_nat(other)
    }
}

impl From<u64> for Nat {
    fn from(v: u64) -> Nat {
        Nat::from_u64(v)
    }
}

/// An arbitrary-precision signed integer (sign-magnitude).
///
/// # Examples
///
/// ```
/// use lssa_rt::bignum::Int;
/// let a = Int::from_i64(-5);
/// let b = Int::from_i64(3);
/// assert_eq!(a.add(&b).to_string(), "-2");
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct Int {
    neg: bool,
    mag: Nat,
}

impl Int {
    /// The integer zero.
    pub fn zero() -> Int {
        Int {
            neg: false,
            mag: Nat::zero(),
        }
    }

    /// Builds from sign and magnitude, normalizing negative zero.
    pub fn from_parts(neg: bool, mag: Nat) -> Int {
        Int {
            neg: neg && !mag.is_zero(),
            mag,
        }
    }

    /// Builds from a machine integer.
    pub fn from_i64(v: i64) -> Int {
        Int::from_parts(v < 0, Nat::from_u64(v.unsigned_abs()))
    }

    /// Builds from a natural.
    pub fn from_nat(n: Nat) -> Int {
        Int::from_parts(false, n)
    }

    /// Whether this is negative.
    pub fn is_neg(&self) -> bool {
        self.neg
    }

    /// Whether this is zero.
    pub fn is_zero(&self) -> bool {
        self.mag.is_zero()
    }

    /// The magnitude.
    pub fn magnitude(&self) -> &Nat {
        &self.mag
    }

    /// Converts to `i64` if it fits.
    pub fn to_i64(&self) -> Option<i64> {
        let m = self.mag.to_u64()?;
        if self.neg {
            if m <= (i64::MAX as u64) + 1 {
                Some((m as i64).wrapping_neg())
            } else {
                None
            }
        } else if m <= i64::MAX as u64 {
            Some(m as i64)
        } else {
            None
        }
    }

    /// Comparison.
    pub fn cmp_int(&self, other: &Int) -> Ordering {
        match (self.neg, other.neg) {
            (false, true) => Ordering::Greater,
            (true, false) => Ordering::Less,
            (false, false) => self.mag.cmp_nat(&other.mag),
            (true, true) => other.mag.cmp_nat(&self.mag),
        }
    }

    /// Addition.
    pub fn add(&self, other: &Int) -> Int {
        if self.neg == other.neg {
            Int::from_parts(self.neg, self.mag.add(&other.mag))
        } else {
            match self.mag.cmp_nat(&other.mag) {
                Ordering::Equal => Int::zero(),
                Ordering::Greater => {
                    Int::from_parts(self.neg, self.mag.checked_sub(&other.mag).unwrap())
                }
                Ordering::Less => {
                    Int::from_parts(other.neg, other.mag.checked_sub(&self.mag).unwrap())
                }
            }
        }
    }

    /// Negation.
    pub fn neg(&self) -> Int {
        Int::from_parts(!self.neg, self.mag.clone())
    }

    /// Subtraction.
    pub fn sub(&self, other: &Int) -> Int {
        self.add(&other.neg())
    }

    /// Multiplication.
    pub fn mul(&self, other: &Int) -> Int {
        Int::from_parts(self.neg != other.neg, self.mag.mul(&other.mag))
    }

    /// Truncated division (LEAN `Int.div` semantics: round toward zero; `x / 0 = 0`).
    pub fn div(&self, other: &Int) -> Int {
        if other.is_zero() {
            return Int::zero();
        }
        Int::from_parts(self.neg != other.neg, self.mag.div(&other.mag))
    }

    /// Truncated remainder: `self - other * self.div(other)`; `x % 0 = x`.
    pub fn rem(&self, other: &Int) -> Int {
        if other.is_zero() {
            return self.clone();
        }
        Int::from_parts(self.neg, self.mag.rem(&other.mag))
    }

    /// Parses a decimal string with optional leading `-`.
    ///
    /// # Errors
    ///
    /// Returns `Err` on empty/ill-formed input.
    pub fn from_str_decimal(s: &str) -> Result<Int, ParseNatError> {
        if let Some(rest) = s.strip_prefix('-') {
            Ok(Int::from_parts(true, Nat::from_str_decimal(rest)?))
        } else {
            Ok(Int::from_parts(false, Nat::from_str_decimal(s)?))
        }
    }
}

impl fmt::Display for Int {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.neg {
            write!(f, "-")?;
        }
        write!(f, "{}", self.mag)
    }
}

impl fmt::Debug for Int {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Int({self})")
    }
}

impl PartialOrd for Int {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Int {
    fn cmp(&self, other: &Self) -> Ordering {
        self.cmp_int(other)
    }
}

impl From<i64> for Int {
    fn from(v: i64) -> Int {
        Int::from_i64(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nat(s: &str) -> Nat {
        Nat::from_str_decimal(s).unwrap()
    }

    #[test]
    fn zero_properties() {
        assert!(Nat::zero().is_zero());
        assert_eq!(Nat::zero().to_string(), "0");
        assert_eq!(Nat::zero().bits(), 0);
        assert_eq!(Nat::from_u64(0), Nat::zero());
    }

    #[test]
    fn add_small() {
        assert_eq!(Nat::from_u64(2).add(&Nat::from_u64(3)), Nat::from_u64(5));
    }

    #[test]
    fn add_carry_chain() {
        let a = Nat::from_limbs(vec![u64::MAX, u64::MAX]);
        let b = Nat::one();
        assert_eq!(a.add(&b), Nat::from_limbs(vec![0, 0, 1]));
    }

    #[test]
    fn sub_borrow() {
        let a = Nat::from_limbs(vec![0, 1]); // 2^64
        let b = Nat::one();
        assert_eq!(a.checked_sub(&b).unwrap(), Nat::from_u64(u64::MAX));
    }

    #[test]
    fn sub_underflow_is_none() {
        assert!(Nat::from_u64(3).checked_sub(&Nat::from_u64(4)).is_none());
        assert_eq!(Nat::from_u64(3).sat_sub(&Nat::from_u64(4)), Nat::zero());
    }

    #[test]
    fn mul_matches_u128() {
        let a = 0xdead_beef_1234_5678u64;
        let b = 0xcafe_babe_8765_4321u64;
        let prod = Nat::from_u64(a).mul(&Nat::from_u64(b));
        assert_eq!(prod.to_u128().unwrap(), a as u128 * b as u128);
    }

    #[test]
    fn display_round_trip_large() {
        let s = "123456789012345678901234567890123456789012345678901234567890";
        assert_eq!(nat(s).to_string(), s);
    }

    #[test]
    fn display_chunk_padding() {
        // Exercises the zero-padded chunk path: value with a zero middle chunk.
        let s = "100000000000000000000000000000000000001";
        assert_eq!(nat(s).to_string(), s);
    }

    #[test]
    fn div_rem_small_divisor() {
        let a = nat("123456789012345678901234567890");
        let (q, r) = a.div_rem_u64(97);
        assert_eq!(q.mul(&Nat::from_u64(97)).add(&Nat::from_u64(r)), a);
        assert!(r < 97);
    }

    #[test]
    fn div_rem_multi_limb() {
        let a = nat("340282366920938463463374607431768211457"); // 2^128 + 1
        let b = nat("18446744073709551617"); // 2^64 + 1
        let (q, r) = a.div_rem(&b);
        assert_eq!(q.mul(&b).add(&r), a);
        assert!(r.cmp_nat(&b) == Ordering::Less);
    }

    #[test]
    fn div_rem_identity_fuzz_like() {
        // Deterministic pseudo-random-ish cases hitting the add-back branch region.
        let cases = [
            (
                "1000000000000000000000000000000000000000",
                "99999999999999999999",
            ),
            (
                "340282366920938463463374607431768211455",
                "18446744073709551615",
            ),
            (
                "57896044618658097711785492504343953926634992332820282019728792003956564819968",
                "340282366920938463463374607431768211456",
            ),
        ];
        for (sa, sb) in cases {
            let a = nat(sa);
            let b = nat(sb);
            let (q, r) = a.div_rem(&b);
            assert_eq!(q.mul(&b).add(&r), a, "{sa} / {sb}");
            assert!(r.cmp_nat(&b) == Ordering::Less);
        }
    }

    #[test]
    fn lean_div_mod_zero_semantics() {
        let a = Nat::from_u64(42);
        assert_eq!(a.div(&Nat::zero()), Nat::zero());
        assert_eq!(a.rem(&Nat::zero()), a);
    }

    #[test]
    fn shifts_round_trip() {
        let a = nat("987654321987654321987654321");
        for sh in [0u64, 1, 63, 64, 65, 128, 130] {
            assert_eq!(a.shl(sh).shr(sh), a, "shift {sh}");
        }
    }

    #[test]
    fn pow_small() {
        assert_eq!(Nat::from_u64(2).pow(10), Nat::from_u64(1024));
        assert_eq!(Nat::from_u64(10).pow(0), Nat::one());
        assert_eq!(
            Nat::from_u64(10).pow(30).to_string(),
            "1000000000000000000000000000000"
        );
    }

    #[test]
    fn gcd_basic() {
        assert_eq!(Nat::from_u64(48).gcd(&Nat::from_u64(36)), Nat::from_u64(12));
        assert_eq!(Nat::from_u64(7).gcd(&Nat::zero()), Nat::from_u64(7));
    }

    #[test]
    fn parse_errors() {
        assert!(Nat::from_str_decimal("").is_err());
        assert!(Nat::from_str_decimal("12a3").is_err());
        assert!(Nat::from_str_decimal("-5").is_err());
    }

    #[test]
    fn ord_consistency() {
        let a = nat("99999999999999999999");
        let b = nat("100000000000000000000");
        assert!(a < b);
        assert!(b > a);
        assert_eq!(a.cmp(&a), Ordering::Equal);
    }

    #[test]
    fn int_add_signs() {
        let cases: [(i64, i64); 8] = [
            (5, 3),
            (-5, 3),
            (5, -3),
            (-5, -3),
            (3, -5),
            (-3, 5),
            (0, -7),
            (-7, 7),
        ];
        for (x, y) in cases {
            assert_eq!(
                Int::from_i64(x).add(&Int::from_i64(y)).to_i64().unwrap(),
                x + y
            );
        }
    }

    #[test]
    fn int_mul_div_signs() {
        for x in [-7i64, -1, 0, 1, 9] {
            for y in [-3i64, -1, 1, 4] {
                assert_eq!(
                    Int::from_i64(x).mul(&Int::from_i64(y)).to_i64().unwrap(),
                    x * y
                );
                assert_eq!(
                    Int::from_i64(x).div(&Int::from_i64(y)).to_i64().unwrap(),
                    x / y,
                    "{x} / {y}"
                );
                assert_eq!(
                    Int::from_i64(x).rem(&Int::from_i64(y)).to_i64().unwrap(),
                    x % y,
                    "{x} % {y}"
                );
            }
        }
    }

    #[test]
    fn int_no_negative_zero() {
        let z = Int::from_parts(true, Nat::zero());
        assert!(!z.is_neg());
        assert_eq!(z, Int::zero());
        assert_eq!(Int::from_i64(5).sub(&Int::from_i64(5)), Int::zero());
    }

    #[test]
    fn int_parse_display() {
        for s in [
            "0",
            "-1",
            "12345678901234567890123",
            "-98765432109876543210",
        ] {
            assert_eq!(Int::from_str_decimal(s).unwrap().to_string(), s);
        }
    }

    #[test]
    fn int_i64_boundaries() {
        assert_eq!(Int::from_i64(i64::MIN).to_i64(), Some(i64::MIN));
        assert_eq!(Int::from_i64(i64::MAX).to_i64(), Some(i64::MAX));
        let big = Int::from_nat(Nat::from_u64(u64::MAX));
        assert_eq!(big.to_i64(), None);
    }
}
