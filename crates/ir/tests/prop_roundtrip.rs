//! Property tests on the IR: randomly built straight-line functions always
//! verify, round-trip through text, and survive the optimization passes
//! with their verifier invariants intact.

use lssa_ir::builder::Builder;
use lssa_ir::pass::Pass;
use lssa_ir::prelude::*;
use proptest::prelude::*;

/// A recipe for one straight-line op.
#[derive(Debug, Clone)]
enum OpKind {
    Const(i64),
    Add(usize, usize),
    Sub(usize, usize),
    Mul(usize, usize),
    And(usize, usize),
    Or(usize, usize),
    Xor(usize, usize),
    CmpSelect(usize, usize, usize, usize),
}

fn op_kind() -> impl Strategy<Value = OpKind> {
    prop_oneof![
        any::<i64>().prop_map(OpKind::Const),
        (any::<usize>(), any::<usize>()).prop_map(|(a, b)| OpKind::Add(a, b)),
        (any::<usize>(), any::<usize>()).prop_map(|(a, b)| OpKind::Sub(a, b)),
        (any::<usize>(), any::<usize>()).prop_map(|(a, b)| OpKind::Mul(a, b)),
        (any::<usize>(), any::<usize>()).prop_map(|(a, b)| OpKind::And(a, b)),
        (any::<usize>(), any::<usize>()).prop_map(|(a, b)| OpKind::Or(a, b)),
        (any::<usize>(), any::<usize>()).prop_map(|(a, b)| OpKind::Xor(a, b)),
        (
            any::<usize>(),
            any::<usize>(),
            any::<usize>(),
            any::<usize>()
        )
            .prop_map(|(c, a, b, d)| OpKind::CmpSelect(c, a, b, d)),
    ]
}

/// Builds a valid straight-line function from the recipe.
fn build_module(ops: &[OpKind]) -> Module {
    let mut module = Module::new();
    let (mut body, params) = Body::new(&[Type::I64, Type::I64]);
    let entry = body.entry_block();
    let mut b = Builder::at_end(&mut body, entry);
    let mut vals: Vec<ValueId> = params.clone();
    for kind in ops {
        let pick = |i: &usize, vals: &Vec<ValueId>| vals[i % vals.len()];
        let v = match kind {
            OpKind::Const(k) => b.const_i(*k, Type::I64),
            OpKind::Add(x, y) => {
                let (x, y) = (pick(x, &vals), pick(y, &vals));
                b.addi(x, y)
            }
            OpKind::Sub(x, y) => {
                let (x, y) = (pick(x, &vals), pick(y, &vals));
                b.subi(x, y)
            }
            OpKind::Mul(x, y) => {
                let (x, y) = (pick(x, &vals), pick(y, &vals));
                b.muli(x, y)
            }
            OpKind::And(x, y) => {
                let (x, y) = (pick(x, &vals), pick(y, &vals));
                b.andi(x, y)
            }
            OpKind::Or(x, y) => {
                let (x, y) = (pick(x, &vals), pick(y, &vals));
                b.ori(x, y)
            }
            OpKind::Xor(x, y) => {
                let (x, y) = (pick(x, &vals), pick(y, &vals));
                b.xori(x, y)
            }
            OpKind::CmpSelect(c, x, y, d) => {
                let (cx, cy) = (pick(c, &vals), pick(d, &vals));
                let cond = b.cmpi(CmpPred::Slt, cx, cy);
                let (x, y) = (pick(x, &vals), pick(y, &vals));
                b.select(cond, x, y)
            }
        };
        vals.push(v);
    }
    let out = *vals.last().unwrap();
    b.ret(out);
    module.add_function(
        "f",
        Signature::new(vec![Type::I64, Type::I64], Type::I64),
        body,
    );
    module
}

/// Executes the single function on the VM with two arguments.
fn run(module: &Module, a: i64, b: i64) -> i64 {
    // Wrap values in a tiny harness: compile and call with raw registers is
    // not exposed, so evaluate via constant folding instead: build main that
    // feeds constants. Simpler: interpret symbolically through the VM by
    // building a main that calls f on lp-int-free raw constants is not
    // type-correct (f takes i64). Instead, execute by cloning the module
    // and prepending constants — done here by substituting parameters.
    let f = module.func_by_name("f").unwrap();
    let mut m2 = Module::new();
    let mut body = f.body.as_ref().unwrap().clone();
    // Replace parameter uses with constants at the head.
    let params = body.params().to_vec();
    let entry = body.entry_block();
    let (ca, cb) = {
        let mut bld = Builder::at_end(&mut body, entry);
        (bld.const_i(a, Type::I64), bld.const_i(b, Type::I64))
    };
    // Move the two new constants to the front of the block.
    let ops = &mut body.blocks[entry.index()].ops;
    let c2 = ops.pop().unwrap();
    let c1 = ops.pop().unwrap();
    ops.insert(0, c2);
    ops.insert(0, c1);
    body.replace_all_uses(params[0], ca);
    body.replace_all_uses(params[1], cb);
    m2.add_function(
        "f",
        Signature::new(vec![Type::I64, Type::I64], Type::I64),
        body,
    );
    // Evaluate by running canonicalization to a constant — the pure
    // straight-line function must fold completely.
    lssa_ir::passes::CanonicalizePass::new().run(&mut m2);
    lssa_ir::passes::DcePass.run(&mut m2);
    let body = m2.func_by_name("f").unwrap().body.as_ref().unwrap();
    let ret = body.terminator(body.entry_block()).unwrap();
    let v = body.ops[ret.index()].operands[0];
    lssa_ir::passes::const_int_value(body, v).unwrap_or_else(|| {
        // Division-free recipes always fold; if not, report loudly.
        panic!(
            "did not fold to a constant:\n{}",
            lssa_ir::printer::print_module(&m2)
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Random straight-line functions verify and round-trip through text.
    #[test]
    fn random_functions_verify_and_round_trip(ops in prop::collection::vec(op_kind(), 1..24)) {
        let module = build_module(&ops);
        lssa_ir::verifier::verify_module(&module).unwrap();
        let text = lssa_ir::printer::print_module(&module);
        let reparsed = lssa_ir::parser::parse_module(&text).unwrap();
        prop_assert_eq!(text, lssa_ir::printer::print_module(&reparsed));
        lssa_ir::verifier::verify_module(&reparsed).unwrap();
    }

    /// CSE and canonicalization preserve the folded value of pure functions.
    #[test]
    fn passes_preserve_folded_semantics(
        ops in prop::collection::vec(op_kind(), 1..16),
        a in -1000i64..1000,
        b in -1000i64..1000,
    ) {
        let module = build_module(&ops);
        let expected = run(&module, a, b);
        // Optimize the original (CSE + canonicalize), then fold again.
        let mut optimized = module.clone();
        lssa_ir::passes::CsePass.run(&mut optimized);
        lssa_ir::passes::CanonicalizePass::new().run(&mut optimized);
        lssa_ir::passes::DcePass.run(&mut optimized);
        lssa_ir::verifier::verify_module(&optimized).unwrap();
        let after = run(&optimized, a, b);
        prop_assert_eq!(expected, after);
    }

    /// DCE never removes the returned computation.
    #[test]
    fn dce_keeps_live_values(ops in prop::collection::vec(op_kind(), 1..24)) {
        let mut module = build_module(&ops);
        lssa_ir::passes::DcePass.run(&mut module);
        lssa_ir::verifier::verify_module(&module).unwrap();
        let body = module.func_by_name("f").unwrap().body.as_ref().unwrap();
        prop_assert!(body.live_op_count() >= 1);
    }
}
