//! Common subexpression elimination.
//!
//! Classical dominance-scoped value numbering over pure, region-free ops.
//! The `rgn` dialect extends this with *global region numbering* (§IV-B.2 of
//! the paper) in `lssa-core`; this pass is the MLIR-builtin baseline it
//! builds on (allocating ops are skipped — merging them would change
//! reference counts).

use crate::body::Body;
use crate::dom::DomTree;
use crate::ids::{BlockId, RegionId, ValueId};
use crate::module::Module;
use crate::opcode::{Opcode, Purity};
use crate::pass::{for_each_function, Pass};
use crate::types::Type;
use std::collections::HashMap;

/// The CSE pass.
#[derive(Debug, Default, Clone, Copy)]
pub struct CsePass;

impl Pass for CsePass {
    fn name(&self) -> &'static str {
        "cse"
    }

    fn run_on(&self, module: &mut Module) -> bool {
        for_each_function(module, |_, body| run_on_body(body))
    }
}

/// A structural key identifying a pure computation. Reuses the op's inline
/// list types so building a key allocates nothing for unspilled lists.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct CseKey {
    opcode: Opcode,
    operands: crate::body::OperandList,
    attrs: crate::body::AttrList,
    ty: Option<Type>,
}

/// Runs CSE on one body. Returns whether anything changed.
pub fn run_on_body(body: &mut Body) -> bool {
    let mut changed = false;
    for ri in 0..body.regions.len() {
        let region = RegionId(ri as u32);
        if body.regions[ri].blocks.is_empty() {
            continue;
        }
        if ri != 0 && body.regions[ri].parent.is_none() {
            continue;
        }
        changed |= cse_region(body, region);
    }
    changed
}

fn cse_region(body: &mut Body, region: RegionId) -> bool {
    let tree = DomTree::compute(body, region);
    let blocks: Vec<BlockId> = body.regions[region.index()].blocks.clone();
    let mut table: HashMap<CseKey, (ValueId, BlockId)> = HashMap::new();
    let mut changed = false;
    for &block in &blocks {
        if !tree.is_reachable(block) {
            continue;
        }
        let ops = body.blocks[block.index()].ops.clone();
        for op in ops {
            let data = &body.ops[op.index()];
            if data.dead
                || data.opcode.purity() != Purity::Pure
                || !data.regions.is_empty()
                || data.results.len() != 1
            {
                continue;
            }
            let key = CseKey {
                opcode: data.opcode,
                operands: data.operands.clone(),
                attrs: data.attrs.clone(),
                ty: data.result().map(|r| body.value_type(r)),
            };
            match table.get(&key) {
                Some(&(existing, def_block))
                    if def_block == block || tree.dominates(def_block, block) =>
                {
                    let result = body.ops[op.index()].result().unwrap();
                    body.replace_all_uses(result, existing);
                    body.erase_op(op);
                    changed = true;
                }
                _ => {
                    let result = body.ops[op.index()].result().unwrap();
                    table.insert(key, (result, block));
                }
            }
        }
    }
    changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::CmpPred;
    use crate::body::ROOT_REGION;
    use crate::builder::Builder;

    #[test]
    fn duplicate_constants_merge() {
        let (mut body, _) = Body::new(&[]);
        let entry = body.entry_block();
        let mut b = Builder::at_end(&mut body, entry);
        let c1 = b.const_i(7, Type::I64);
        let c2 = b.const_i(7, Type::I64);
        let s = b.addi(c1, c2);
        b.ret(s);
        assert!(run_on_body(&mut body));
        let add = body.defining_op(s).unwrap();
        let ops = body.ops[add.index()].operands.clone();
        assert_eq!(ops[0], ops[1]);
        assert_eq!(body.live_op_count(), 3);
    }

    #[test]
    fn different_attrs_do_not_merge() {
        let (mut body, _) = Body::new(&[]);
        let entry = body.entry_block();
        let mut b = Builder::at_end(&mut body, entry);
        let c1 = b.const_i(7, Type::I64);
        let c2 = b.const_i(8, Type::I64);
        let s = b.addi(c1, c2);
        b.ret(s);
        assert!(!run_on_body(&mut body));
    }

    #[test]
    fn duplicate_expression_across_dominated_block() {
        let (mut body, params) = Body::new(&[Type::I64]);
        let entry = body.entry_block();
        let next = body.new_block(ROOT_REGION, &[]);
        let mut b = Builder::at_end(&mut body, entry);
        let e1 = b.muli(params[0], params[0]);
        b.br(next, vec![]);
        let mut bn = Builder::at_end(&mut body, next);
        let e2 = bn.muli(params[0], params[0]);
        bn.ret(e2);
        assert!(run_on_body(&mut body));
        let ret = body.terminator(next).unwrap();
        assert_eq!(body.ops[ret.index()].operands, vec![e1]);
    }

    #[test]
    fn sibling_branches_do_not_cse_into_each_other() {
        // Two branches of a diamond: neither dominates the other.
        let (mut body, params) = Body::new(&[Type::I1, Type::I64]);
        let entry = body.entry_block();
        let a = body.new_block(ROOT_REGION, &[]);
        let c = body.new_block(ROOT_REGION, &[]);
        let mut b = Builder::at_end(&mut body, entry);
        b.cond_br(params[0], (a, vec![]), (c, vec![]));
        let mut ba = Builder::at_end(&mut body, a);
        let va = ba.muli(params[1], params[1]);
        ba.ret(va);
        let mut bc = Builder::at_end(&mut body, c);
        let vc = bc.muli(params[1], params[1]);
        bc.ret(vc);
        assert!(!run_on_body(&mut body));
        assert!(!body.ops[body.defining_op(vc).unwrap().index()].dead);
        assert!(!body.ops[body.defining_op(va).unwrap().index()].dead);
    }

    #[test]
    fn allocating_ops_not_merged() {
        // Two identical lp.construct allocations must stay distinct (their
        // results are separately consumed references).
        let (mut body, _) = Body::new(&[]);
        let entry = body.entry_block();
        let mut b = Builder::at_end(&mut body, entry);
        let n1 = b.lp_construct(0, vec![]);
        let n2 = b.lp_construct(0, vec![]);
        let pair = b.lp_construct(1, vec![n1, n2]);
        b.lp_ret(pair);
        assert!(!run_on_body(&mut body));
        assert_eq!(body.live_op_count(), 4);
    }

    #[test]
    fn cmp_with_same_pred_merges() {
        let (mut body, params) = Body::new(&[Type::I64, Type::I64]);
        let entry = body.entry_block();
        let mut b = Builder::at_end(&mut body, entry);
        let c1 = b.cmpi(CmpPred::Slt, params[0], params[1]);
        let c2 = b.cmpi(CmpPred::Slt, params[0], params[1]);
        let c3 = b.cmpi(CmpPred::Sgt, params[0], params[1]);
        let x = b.andi(c1, c2);
        let y = b.andi(x, c3);
        b.ret(y);
        let before = body.live_op_count();
        assert!(run_on_body(&mut body));
        assert_eq!(body.live_op_count(), before - 1);
    }
}
