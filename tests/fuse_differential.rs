//! Fused vs `--no-fuse` differential suite: the superinstruction pass must
//! be a pure dispatch optimization. For every workload (under every
//! compiler configuration) and every conformance case, the two decode
//! modes must produce byte-identical results and identical heap/allocation
//! counters — only the executed-cell counts may differ (fused runs fewer).
//!
//! Runtime errors count too: a program that traps must trap with the same
//! message in both modes.

use lambda_ssa::driver::conformance::handwritten;
use lambda_ssa::driver::pipelines::{compile, CompilerConfig};
use lambda_ssa::driver::workloads::{all, Scale};
use lambda_ssa::driver::{diff, par};
use lambda_ssa::vm::{run_program_with, DecodeOptions};

const MAX_STEPS: u64 = 500_000_000;

/// Runs one compiled program in both decode modes and checks equivalence.
/// Returns the fused outcome's rendering (for checksum asserts).
fn assert_modes_agree(label: &str, program: &lambda_ssa::vm::CompiledProgram) -> Option<String> {
    let fused = run_program_with(program, "main", MAX_STEPS, DecodeOptions::fused());
    let unfused = run_program_with(program, "main", MAX_STEPS, DecodeOptions::no_fuse());
    match (fused, unfused) {
        (Ok(f), Ok(u)) => {
            assert_eq!(f.rendered, u.rendered, "{label}: checksum diverged");
            assert_eq!(
                f.vm_stats.heap, u.vm_stats.heap,
                "{label}: heap counters diverged"
            );
            assert_eq!(
                f.vm_stats.max_depth, u.vm_stats.max_depth,
                "{label}: frame depth diverged"
            );
            assert_eq!(
                f.vm_stats.frame_allocs, u.vm_stats.frame_allocs,
                "{label}: frame allocation diverged"
            );
            assert!(
                f.stats.instructions <= u.stats.instructions,
                "{label}: fused dispatch must never execute more cells"
            );
            Some(f.rendered)
        }
        (Err(fe), Err(ue)) => {
            assert_eq!(fe.message, ue.message, "{label}: error message diverged");
            None
        }
        (f, u) => panic!(
            "{label}: one mode failed, the other did not (fused: {:?}, unfused: {:?})",
            f.map(|o| o.rendered),
            u.map(|o| o.rendered)
        ),
    }
}

#[test]
fn workloads_agree_fused_vs_unfused_across_all_pipelines() {
    let workloads = all(Scale::Test);
    par::par_map(&workloads, |w| {
        for config in diff::configs() {
            let label = format!("{} [{}]", w.name, config.label());
            let program = compile(&w.src, config).unwrap_or_else(|e| panic!("{label}: {e}"));
            let rendered = assert_modes_agree(&label, &program)
                .unwrap_or_else(|| panic!("{label}: workload must not trap"));
            assert_eq!(rendered, w.expected_test, "{label}");
        }
    });
}

#[test]
fn conformance_cases_agree_fused_vs_unfused() {
    // The hand-written corpus covers every language construct and the
    // runtime-error edges (div-by-zero and friends) — exactly the places a
    // fusion bug would hide.
    let cases = handwritten();
    par::par_map(&cases, |case| {
        let program = match compile(&case.src, CompilerConfig::mlir()) {
            Ok(p) => p,
            // Compile-time failures never reach the decoder.
            Err(_) => return,
        };
        assert_modes_agree(&case.name, &program);
    });
}
