//! Disassembles the decoded instruction streams of the benchmark
//! workloads, fused next to unfused — the tool to reach for when tuning
//! the superinstruction set.
//!
//! ```text
//! cargo run --release --example dump_decoded [workload]
//! ```

use lambda_ssa::driver::pipelines::{compile, CompilerConfig};
use lambda_ssa::driver::workloads::{all, Scale};
use lambda_ssa::vm::{decode_program_with, DecodeOptions};

fn main() {
    let filter = std::env::args().nth(1);
    for w in all(Scale::Test) {
        if filter.as_deref().is_some_and(|f| f != w.name) {
            continue;
        }
        let p = compile(&w.src, CompilerConfig::mlir()).expect("workload compiles");
        let fused = decode_program_with(&p, DecodeOptions::fused());
        let unfused = decode_program_with(&p, DecodeOptions::no_fuse());
        println!("==== {} ====", w.name);
        println!(
            "fusion: {:?} ({} superinstructions, {} cells saved)",
            fused.fusion,
            fused.fusion.superinstructions(),
            fused.fusion.cells_saved
        );
        for (f, uf) in fused.fns.iter().zip(&unfused.fns) {
            println!(
                "@{} (arity {}, {} regs, {} cells fused vs {} unfused)",
                f.name,
                f.arity,
                f.n_regs,
                f.code.len(),
                uf.code.len()
            );
            for (i, instr) in f.code.iter().enumerate() {
                println!("  {i:4}: {instr:?}");
            }
        }
    }
}
