//! # lssa-vm: the execution engine
//!
//! Stand-in for the paper's LLVM backend: compiles fully-lowered flat-CFG IR
//! modules ([`compile`]) to a register bytecode ([`bytecode`]), pre-decodes
//! it into a compact pointer-free execution stream with peephole-fused
//! superinstructions ([`decode`]), and executes it ([`exec`]) over the
//! shared `lssa-rt` heap.
//!
//! Three properties matter for the reproduction:
//!
//! - **Guaranteed tail calls** — `TailCall` reuses the current frame's
//!   register file in place, so `musttail`-annotated calls (§III-E) run in
//!   constant stack space with zero steady-state heap allocation;
//! - **Determinism** — instruction/call/allocation counters provide a
//!   noise-free performance metric next to wall-clock time, keeping the
//!   evaluation's *shape* reproducible on any machine;
//! - **Instrumentation** — [`VmStatistics`] reports per-opcode-class
//!   executed/allocation counts, frame-pool behaviour, and wall time: the
//!   run-side mirror of the compile-side per-pass statistics.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod bytecode;
pub mod compile;
pub mod decode;
pub mod exec;

pub use bytecode::{CompiledFn, CompiledProgram, DecodeCache, Instr, Reg};
pub use compile::{compile_module, CompileError};
pub use decode::{
    decode_program, decode_program_with, DecodeOptions, DecodedFn, DecodedInstr, DecodedProgram,
    FusionStats, OpClass, RenumberStats,
};
pub use exec::{
    run_decoded, run_decoded_with, run_program, run_program_opts, run_program_with, CancelToken,
    DispatchMode, ExecOptions, ExecStats, FaultPlan, JobLimits, RunOutcome, Vm, VmError,
    VmErrorKind, VmStatistics,
};
