//! Criterion bench regenerating Figure 10's data series: each benchmark
//! under (a) λrc-simplified input, (b) rgn optimizations only, and (c) no
//! optimization.
//!
//! `cargo bench -p lssa-bench --bench fig10_rgn_opts`

use criterion::{criterion_group, criterion_main, Criterion};
use lssa_bench::{build, fig10_configs, MAX_STEPS};
use lssa_driver::workloads::{all, Scale};
use std::time::Duration;

fn fig10(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig10");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(500));
    for w in all(Scale::Bench) {
        for (label, config) in fig10_configs() {
            let program = build(&w, config);
            group.bench_function(format!("{}/{label}", w.name), |b| {
                b.iter(|| lssa_vm::run_program(&program, "main", MAX_STEPS).unwrap())
            });
        }
    }
    group.finish();
}

criterion_group!(benches, fig10);
criterion_main!(benches);
