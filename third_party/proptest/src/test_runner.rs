//! Test-runner plumbing: configuration, case outcomes, and the
//! deterministic RNG strategies draw from.

/// Runner configuration, consumed by the [`proptest!`](crate::proptest)
/// macro's generated test bodies.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
    /// Total rejected cases (via `prop_assume!`) tolerated before the run
    /// is abandoned as vacuous.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_global_rejects: 65_536,
        }
    }
}

/// Outcome of a single property-test case body.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The case's assumptions were not met; draw another input.
    Reject(String),
    /// The property failed.
    Fail(String),
}

impl TestCaseError {
    /// Builds a failure outcome.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Builds a rejection outcome.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// Resolves the seed for a named test: `PROPTEST_SEED` if set (decimal or
/// `0x`-prefixed hex), otherwise an FNV-1a hash of the test name so every
/// test explores a distinct but reproducible stream.
pub fn resolve_seed(test_name: &str) -> u64 {
    if let Ok(s) = std::env::var("PROPTEST_SEED") {
        let parsed = if let Some(hex) = s.strip_prefix("0x") {
            u64::from_str_radix(hex, 16).ok()
        } else {
            s.parse().ok()
        };
        if let Some(seed) = parsed {
            return seed;
        }
    }
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x1_0000_0000_01b3);
    }
    hash
}

/// Deterministic SplitMix64 generator used to drive strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Builds a generator from a seed.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Returns the next 128 random bits.
    pub fn next_u128(&mut self) -> u128 {
        ((self.next_u64() as u128) << 64) | self.next_u64() as u128
    }

    /// Draws a seed for an independent per-case generator.
    pub fn fork_seed(&mut self) -> u64 {
        self.next_u64()
    }

    /// Samples uniformly from `0..bound` (`bound > 0`).
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }
}
