//! Lowering `lp` control flow to the `rgn` dialect (Figure 8).
//!
//! - `lp.switch` with one case + default → regions wrapped in `rgn.val`,
//!   selected with `arith.select` on an equality test (Fig 8A);
//! - `lp.switch` with many cases → `arith.switch_val` (Fig 8B);
//! - `lp.joinpoint` → the join-point region becomes a `rgn.val`; the
//!   pre-jump code is spliced inline; `lp.jump` becomes `rgn.run` (Fig 8C).
//!
//! After this pass a function contains no `lp.switch` / `lp.joinpoint` /
//! `lp.jump`: every transfer of control is `rgn.run` on a region value that
//! flows through ordinary `select` / `switch_val` — which is what lets
//! classical SSA optimizations act on functional control flow.

use lssa_ir::attr::{AttrKey, CmpPred};
use lssa_ir::body::Body;
use lssa_ir::ids::{OpId, Symbol};
use lssa_ir::opcode::Opcode;
use lssa_ir::prelude::*;

/// Converts every structured `lp` terminator in `body` to `rgn` form.
///
/// # Panics
///
/// Panics on malformed lp input (multi-block pre-jump regions, switches
/// without attributes) — the lp verifier rules these out.
pub fn lower_body(body: &mut Body) {
    loop {
        let target = body.walk_ops().into_iter().find(|&op| {
            matches!(
                body.ops[op.index()].opcode,
                Opcode::LpSwitch | Opcode::LpJoinPoint
            )
        });
        match target {
            Some(op) if body.ops[op.index()].opcode == Opcode::LpSwitch => lower_switch(body, op),
            Some(op) => lower_joinpoint(body, op),
            None => break,
        }
    }
    debug_assert!(
        !body
            .walk_ops()
            .iter()
            .any(|&op| body.ops[op.index()].opcode == Opcode::LpJump),
        "dangling lp.jump after rgn lowering"
    );
}

/// Fig 8A/8B: switch → region values + select / switch_val + run.
fn lower_switch(body: &mut Body, op: OpId) {
    let block = body.ops[op.index()].parent.expect("detached switch");
    let tag = body.ops[op.index()].operands[0];
    let cases = body.ops[op.index()]
        .attr(AttrKey::Cases)
        .and_then(|a| a.as_int_list())
        .expect("lp.switch without cases")
        .to_vec();
    let regions = body.ops[op.index()].regions.clone();
    debug_assert_eq!(regions.len(), cases.len() + 1);
    body.detach_op(op);
    // One rgn.val per case region (transferring the region).
    let mut region_vals = Vec::with_capacity(regions.len());
    for &r in &regions {
        body.detach_region(r);
        let rv = body.create_op(Opcode::RgnVal, vec![], &[Type::Rgn], vec![]);
        body.attach_region(rv, r);
        body.push_op(block, rv);
        region_vals.push(body.ops[rv.index()].result().unwrap());
    }
    let default_val = *region_vals.last().unwrap();
    let selected = {
        let mut b = Builder::at_end(body, block);
        match cases.as_slice() {
            [] => default_val,
            [single] => {
                // Two-way: select on an equality comparison.
                let c = b.const_i(*single, Type::I8);
                let eq = b.cmpi(CmpPred::Eq, tag, c);
                b.select(eq, region_vals[0], default_val)
            }
            _ => b.switch_val(
                tag,
                cases.clone(),
                region_vals[..region_vals.len() - 1].to_vec(),
                default_val,
            ),
        }
    };
    let mut b = Builder::at_end(body, block);
    b.rgn_run(selected, vec![]);
    body.erase_op(op);
}

/// Fig 8C: joinpoint → rgn.val + inline pre-jump code; jump → run.
fn lower_joinpoint(body: &mut Body, op: OpId) {
    let block = body.ops[op.index()].parent.expect("detached joinpoint");
    let label = body.ops[op.index()]
        .attr(AttrKey::Label)
        .and_then(|a| a.as_sym())
        .expect("lp.joinpoint without label");
    let regions = body.ops[op.index()].regions.clone();
    let [jp_region, pre_region] = regions[..] else {
        panic!("lp.joinpoint needs exactly two regions");
    };
    body.detach_op(op);
    // The join-point region becomes a first-class region value.
    body.detach_region(jp_region);
    let rv = body.create_op(Opcode::RgnVal, vec![], &[Type::Rgn], vec![]);
    body.attach_region(rv, jp_region);
    body.push_op(block, rv);
    let lbl = body.ops[rv.index()].result().unwrap();
    // Splice the (single-block) pre-jump code inline.
    let pre_blocks = body.regions[pre_region.index()].blocks.clone();
    assert_eq!(
        pre_blocks.len(),
        1,
        "pre-jump region must be a single block"
    );
    let pre = pre_blocks[0];
    let moved = std::mem::take(&mut body.blocks[pre.index()].ops);
    for &m in &moved {
        body.ops[m.index()].parent = Some(block);
    }
    body.blocks[block.index()].ops.extend(moved.iter().copied());
    body.blocks[pre.index()].parent = None;
    body.regions[pre_region.index()].blocks.clear();
    body.detach_region(pre_region);
    body.erase_op(op);
    // Rewrite jumps to this label (they are all inside the spliced code or
    // regions nested within it) into rgn.run of the region value.
    rewrite_jumps(body, &moved, label, lbl);
}

fn rewrite_jumps(body: &mut Body, roots: &[OpId], label: Symbol, lbl: lssa_ir::ids::ValueId) {
    let mut work: Vec<OpId> = roots.to_vec();
    while let Some(op) = work.pop() {
        if body.ops[op.index()].dead {
            continue;
        }
        for &r in &body.ops[op.index()].regions.clone() {
            for &b in &body.regions[r.index()].blocks.clone() {
                work.extend(body.blocks[b.index()].ops.iter().copied());
            }
        }
        let is_target = body.ops[op.index()].opcode == Opcode::LpJump
            && body.ops[op.index()]
                .attr(AttrKey::Label)
                .and_then(|a| a.as_sym())
                == Some(label);
        if is_target {
            let args = body.ops[op.index()].operands.clone();
            let parent = body.ops[op.index()].parent.expect("detached jump");
            body.erase_op(op);
            let mut operands = vec![lbl];
            operands.extend(args);
            let run = body.create_op(Opcode::RgnRun, operands, &[], vec![]);
            body.push_op(parent, run);
        }
    }
}

/// Convenience: lowers every function of a module.
pub fn lower_module(module: &mut Module) {
    lssa_ir::pass::for_each_function(module, |_, body| {
        lower_body(body);
        true
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lp::from_lambda::lower_program;
    use lssa_ir::printer::print_module;
    use lssa_ir::verifier::verify_module;
    use lssa_lambda::{insert_rc, parse_program};

    fn lower(src: &str) -> Module {
        let p = parse_program(src).unwrap();
        lssa_lambda::check_program(&p).unwrap();
        let rc = insert_rc(&p);
        let mut m = lower_program(&rc);
        lower_module(&mut m);
        if let Err(errs) = verify_module(&m) {
            let msgs: Vec<String> = errs.iter().map(|e| e.to_string()).collect();
            panic!(
                "rgn module does not verify:\n{}\n{}",
                msgs.join("\n"),
                print_module(&m)
            );
        }
        m
    }

    fn assert_no_lp_control(m: &Module) {
        for f in &m.funcs {
            let Some(body) = &f.body else { continue };
            for op in body.walk_ops() {
                assert!(
                    !matches!(
                        body.ops[op.index()].opcode,
                        Opcode::LpSwitch | Opcode::LpJoinPoint | Opcode::LpJump
                    ),
                    "{} survived rgn lowering",
                    body.ops[op.index()].opcode
                );
            }
        }
    }

    #[test]
    fn two_way_switch_becomes_select() {
        // Fig 8A: a boolean case lowers via arith.select.
        let m = lower(
            r#"
def f(b) := if b then 1 else 2
"#,
        );
        assert_no_lp_control(&m);
        let text = print_module(&m);
        assert!(text.contains("rgn.val"), "{text}");
        assert!(text.contains("arith.select"), "{text}");
        assert!(text.contains("rgn.run"), "{text}");
    }

    #[test]
    fn n_way_switch_becomes_switch_val() {
        // Fig 8B.
        let m = lower(
            r#"
inductive Shape := Dot | Line(a) | Tri(a, b) | Quad(a, b, c)
def corners(s) :=
  case s of
  | Dot => 0
  | Line(a) => 2
  | Tri(a, b) => 3
  | Quad(a, b, c) => 4
  end
"#,
        );
        assert_no_lp_control(&m);
        let text = print_module(&m);
        assert!(text.contains("arith.switch_val"), "{text}");
    }

    #[test]
    fn joinpoint_becomes_region_value_with_args() {
        // Fig 8C.
        let m = lower(
            r#"
def f(b, y) :=
  let x := case b of | true => 1 | false => 2 end;
  x + y
"#,
        );
        assert_no_lp_control(&m);
        let text = print_module(&m);
        // The join point takes (captured y, result x) — a region value run
        // with two arguments from each branch.
        assert!(text.contains("rgn.run"), "{text}");
        let f = m.func_by_name("f").unwrap();
        let body = f.body.as_ref().unwrap();
        let has_run_with_args = body.walk_ops().iter().any(|&op| {
            body.ops[op.index()].opcode == Opcode::RgnRun && body.ops[op.index()].operands.len() > 1
        });
        assert!(has_run_with_args, "{text}");
    }

    #[test]
    fn nested_cases_lower_recursively() {
        let m = lower(
            r#"
def eval(x, y, z) :=
  case x of
  | 0 =>
    case y of
    | 2 => 40
    | _ =>
      case z of
      | 2 => 50
      | _ => 60
      end
    end
  | _ => 60
  end
"#,
        );
        assert_no_lp_control(&m);
        let f = m.func_by_name("eval").unwrap();
        let body = f.body.as_ref().unwrap();
        let n_vals = body
            .walk_ops()
            .iter()
            .filter(|&&op| body.ops[op.index()].opcode == Opcode::RgnVal)
            .count();
        assert!(n_vals >= 6, "expected nested region values, got {n_vals}");
    }

    #[test]
    fn region_values_feed_only_selectors_and_runs() {
        let m = lower(
            r#"
inductive List := Nil | Cons(h, t)
def len(xs) :=
  case xs of
  | Nil => 0
  | Cons(h, t) => 1 + len(t)
  end
"#,
        );
        // The verifier inside `lower` already enforces the rgn restriction;
        // this spells the property out.
        for f in &m.funcs {
            let Some(body) = &f.body else { continue };
            for op in body.walk_ops() {
                for (i, &v) in body.ops[op.index()].operands.iter().enumerate() {
                    if body.value_type(v) == Type::Rgn {
                        let ok = matches!(
                            (body.ops[op.index()].opcode, i),
                            (Opcode::Select, 1 | 2) | (Opcode::SwitchVal, _) | (Opcode::RgnRun, 0)
                        );
                        assert!(ok);
                    }
                }
            }
        }
    }
}
