//! # lssa-vm: the execution engine
//!
//! Stand-in for the paper's LLVM backend: compiles fully-lowered flat-CFG IR
//! modules ([`compile`]) to a register bytecode ([`bytecode`]) and executes
//! them ([`exec`]) over the shared `lssa-rt` heap.
//!
//! Two properties matter for the reproduction:
//!
//! - **Guaranteed tail calls** — `TailCall` replaces the current frame, so
//!   `musttail`-annotated calls (§III-E) run in constant stack space;
//! - **Determinism** — instruction/call/allocation counters provide a
//!   noise-free performance metric next to wall-clock time, keeping the
//!   evaluation's *shape* reproducible on any machine.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod bytecode;
pub mod compile;
pub mod exec;

pub use bytecode::{CompiledFn, CompiledProgram, Instr, Reg};
pub use compile::{compile_module, CompileError};
pub use exec::{run_program, ExecStats, RunOutcome, Vm, VmError};
