//! Compiling flat-CFG IR to bytecode (the project's "LLVM backend").
//!
//! Accepts modules whose functions are fully lowered: `arith` + `cf` +
//! `func` ops plus the *data* subset of `lp` (constants, constructors,
//! projections, closures, refcounting). Region-carrying ops are rejected —
//! run the `lssa-core` lowerings first.

use crate::bytecode::{BinOp, CompiledFn, CompiledProgram, Instr, Reg};
use lssa_ir::attr::AttrKey;
use lssa_ir::body::{Body, ROOT_REGION};
use lssa_ir::ids::{BlockId, Symbol, ValueId};
use lssa_ir::module::Module;
use lssa_ir::opcode::Opcode;
use lssa_rt::{Builtin, Nat};
use std::collections::HashMap;
use std::fmt;

/// A compilation failure (unsupported shape reaching the backend).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompileError {
    /// Description.
    pub message: String,
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bytecode compilation error: {}", self.message)
    }
}

impl std::error::Error for CompileError {}

fn err(message: impl Into<String>) -> CompileError {
    CompileError {
        message: message.into(),
    }
}

/// Compiles a lowered module to bytecode.
///
/// # Errors
///
/// Returns an error if an op that requires further lowering (regions,
/// `lp.switch`, `rgn.*`) reaches the backend.
pub fn compile_module(module: &Module) -> Result<CompiledProgram, CompileError> {
    let mut program = CompiledProgram::default();
    // User functions get VM indices in module order.
    let mut fn_indices: HashMap<Symbol, u32> = HashMap::new();
    let mut next = 0u32;
    for f in &module.funcs {
        if !f.is_extern() {
            fn_indices.insert(f.name, next);
            next += 1;
        }
    }
    for g in &module.globals {
        program.globals.push(module.name_of(g.name).to_string());
    }
    for f in &module.funcs {
        let Some(body) = &f.body else { continue };
        let compiled = FnCompiler {
            module,
            body,
            fn_indices: &fn_indices,
            program: &mut program,
            regs: HashMap::new(),
            next_reg: 0,
        }
        .compile(module.name_of(f.name), f.sig.params.len())?;
        program.fns.push(compiled);
    }
    Ok(program)
}

struct FnCompiler<'a> {
    module: &'a Module,
    body: &'a Body,
    fn_indices: &'a HashMap<Symbol, u32>,
    program: &'a mut CompiledProgram,
    regs: HashMap<ValueId, Reg>,
    next_reg: u32,
}

impl FnCompiler<'_> {
    fn reg(&mut self, v: ValueId) -> Reg {
        if let Some(&r) = self.regs.get(&v) {
            return r;
        }
        let r = Reg(u16::try_from(self.next_reg).expect("register file exhausted"));
        self.next_reg += 1;
        self.regs.insert(v, r);
        r
    }

    fn fresh_reg(&mut self) -> Reg {
        let r = Reg(u16::try_from(self.next_reg).expect("register file exhausted"));
        self.next_reg += 1;
        r
    }

    fn callee_of(&self, op: lssa_ir::ids::OpId) -> Result<Symbol, CompileError> {
        self.body.ops[op.index()]
            .attr(AttrKey::Callee)
            .and_then(|a| a.as_sym())
            .ok_or_else(|| err("call without callee"))
    }

    fn compile(mut self, name: &str, arity: usize) -> Result<CompiledFn, CompileError> {
        // Parameters occupy registers 0..arity.
        for &p in self.body.params() {
            self.reg(p);
        }
        debug_assert_eq!(self.next_reg as usize, arity);
        let blocks = self.body.regions[ROOT_REGION.index()].blocks.clone();
        let mut code: Vec<Instr> = Vec::new();
        let mut block_offsets: HashMap<BlockId, usize> = HashMap::new();
        // Fixups: (instruction index, which target slot, destination block).
        let mut fixups: Vec<(usize, usize, BlockId)> = Vec::new();
        for &block in &blocks {
            block_offsets.insert(block, code.len());
            for &op in &self.body.blocks[block.index()].ops.clone() {
                self.compile_op(op, &mut code, &mut fixups)?;
            }
        }
        for (at, slot, dest) in fixups {
            let target = *block_offsets
                .get(&dest)
                .ok_or_else(|| err(format!("branch to unplaced block {dest}")))?;
            patch_target(&mut code[at], slot, target);
        }
        Ok(CompiledFn {
            name: name.to_string(),
            arity: arity as u16,
            n_regs: u16::try_from(self.next_reg).expect("register file exhausted"),
            code,
        })
    }

    /// Emits moves realizing a branch's argument transfer, then returns the
    /// destination block. Uses temporaries for a safe parallel move.
    fn emit_edge(
        &mut self,
        code: &mut Vec<Instr>,
        dest: BlockId,
        args: &[ValueId],
    ) -> Result<(), CompileError> {
        if args.is_empty() {
            return Ok(());
        }
        let params = self.body.blocks[dest.index()].args.clone();
        let srcs: Vec<Reg> = args.iter().map(|&a| self.reg(a)).collect();
        let dsts: Vec<Reg> = params.iter().map(|&p| self.reg(p)).collect();
        // Fast path: no destination is also a source — plain moves suffice.
        let conflict = dsts.iter().any(|d| srcs.contains(d));
        if !conflict {
            for (&dst, &src) in dsts.iter().zip(&srcs) {
                if dst != src {
                    code.push(Instr::Move { dst, src });
                }
            }
            return Ok(());
        }
        // General parallel move: stage through temporaries.
        let temps: Vec<Reg> = srcs
            .iter()
            .map(|&src| {
                let t = self.fresh_reg();
                code.push(Instr::Move { dst: t, src });
                t
            })
            .collect();
        for (&dst, t) in dsts.iter().zip(temps) {
            code.push(Instr::Move { dst, src: t });
        }
        Ok(())
    }

    fn compile_op(
        &mut self,
        op: lssa_ir::ids::OpId,
        code: &mut Vec<Instr>,
        fixups: &mut Vec<(usize, usize, BlockId)>,
    ) -> Result<(), CompileError> {
        use Opcode::*;
        let data = &self.body.ops[op.index()];
        let opcode = data.opcode;
        let operands = data.operands.clone();
        let result = data.results.first().copied();
        let srcs: Vec<Reg> = operands.iter().map(|&v| self.reg(v)).collect();
        match opcode {
            ConstI => {
                let v = self.body.ops[op.index()]
                    .attr(AttrKey::Value)
                    .and_then(|a| a.as_int())
                    .ok_or_else(|| err("constant without value"))?;
                let ty = self.body.value_type(result.unwrap());
                // i8/i1 raw values are kept zero-extended.
                let v = match ty.bit_width() {
                    Some(bits) if bits < 64 => v & ((1i64 << bits) - 1),
                    _ => v,
                };
                let dst = self.reg(result.unwrap());
                code.push(Instr::ConstInt { dst, v });
            }
            AddI | SubI | MulI | DivI | RemI | AndI | OrI | XorI => {
                let binop = match opcode {
                    AddI => BinOp::Add,
                    SubI => BinOp::Sub,
                    MulI => BinOp::Mul,
                    DivI => BinOp::Div,
                    RemI => BinOp::Rem,
                    AndI => BinOp::And,
                    OrI => BinOp::Or,
                    XorI => BinOp::Xor,
                    _ => unreachable!(),
                };
                let dst = self.reg(result.unwrap());
                code.push(Instr::Bin {
                    op: binop,
                    dst,
                    a: srcs[0],
                    b: srcs[1],
                });
            }
            CmpI => {
                let pred = self.body.ops[op.index()]
                    .attr(AttrKey::Pred)
                    .and_then(|a| a.as_pred())
                    .ok_or_else(|| err("cmpi without predicate"))?;
                let dst = self.reg(result.unwrap());
                code.push(Instr::Cmp {
                    pred,
                    dst,
                    a: srcs[0],
                    b: srcs[1],
                });
            }
            Select => {
                let dst = self.reg(result.unwrap());
                code.push(Instr::Select {
                    dst,
                    c: srcs[0],
                    a: srcs[1],
                    b: srcs[2],
                });
            }
            ExtUI | TruncI => {
                let to = self.body.value_type(result.unwrap());
                let dst = self.reg(result.unwrap());
                let mask = match to.bit_width() {
                    Some(bits) if bits < 64 => (1u64 << bits) - 1,
                    _ => u64::MAX,
                };
                code.push(Instr::Mask {
                    dst,
                    src: srcs[0],
                    mask,
                });
            }
            Br => {
                let succ = self.body.ops[op.index()].successors[0].clone();
                self.emit_edge(code, succ.block, &succ.args)?;
                fixups.push((code.len(), 0, succ.block));
                code.push(Instr::Jump { target: usize::MAX });
            }
            CondBr => {
                let succs = self.body.ops[op.index()].successors.clone();
                // Edge trampolines handle per-edge argument transfer.
                let branch_at = code.len();
                code.push(Instr::Branch {
                    cond: srcs[0],
                    then_t: usize::MAX,
                    else_t: usize::MAX,
                });
                for (slot, s) in succs.iter().enumerate() {
                    if s.args.is_empty() {
                        fixups.push((branch_at, slot, s.block));
                    } else {
                        let tramp = code.len();
                        patch_target(&mut code[branch_at], slot, tramp);
                        self.emit_edge(code, s.block, &s.args)?;
                        fixups.push((code.len(), 0, s.block));
                        code.push(Instr::Jump { target: usize::MAX });
                    }
                }
            }
            SwitchBr => {
                let cases = self.body.ops[op.index()]
                    .attr(AttrKey::Cases)
                    .and_then(|a| a.as_int_list())
                    .ok_or_else(|| err("switch without cases"))?
                    .to_vec();
                let succs = self.body.ops[op.index()].successors.clone();
                let switch_at = code.len();
                code.push(Instr::Switch {
                    idx: srcs[0],
                    cases: cases.iter().map(|&c| (c, usize::MAX)).collect(),
                    default: usize::MAX,
                });
                for (slot, s) in succs.iter().enumerate() {
                    if s.args.is_empty() {
                        fixups.push((switch_at, slot, s.block));
                    } else {
                        let tramp = code.len();
                        patch_target(&mut code[switch_at], slot, tramp);
                        self.emit_edge(code, s.block, &s.args)?;
                        fixups.push((code.len(), 0, s.block));
                        code.push(Instr::Jump { target: usize::MAX });
                    }
                }
            }
            Unreachable => code.push(Instr::Trap),
            Call | TailCall => {
                let callee = self.callee_of(op)?;
                let name = self.module.name_of(callee);
                if let Some(&func) = self.fn_indices.get(&callee) {
                    if opcode == Call {
                        let dst = self.reg(result.unwrap());
                        code.push(Instr::Call {
                            dst,
                            func,
                            args: srcs,
                        });
                    } else {
                        code.push(Instr::TailCall { func, args: srcs });
                    }
                } else {
                    let builtin: Builtin = name
                        .parse()
                        .map_err(|_| err(format!("call to unknown extern @{name}")))?;
                    let mask = self.body.ops[op.index()]
                        .attr(AttrKey::BorrowMask)
                        .and_then(|a| a.as_int())
                        .unwrap_or(0) as u8;
                    if opcode == Call {
                        let dst = self.reg(result.unwrap());
                        code.push(Instr::CallBuiltin {
                            dst,
                            builtin,
                            args: srcs,
                            mask,
                        });
                    } else {
                        let dst = self.fresh_reg();
                        code.push(Instr::CallBuiltin {
                            dst,
                            builtin,
                            args: srcs,
                            mask,
                        });
                        code.push(Instr::Ret { src: dst });
                    }
                }
            }
            Return => code.push(Instr::Ret { src: srcs[0] }),
            LpInt => {
                let v = self.body.ops[op.index()]
                    .attr(AttrKey::Value)
                    .and_then(|a| a.as_int())
                    .ok_or_else(|| err("lp.int without value"))?;
                let dst = self.reg(result.unwrap());
                code.push(Instr::LpInt { dst, v });
            }
            LpBigInt => {
                let digits = self.body.ops[op.index()]
                    .attr(AttrKey::Value)
                    .and_then(|a| a.as_str())
                    .ok_or_else(|| err("lp.bigint without value"))?;
                let n = Nat::from_str_decimal(digits)
                    .map_err(|e| err(format!("bad bigint literal: {e}")))?;
                let idx = self.program.big_pool.len() as u32;
                self.program.big_pool.push(n);
                let dst = self.reg(result.unwrap());
                code.push(Instr::LpBig { dst, idx });
            }
            LpStr => {
                let s = self.body.ops[op.index()]
                    .attr(AttrKey::Value)
                    .and_then(|a| a.as_str())
                    .ok_or_else(|| err("lp.str without value"))?
                    .to_string();
                let idx = self.program.str_pool.len() as u32;
                self.program.str_pool.push(s);
                let dst = self.reg(result.unwrap());
                code.push(Instr::LpStr { dst, idx });
            }
            LpConstruct => {
                let tag = self.body.ops[op.index()]
                    .attr(AttrKey::Tag)
                    .and_then(|a| a.as_int())
                    .ok_or_else(|| err("lp.construct without tag"))?;
                if !(0..128).contains(&tag) {
                    return Err(err(format!("constructor tag {tag} out of range")));
                }
                let dst = self.reg(result.unwrap());
                code.push(Instr::Construct {
                    dst,
                    tag: tag as u32,
                    args: srcs,
                });
            }
            LpGetLabel => {
                let dst = self.reg(result.unwrap());
                code.push(Instr::GetLabel { dst, src: srcs[0] });
            }
            LpProject => {
                let idx = self.body.ops[op.index()]
                    .attr(AttrKey::Index)
                    .and_then(|a| a.as_int())
                    .ok_or_else(|| err("lp.project without index"))?;
                let dst = self.reg(result.unwrap());
                code.push(Instr::Project {
                    dst,
                    src: srcs[0],
                    idx: idx as u32,
                });
            }
            LpPap => {
                let callee = self.callee_of(op)?;
                let arity = self.body.ops[op.index()]
                    .attr(AttrKey::Arity)
                    .and_then(|a| a.as_int())
                    .ok_or_else(|| err("lp.pap without arity"))?;
                let &func = self
                    .fn_indices
                    .get(&callee)
                    .ok_or_else(|| err("pap of extern function"))?;
                let dst = self.reg(result.unwrap());
                code.push(Instr::Pap {
                    dst,
                    func,
                    arity: arity as u16,
                    args: srcs,
                });
            }
            LpPapExtend => {
                let dst = self.reg(result.unwrap());
                code.push(Instr::PapExtend {
                    dst,
                    closure: srcs[0],
                    args: srcs[1..].to_vec(),
                });
            }
            LpInc => code.push(Instr::Inc { src: srcs[0] }),
            LpDec => code.push(Instr::Dec { src: srcs[0] }),
            LpGlobalLoad | LpGlobalStore => {
                let g = self.body.ops[op.index()]
                    .attr(AttrKey::Global)
                    .and_then(|a| a.as_sym())
                    .ok_or_else(|| err("global op without symbol"))?;
                let name = self.module.name_of(g);
                let idx = self
                    .program
                    .globals
                    .iter()
                    .position(|n| n == name)
                    .ok_or_else(|| err(format!("unknown global @{name}")))?
                    as u32;
                if opcode == LpGlobalLoad {
                    let dst = self.reg(result.unwrap());
                    code.push(Instr::GlobalLoad { dst, idx });
                } else {
                    code.push(Instr::GlobalStore { idx, src: srcs[0] });
                }
            }
            _ => {
                return Err(err(format!(
                    "{opcode} requires lowering before bytecode compilation"
                )))
            }
        }
        Ok(())
    }
}

fn patch_target(instr: &mut Instr, slot: usize, target: usize) {
    match instr {
        Instr::Jump { target: t } => *t = target,
        Instr::Branch { then_t, else_t, .. } => {
            if slot == 0 {
                *then_t = target;
            } else {
                *else_t = target;
            }
        }
        Instr::Switch { cases, default, .. } => {
            if slot < cases.len() {
                cases[slot].1 = target;
            } else {
                *default = target;
            }
        }
        other => panic!("cannot patch target of {other:?}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lssa_ir::builder::Builder;
    use lssa_ir::types::{Signature, Type};

    #[test]
    fn compiles_simple_function() {
        let mut m = Module::new();
        let (mut body, params) = Body::new(&[Type::Obj]);
        let entry = body.entry_block();
        let mut b = Builder::at_end(&mut body, entry);
        let one = b.lp_int(1);
        b.lp_inc(params[0]);
        let c = b.lp_construct(1, vec![params[0], one]);
        b.ret(c);
        m.add_function("mk", Signature::obj(1), body);
        let p = compile_module(&m).unwrap();
        assert_eq!(p.fns.len(), 1);
        assert_eq!(p.fns[0].arity, 1);
        assert!(matches!(p.fns[0].code[0], Instr::LpInt { .. }));
        assert!(matches!(p.fns[0].code.last(), Some(Instr::Ret { .. })));
    }

    #[test]
    fn rejects_unlowered_ops() {
        let mut m = Module::new();
        let (mut body, _) = Body::new(&[]);
        let entry = body.entry_block();
        let mut b = Builder::at_end(&mut body, entry);
        let (rv, inner) = b.rgn_val(&[]);
        {
            let mut ib = Builder::at_end(b.body, inner);
            let v = ib.lp_int(0);
            ib.lp_ret(v);
        }
        let mut b = Builder::at_end(&mut body, entry);
        b.rgn_run(rv, vec![]);
        m.add_function("f", Signature::obj(0), body);
        let e = compile_module(&m).unwrap_err();
        assert!(e.message.contains("requires lowering"), "{e}");
    }

    #[test]
    fn branch_targets_resolved() {
        let mut m = Module::new();
        let (mut body, params) = Body::new(&[Type::I1]);
        let entry = body.entry_block();
        let t = body.new_block(ROOT_REGION, &[]);
        let e2 = body.new_block(ROOT_REGION, &[]);
        let mut b = Builder::at_end(&mut body, entry);
        b.cond_br(params[0], (t, vec![]), (e2, vec![]));
        let mut bt = Builder::at_end(&mut body, t);
        let v = bt.lp_int(1);
        bt.ret(v);
        let mut be = Builder::at_end(&mut body, e2);
        let v = be.lp_int(2);
        be.ret(v);
        m.add_function("f", Signature::new(vec![Type::I1], Type::Obj), body);
        let p = compile_module(&m).unwrap();
        let code = &p.fns[0].code;
        let Instr::Branch { then_t, else_t, .. } = code[0] else {
            panic!("expected branch, got {:?}", code[0]);
        };
        assert!(then_t < code.len() && else_t < code.len());
        assert_ne!(then_t, else_t);
        assert_ne!(then_t, usize::MAX);
    }

    #[test]
    fn block_args_become_moves() {
        let mut m = Module::new();
        let (mut body, params) = Body::new(&[Type::Obj]);
        let entry = body.entry_block();
        let join = body.new_block(ROOT_REGION, &[Type::Obj]);
        let mut b = Builder::at_end(&mut body, entry);
        b.br(join, vec![params[0]]);
        let arg = body.blocks[join.index()].args[0];
        let mut bj = Builder::at_end(&mut body, join);
        bj.ret(arg);
        m.add_function("f", Signature::obj(1), body);
        let p = compile_module(&m).unwrap();
        let moves = p.fns[0]
            .code
            .iter()
            .filter(|i| matches!(i, Instr::Move { .. }))
            .count();
        // Non-conflicting edge: a single direct move.
        assert_eq!(moves, 1);
    }
}
