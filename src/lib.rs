//! # lambda-ssa — λ the Ultimate SSA, reproduced in Rust
//!
//! Umbrella crate re-exporting the whole system. See the individual crates:
//!
//! - [`rt`] — runtime (refcounted heap, bignums, closures),
//! - [`ir`] — SSA+regions compiler IR (MLIR stand-in),
//! - [`lambda`] — λpure/λrc frontend, simplifier, interpreter,
//! - [`syntax`] — the `.lssa` text frontend (parser, checker, formatter),
//! - [`core`] — the lp and rgn dialects (the paper's contribution),
//! - [`vm`] — bytecode backend with guaranteed tail calls,
//! - [`driver`] — pipelines, differential testing, benchmarks.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use lssa_core as core;
pub use lssa_driver as driver;
pub use lssa_ir as ir;
pub use lssa_lambda as lambda;
pub use lssa_rt as rt;
pub use lssa_syntax as syntax;
pub use lssa_vm as vm;
