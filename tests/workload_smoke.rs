//! Differential smoke oracle: every benchmark `Workload` at `Scale::Test`
//! runs through the λ reference interpreter (both λpure and λrc) and
//! through all four compiled pipelines on the VM, and every route must
//! produce the workload's recorded checksum with a balanced heap.
//!
//! This is the cheapest end-to-end guard for future refactors: any change
//! that breaks a lowering, an optimization, or the runtime shows up here as
//! a checksum mismatch on a named workload long before the full 648-program
//! conformance suite finishes.

use lambda_ssa::driver::diff::configs;
use lambda_ssa::driver::pipelines::compile_and_run;
use lambda_ssa::driver::workloads::{all, Scale};
use lambda_ssa::lambda::{insert_rc, parse_program, run_program};

const MAX_STEPS: u64 = 500_000_000;

#[test]
fn interpreter_matches_checksums() {
    for w in all(Scale::Test) {
        let p = parse_program(&w.src).unwrap_or_else(|e| panic!("{}: parse: {e}", w.name));
        let pure = run_program(&p, "main", false, MAX_STEPS)
            .unwrap_or_else(|e| panic!("{}: λpure: {e}", w.name));
        assert_eq!(pure.rendered, w.expected_test, "{}: λpure checksum", w.name);

        let rc = insert_rc(&p);
        let rc_out = run_program(&rc, "main", true, MAX_STEPS)
            .unwrap_or_else(|e| panic!("{}: λrc: {e}", w.name));
        assert_eq!(rc_out.rendered, w.expected_test, "{}: λrc checksum", w.name);
        assert_eq!(rc_out.stats.live, 0, "{}: λrc leaked objects", w.name);
    }
}

#[test]
fn all_pipelines_match_checksums() {
    for w in all(Scale::Test) {
        for config in configs() {
            let label = config.label();
            let out = compile_and_run(&w.src, config, MAX_STEPS)
                .unwrap_or_else(|e| panic!("{}/{label}: {e}", w.name));
            assert_eq!(
                out.rendered, w.expected_test,
                "{}/{label}: VM checksum disagrees with the oracle",
                w.name
            );
            assert_eq!(
                out.stats.heap.live, 0,
                "{}/{label}: VM leaked objects",
                w.name
            );
        }
    }
}

/// At `Scale::Bench` the runs take seconds each, so this cross-check of the
/// two interesting pipelines is gated behind `--features slow-tests`.
#[cfg(feature = "slow-tests")]
#[test]
fn bench_scale_pipelines_agree() {
    use lambda_ssa::driver::pipelines::CompilerConfig;
    for w in all(Scale::Bench) {
        let base = compile_and_run(&w.src, CompilerConfig::leanc(), MAX_STEPS)
            .unwrap_or_else(|e| panic!("{}/leanc: {e}", w.name));
        let mlir = compile_and_run(&w.src, CompilerConfig::mlir(), MAX_STEPS)
            .unwrap_or_else(|e| panic!("{}/mlir: {e}", w.name));
        assert_eq!(
            base.rendered, mlir.rendered,
            "{}: bench-scale disagreement",
            w.name
        );
    }
}
