//! The `lssa lint` engine: IR-level findings over `.lssa` sources.
//!
//! Lint is `check`'s hygiene-minded sibling. Where `check` rejects programs
//! (syntax + wellformedness, `E00xx`/`E01xx` errors), `lint` accepts them
//! and reports what is *suspicious* (`E02xx`), in the same two renderings:
//!
//! 1. the source-level lints from [`lssa_syntax::lint`] (dead join points,
//!    unused parameters, unreachable case arms, shadowed join labels), and
//! 2. the RC-linearity verdicts from the `lssa-ir` analysis framework
//!    ([`lssa_ir::analysis::rc_check`]), obtained by compiling the program
//!    through the full MLIR-style pipeline and checking every function:
//!    a proven inc/dec imbalance is `error[E0201]` (with the offending
//!    block path as a note), an unprovable one is `warning[E0202]`.
//!
//! λrc sources (programs that already contain `inc`/`dec`) are compiled
//! as-is, so the checker audits the *author's* annotations; pure sources
//! get the compiler's own `insert_rc` pass first, so their verdicts audit
//! the compiler. IR-level findings are anchored to the `def` name's source
//! span.
//!
//! On sources that fail `check`, lint reports those errors and stops —
//! hygiene findings over a rejected program would be noise.

use lssa_core::pipeline::PipelineOptions;
use lssa_ir::analysis::rc_check;
use lssa_ir::analysis::RcVerdict;
use lssa_syntax::diag::{E_LINT_RC_UNBALANCED, E_LINT_RC_UNPROVABLE};
use lssa_syntax::sexp::Sexp;
use lssa_syntax::{Diagnostic, Severity, Span};
use std::collections::HashMap;

/// Lints one `.lssa` source, returning every diagnostic: `check` errors if
/// the program is rejected, `E02xx` findings otherwise. A finding with
/// [`Severity::Error`] (including re-reported check errors) means the lint
/// run should fail; warnings alone should not.
pub fn lint_source(src: &str) -> Vec<Diagnostic> {
    let outcome = lssa_syntax::parse_source(src);
    if !outcome.diagnostics.is_empty() {
        return outcome.diagnostics;
    }
    let program = outcome
        .program
        .expect("clean parse always yields a program");
    let mut diags = lssa_syntax::lint_source(src);
    let rc = if program.fns.iter().any(|f| f.body.has_rc_ops()) {
        program
    } else {
        lssa_lambda::insert_rc(&program)
    };
    let module = lssa_core::pipeline::compile(&rc, PipelineOptions::full());
    let spans = def_name_spans(src);
    for (sym, verdict) in rc_check::check_module(&module) {
        let name = module.name_of(sym);
        let span = spans.get(name).copied();
        match verdict {
            RcVerdict::Balanced => {}
            RcVerdict::Unbalanced { detail, path } => {
                let path: Vec<String> = path.iter().map(|b| format!("{b}")).collect();
                diags.push(
                    at(
                        E_LINT_RC_UNBALANCED,
                        Severity::Error,
                        format!("rc-linearity violated in @{name}: {detail}"),
                        span,
                    )
                    .with_note(format!("path: {}", path.join(" -> ")))
                    .with_note(format!("in function @{name}")),
                );
            }
            RcVerdict::Unprovable { reason } => {
                diags.push(
                    at(
                        E_LINT_RC_UNPROVABLE,
                        Severity::Warning,
                        format!("rc-linearity unprovable for @{name}: {reason}"),
                        span,
                    )
                    .with_note(format!("in function @{name}")),
                );
            }
        }
    }
    diags
}

/// Whether any diagnostic in `diags` should fail the lint run.
pub fn has_errors(diags: &[Diagnostic]) -> bool {
    diags.iter().any(|d| d.severity == Severity::Error)
}

fn at(code: &'static str, severity: Severity, message: String, span: Option<Span>) -> Diagnostic {
    let mut d = match span {
        Some(span) => Diagnostic::new(code, message, span),
        None => Diagnostic::spanless(code, message),
    };
    d.severity = severity;
    d
}

/// Maps each `def`'s name to the span of its name atom, so IR-level
/// findings (which only know function symbols) anchor to source.
fn def_name_spans(src: &str) -> HashMap<String, Span> {
    let (forest, _) = lssa_syntax::sexp::read(src);
    let mut spans = HashMap::new();
    for top in &forest {
        let Some(items) = top.as_list() else { continue };
        if items.first().and_then(Sexp::as_atom) != Some("def") || items.len() < 2 {
            continue;
        }
        if let Some(name) = items[1].as_atom() {
            spans.entry(name.to_string()).or_insert(items[1].span);
        }
    }
    spans
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_pure_source_has_no_findings() {
        let diags = lint_source("(def main () (let x0 42 (ret x0)))");
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn author_leak_is_an_unbalanced_error() {
        // λrc input: the author retains x0 once too often.
        let diags = lint_source("(def leak (x0) (inc x0 1 (ret x0)))");
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].code, E_LINT_RC_UNBALANCED);
        assert_eq!(diags[0].severity, Severity::Error);
        assert!(diags[0].message.contains("@leak"), "{}", diags[0].message);
        assert!(diags[0].span.is_some(), "anchored to the def name");
        assert!(has_errors(&diags));
    }

    #[test]
    fn alias_release_is_an_unprovable_warning() {
        // Releasing a projection: validity depends on the aliased object.
        let diags = lint_source("(def f (x0) (let x1 (proj 0 x0) (dec x1 (ret x0))))");
        assert!(
            diags.iter().any(|d| d.code == E_LINT_RC_UNPROVABLE),
            "{diags:?}"
        );
        assert!(!has_errors(&diags), "{diags:?}");
    }

    #[test]
    fn check_errors_preempt_lints() {
        // Out-of-scope use: `check` errors come back verbatim, no lints.
        let diags = lint_source("(def f (x0) (ret x1))");
        assert!(!diags.is_empty());
        assert!(diags.iter().all(|d| d.code.starts_with("E01")), "{diags:?}");
        assert!(has_errors(&diags));
    }
}
