//! # lssa-core: λ the Ultimate SSA
//!
//! The paper's primary contribution — functional programs optimized in SSA
//! via *regions as values*:
//!
//! - [`lp`] — the λrc-in-SSA dialect (Figure 2) and the λrc → lp lowering
//!   (§III): data constructors, staged integer matching, join points,
//!   closures (`pap`/`papextend`), reference counting;
//! - [`rgn`] — the regions-as-SSA-values dialect (§IV): lowering from lp
//!   (Figure 8), the region optimizations of Figure 1 (dead region
//!   elimination, case elimination, common branch elimination), global
//!   region numbering (§IV-B.2), the flat-CFG lowering (§IV-C), and
//!   guaranteed tail calls (§III-E);
//! - [`pipeline`] — the end-to-end MLIR-style backend with the evaluation's
//!   ablation knobs.
//!
//! ```
//! use lssa_lambda::{parse_program, insert_rc};
//! use lssa_core::pipeline::{compile, PipelineOptions};
//!
//! let program = parse_program("def main() := if true then 1 else 2").unwrap();
//! let rc = insert_rc(&program);
//! let module = compile(&rc, PipelineOptions::full());
//! assert!(module.func_by_name("main").is_some());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod lp;
pub mod pipeline;
pub mod rgn;

pub use pipeline::{compile, compile_batch, compile_with_report, PipelineOptions, PipelineReport};
