//! The conformance corpus — this project's analogue of the LEAN test suite.
//!
//! The paper validates feature-completeness by passing all 648 tests of the
//! LEAN4 suite (§V-A). Here the corpus is (a) a set of hand-written programs
//! covering every λrc construct and edge case, and (b) a seeded generator
//! producing hundreds of terminating programs over a safe prelude. Each
//! program is differentially tested across all pipelines
//! ([`crate::diff::run_differential`]).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A corpus entry.
#[derive(Debug, Clone)]
pub struct TestCase {
    /// Name (stable across runs).
    pub name: String,
    /// Source text.
    pub src: String,
}

/// Hand-written cases: one per language feature/edge case.
pub fn handwritten() -> Vec<TestCase> {
    let mk = |name: &str, src: &str| TestCase {
        name: name.to_string(),
        src: src.to_string(),
    };
    vec![
        mk("lit", "def main() := 0"),
        mk("lit-max-small", "def main() := 4611686018427387903"),
        mk("lit-big", "def main() := 4611686018427387904"),
        mk("lit-huge", "def main() := 123456789012345678901234567890"),
        mk("add", "def main() := 1 + 2"),
        mk("sub-truncates", "def main() := 3 - 5"),
        mk("mul", "def main() := 6 * 7"),
        mk("div", "def main() := 17 / 5"),
        mk("div-zero", "def main() := 17 / 0"),
        mk("mod", "def main() := 17 % 5"),
        mk("mod-zero", "def main() := 17 % 0"),
        mk("big-add", "def main() := 9999999999999999999999 + 1"),
        mk("big-mul", "def main() := 99999999999999999999 * 99999999999999999999"),
        mk("big-cross", "def main() := 4611686018427387903 + 4611686018427387903"),
        mk("cmp-eq", "def main() := if 3 == 3 then 1 else 0"),
        mk("cmp-ne", "def main() := if 3 != 3 then 1 else 0"),
        mk("cmp-lt", "def main() := if 2 < 3 then 1 else 0"),
        mk("cmp-le", "def main() := if 3 <= 3 then 1 else 0"),
        mk("cmp-gt", "def main() := if 3 > 2 then 1 else 0"),
        mk("cmp-ge", "def main() := if 2 >= 3 then 1 else 0"),
        mk("bool-consts", "def main() := if true then (if false then 0 else 1) else 2"),
        mk("nested-if", "def main() := if 1 < 2 then if 2 < 1 then 10 else 20 else 30"),
        mk(
            "let-chain",
            "def main() := let a := 1; let b := a + 1; let c := b + a; c * b",
        ),
        mk(
            "shadowing",
            "def main() := let a := 1; let a := a + 1; let a := a + 1; a",
        ),
        mk(
            "int-ops",
            "def main() := @int_to_nat(@int_add(@int_neg(5), @int_mul(3, 4)))",
        ),
        mk(
            "int-neg-result",
            "def main() := @int_sub(3, 10)",
        ),
        mk(
            "int-div-trunc",
            "def main() := @int_to_nat(@int_div(@int_neg(7), 2)) + @int_to_nat(@int_neg(@int_div(@int_neg(7), 2)))",
        ),
        mk(
            "ctor-basic",
            r#"
inductive Pair := MkPair(a, b)
def main() := case MkPair(3, 4) of | MkPair(a, b) => a * 10 + b end
"#,
        ),
        mk(
            "ctor-nested",
            r#"
inductive Pair := MkPair(a, b)
def main() :=
  case MkPair(MkPair(1, 2), MkPair(3, 4)) of
  | MkPair(x, y) =>
    case x of
    | MkPair(a, b) =>
      case y of
      | MkPair(c, d) => a * 1000 + b * 100 + c * 10 + d
      end
    end
  end
"#,
        ),
        mk(
            "enum-three-way",
            r#"
inductive RGB := R | G | B
def pick(c) := case c of | R => 1 | G => 2 | B => 3 end
def main() := pick(R) * 100 + pick(G) * 10 + pick(B)
"#,
        ),
        mk(
            "case-default",
            r#"
inductive RGB := R | G | B
def pick(c) := case c of | G => 7 | _ => 9 end
def main() := pick(R) * 100 + pick(G) * 10 + pick(B)
"#,
        ),
        mk(
            "int-pattern-figure4",
            r#"
def intUsage(n) := case n of | 42 => 43 | _ => 99999999 end
def main() := intUsage(42) + intUsage(7)
"#,
        ),
        mk(
            "int-pattern-multi",
            r#"
def f(n) := case n of | 0 => 10 | 1 => 20 | 5 => 30 | _ => 40 end
def main() := f(0) + f(1) + f(5) + f(9)
"#,
        ),
        mk(
            "int-pattern-big",
            r#"
def f(n) := case n of | 99999999999999999999 => 1 | _ => 2 end
def main() := f(99999999999999999999) * 10 + f(3)
"#,
        ),
        mk(
            "figure5-eval",
            r#"
def eval(x, y, z) :=
  case x of
  | 0 =>
    case y of
    | 2 => 40
    | _ =>
      case z of
      | 2 => 50
      | _ => 60
      end
    end
  | _ => 60
  end
def main() := eval(0, 2, 9) + eval(0, 9, 2) + eval(0, 9, 9) + eval(7, 2, 2)
"#,
        ),
        mk(
            "figure6-length",
            r#"
inductive List := Nil | Cons(i, l)
def singleton(n) := Cons(n, Nil)
def length(xs) :=
  case xs of
  | Nil => 0
  | Cons(n, l) => 1 + length(l)
  end
def main() := length(singleton(99))
"#,
        ),
        mk(
            "recursion-fact",
            "def fact(n) := if n == 0 then 1 else n * fact(n - 1)\ndef main() := fact(15)",
        ),
        mk(
            "recursion-fib",
            "def fib(n) := if n < 2 then n else fib(n - 1) + fib(n - 2)\ndef main() := fib(15)",
        ),
        mk(
            "mutual-recursion",
            r#"
def is_even(n) := if n == 0 then 1 else is_odd(n - 1)
def is_odd(n) := if n == 0 then 0 else is_even(n - 1)
def main() := is_even(10) * 10 + is_odd(7)
"#,
        ),
        mk(
            "deep-tail-recursion",
            r#"
def loop(n, acc) := if n == 0 then acc else loop(n - 1, acc + n)
def main() := loop(200000, 0)
"#,
        ),
        mk(
            "closure-figure7",
            r#"
def k(x, y) := x
def ap42(f) := f(42)
def main() := ap42(k(10))
"#,
        ),
        mk(
            "closure-zero-capture",
            r#"
def k(x, y) := y
def apply2(f) := f(7, 8)
def main() := apply2(k)
"#,
        ),
        mk(
            "closure-oversaturated",
            r#"
def add2(a, b) := a + b
def mkadd(a) := add2(a)
def main() := mkadd(1)(2)
"#,
        ),
        mk(
            "closure-chain",
            r#"
def add3(a, b, c) := a + b * 10 + c * 100
def main() := add3(1)(2)(3)
"#,
        ),
        mk(
            "closure-twice",
            r#"
def add(a, b) := a + b
def twice(f, x) := f(f(x))
def main() := twice(add(10), 1)
"#,
        ),
        mk(
            "closure-captures-structure",
            r#"
inductive Pair := MkPair(a, b)
def first_of(p, unused) := case p of | MkPair(a, b) => a end
def main() :=
  let p := MkPair(5, 6);
  let f := first_of(p);
  f(0) + f(1)
"#,
        ),
        mk(
            "value-case-join",
            r#"
def f(b, y) := let x := case b of | true => 1 | false => 2 end; x + y
def main() := f(true, 10) + f(false, 100)
"#,
        ),
        mk(
            "join-nested",
            r#"
def f(a, b) :=
  let x := case a of | true => 1 | false => 2 end;
  let y := case b of | true => 10 | false => 20 end;
  x + y
def main() := f(true, false) + f(false, true) * 100
"#,
        ),
        mk(
            "shared-subtree",
            r#"
inductive Tree := Leaf | Node(l, r)
def weight(t) := case t of | Leaf => 1 | Node(l, r) => weight(l) + weight(r) end
def main() :=
  let shared := Node(Leaf, Leaf);
  weight(Node(shared, shared))
"#,
        ),
        mk(
            "list-append-rev",
            r#"
inductive List := Nil | Cons(h, t)
def append(xs, ys) :=
  case xs of
  | Nil => ys
  | Cons(h, t) => Cons(h, append(t, ys))
  end
def rev(xs, acc) :=
  case xs of
  | Nil => acc
  | Cons(h, t) => rev(t, Cons(h, acc))
  end
def sum(xs) := case xs of | Nil => 0 | Cons(h, t) => h + sum(t) end
def upto(n) := if n == 0 then Nil else Cons(n, upto(n - 1))
def main() := sum(rev(append(upto(5), upto(3)), Nil))
"#,
        ),
        mk(
            "map-via-closure",
            r#"
inductive List := Nil | Cons(h, t)
def map(f, xs) :=
  case xs of
  | Nil => Nil
  | Cons(h, t) => Cons(f(h), map(f, t))
  end
def double(x) := x * 2
def sum(xs) := case xs of | Nil => 0 | Cons(h, t) => h + sum(t) end
def upto(n) := if n == 0 then Nil else Cons(n, upto(n - 1))
def main() := sum(map(double, upto(10)))
"#,
        ),
        mk(
            "array-basic",
            r#"
def main() :=
  let a := @array_push(@array_push(@mk_empty_array(), 10), 20);
  @array_get(a, 0) + @array_get(a, 1) + @array_size(a)
"#,
        ),
        mk(
            "array-set-shared",
            r#"
def main() :=
  let a := @array_push(@mk_empty_array(), 1);
  let b := @array_set(a, 0, 2);
  @array_get(b, 0)
"#,
        ),
        mk(
            "string-ops",
            r#"
def main() := @string_length(@string_append("hello ", "world"))
"#,
        ),
        mk(
            "string-eq",
            r#"
def main() :=
  if @string_dec_eq("abc", "abc") == 1 then
    if @string_dec_eq("abc", "abd") == 1 then 0 else 1
  else 2
"#,
        ),
        mk(
            "nat-to-string",
            "def main() := @string_length(@nat_to_string(1234567))",
        ),
        mk(
            "pow-gcd",
            "def main() := @nat_pow(3, 7) + @nat_gcd(48, 36)",
        ),
        mk(
            "dead-code",
            r#"
def main() :=
  let dead1 := 100 * 100;
  let dead2 := dead1 + 5;
  42
"#,
        ),
        mk(
            "common-branches",
            r#"
inductive AB := A | B
def f(x) := case x of | A => 123 | B => 123 end
def main() := f(A) + f(B)
"#,
        ),
        mk(
            "unused-params",
            r#"
def ignore2(a, b, c) := b
def main() := ignore2(1, 2, 3)
"#,
        ),
        mk(
            "arity-zero-through-closure",
            r#"
def const7(unused) := 7
def main() :=
  let f := const7;
  f(99)
"#,
        ),
    ]
}

/// Deterministically generates `count` programs over a safe prelude.
///
/// Generated expressions cannot diverge: the only recursive functions are in
/// the prelude and are structurally decreasing on small literal inputs.
pub fn generated(count: usize, seed: u64) -> Vec<TestCase> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|i| {
            let body = gen_expr(&mut rng, 0);
            TestCase {
                name: format!("gen-{i:04}"),
                src: format!("{PRELUDE}\ndef main() := {body}"),
            }
        })
        .collect()
}

const PRELUDE: &str = r#"
inductive List := Nil | Cons(h, t)
inductive Option := None | Some(v)
inductive Pair := MkPair(a, b)
def id(x) := x
def add3(a, b, c) := a + b + c
def twice(f, x) := f(f(x))
def compose_apply(f, g, x) := f(g(x))
def sumto(n) := if n == 0 then 0 else n + sumto(n - 1)
def len(xs) := case xs of | Nil => 0 | Cons(h, t) => 1 + len(t) end
def nth(xs, i) :=
  case xs of
  | Nil => 0
  | Cons(h, t) => if i == 0 then h else nth(t, i - 1)
  end
def upto(n) := if n == 0 then Nil else Cons(n, upto(n - 1))
def maybe_add(o, k) := case o of | None => k | Some(v) => v + k end
"#;

fn gen_expr(rng: &mut StdRng, depth: u32) -> String {
    let leaf = depth >= 4;
    let choice = if leaf {
        rng.random_range(0..3)
    } else {
        rng.random_range(0..12)
    };
    match choice {
        0 => format!("{}", rng.random_range(0..100)),
        1 => format!("{}", rng.random_range(0..10_000)),
        2 => "4611686018427387900".to_string(),
        3 => format!(
            "({} {} {})",
            gen_expr(rng, depth + 1),
            ["+", "-", "*", "/", "%"][rng.random_range(0..5)],
            gen_expr(rng, depth + 1)
        ),
        4 => format!(
            "(if {} {} {} then {} else {})",
            gen_expr(rng, depth + 1),
            ["==", "<", "<=", "!=", ">", ">="][rng.random_range(0..6)],
            gen_expr(rng, depth + 1),
            gen_expr(rng, depth + 1),
            gen_expr(rng, depth + 1)
        ),
        5 => format!(
            "(let v{depth} := {}; v{depth} + {})",
            gen_expr(rng, depth + 1),
            gen_expr(rng, depth + 1)
        ),
        6 => format!(
            "(case {} % 3 of | 0 => {} | 1 => {} | _ => {} end)",
            gen_expr(rng, depth + 1),
            gen_expr(rng, depth + 1),
            gen_expr(rng, depth + 1),
            gen_expr(rng, depth + 1)
        ),
        7 => format!(
            "(case Some({}) of | None => 0 | Some(v) => v + 1 end)",
            gen_expr(rng, depth + 1)
        ),
        8 => format!("sumto({})", rng.random_range(0..50)),
        9 => format!(
            "nth(upto({}), {})",
            rng.random_range(1..20),
            rng.random_range(0..25)
        ),
        10 => format!(
            "twice(add3({}, {}), {})",
            gen_expr(rng, depth + 1),
            rng.random_range(0..10),
            rng.random_range(0..10)
        ),
        11 => format!(
            "(case MkPair({}, {}) of | MkPair(a, b) => a * 2 + b end)",
            gen_expr(rng, depth + 1),
            gen_expr(rng, depth + 1)
        ),
        _ => unreachable!(),
    }
}

/// The full corpus: handwritten + generated, at least `min_total` cases (the
/// LEAN suite the paper runs has 648).
pub fn full_corpus(min_total: usize, seed: u64) -> Vec<TestCase> {
    let mut cases = handwritten();
    let need = min_total.saturating_sub(cases.len());
    cases.extend(generated(need, seed));
    cases
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_is_large_enough() {
        let corpus = full_corpus(648, 42);
        assert!(corpus.len() >= 648);
        // Names are unique.
        let mut names: Vec<&str> = corpus.iter().map(|c| c.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), corpus.len());
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generated(10, 7);
        let b = generated(10, 7);
        assert_eq!(
            a.iter().map(|c| &c.src).collect::<Vec<_>>(),
            b.iter().map(|c| &c.src).collect::<Vec<_>>()
        );
        let c = generated(10, 8);
        assert_ne!(
            a.iter().map(|c| &c.src).collect::<Vec<_>>(),
            c.iter().map(|c| &c.src).collect::<Vec<_>>()
        );
    }

    #[test]
    fn handwritten_cases_all_pass_differential() {
        // The smoke oracle path: sharded through the shared batch executor
        // rather than looped serially.
        let cases = handwritten();
        crate::par::par_map(&cases, |case| {
            let r = crate::diff::run_differential(&case.name, &case.src, 200_000_000);
            assert!(r.passed(), "{}: {:?}", case.name, r.failure);
        });
    }

    #[test]
    fn sample_of_generated_cases_pass_differential() {
        // The full 648-case run lives in the integration suite; keep a
        // representative sample in unit tests.
        let cases = generated(25, 20260612);
        crate::par::par_map(&cases, |case| {
            let r = crate::diff::run_differential(&case.name, &case.src, 200_000_000);
            assert!(r.passed(), "{}:\n{}\n{:?}", case.name, case.src, r.failure);
        });
    }
}
