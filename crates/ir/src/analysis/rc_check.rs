//! The RC-linearity checker: proves inc/dec balance on every CFG path.
//!
//! For each function the checker walks the root-region CFG once in reverse
//! postorder, composing the per-block [`rc_summary`](super::rc_summary)
//! effects into a per-value reference-count ledger:
//!
//! - every owned definition starts at count 1 (block arguments bind an
//!   incoming reference; allocations and calls return one);
//! - `lp.inc` adds, `lp.dec` and every consuming operand position subtract;
//! - branch edges consume their successor arguments and credit the
//!   destination's block parameters;
//! - at every control-flow join the counts arriving over all edges must
//!   agree, and at `return`/`lp.ret`/`tail_call` every tracked count must
//!   be back to zero.
//!
//! Any violation on an [`RcClass::Owned`] value is a definite protocol
//! break — reported as [`RcVerdict::Unbalanced`] with the offending value
//! and the block path from the entry. Anomalies that involve alias-class
//! values (projections, `select`/`switch_val` merges, global loads) or
//! owned values that escape *into* such merges cannot be decided by a
//! per-value ledger; they yield [`RcVerdict::Unprovable`], never a false
//! positive. Region-structured IR (before `lower-cfg`) is likewise
//! unprovable — the checker is meant to run from `rc-opt` onward.

use super::cfg::BlockGraph;
use super::rc_summary::{classify, summarize_block, BlockSummary, RcClass};
use crate::body::Body;
use crate::ids::{BlockId, Symbol, ValueId};
use crate::module::Module;
use crate::opcode::Opcode;
use std::collections::{HashMap, HashSet};

/// The checker's answer for one function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RcVerdict {
    /// Every path provably releases every owned value exactly once.
    Balanced,
    /// The ledger cannot decide (aliasing, regions); not an error.
    Unprovable {
        /// Why the function defeats the per-value ledger.
        reason: String,
    },
    /// A definite protocol violation: double release, leak, or
    /// path-dependent count.
    Unbalanced {
        /// What went wrong, naming the value and block.
        detail: String,
        /// Block path from the function entry to the offending block.
        path: Vec<BlockId>,
    },
}

impl RcVerdict {
    /// Whether this verdict is a definite error.
    pub fn is_unbalanced(&self) -> bool {
        matches!(self, RcVerdict::Unbalanced { .. })
    }
}

/// Checks every function body in `module`, in module order.
pub fn check_module(module: &Module) -> Vec<(Symbol, RcVerdict)> {
    let externs: HashSet<Symbol> = module
        .funcs
        .iter()
        .filter(|f| f.is_extern())
        .map(|f| f.name)
        .collect();
    module
        .funcs
        .iter()
        .filter_map(|f| f.body.as_ref().map(|b| (f.name, check_body(b, &externs))))
        .collect()
}

/// Checks one function of `module` (by symbol). Extern declarations are
/// trivially balanced.
pub fn check_function(module: &Module, func: Symbol) -> RcVerdict {
    let externs: HashSet<Symbol> = module
        .funcs
        .iter()
        .filter(|f| f.is_extern())
        .map(|f| f.name)
        .collect();
    match module.func(func).and_then(|f| f.body.as_ref()) {
        Some(body) => check_body(body, &externs),
        None => RcVerdict::Balanced,
    }
}

/// Checks every function and returns an error describing the first
/// [`RcVerdict::Unbalanced`] one, with its path. Unprovable functions pass.
///
/// This is the strict entry the pass engine's `verify-rc` mode uses.
pub fn check_module_strict(module: &Module) -> Result<(), String> {
    for (sym, verdict) in check_module(module) {
        if let RcVerdict::Unbalanced { detail, path } = verdict {
            let path_str: Vec<String> = path.iter().map(|b| b.to_string()).collect();
            return Err(format!(
                "rc-linearity violated in @{}: {} (path: {})",
                module.name_of(sym),
                detail,
                path_str.join(" -> ")
            ));
        }
    }
    Ok(())
}

/// Checks a single body against `externs` (the module's builtin set).
pub fn check_body(body: &Body, externs: &HashSet<Symbol>) -> RcVerdict {
    // Region-carrying ops defeat the flat ledger; the checker targets the
    // post-`lower-cfg` form.
    for op in body.walk_ops() {
        if !body.ops[op.index()].regions.is_empty() {
            return RcVerdict::Unprovable {
                reason: "region-structured IR (checker runs after lower-cfg)".into(),
            };
        }
    }
    let graph = BlockGraph::root(body);

    // Owned values that flow into alias-producing merges (`select` /
    // `switch_val`) lose their identity: the merged result aliases one of
    // them, and releases may happen through it. Anomalies on such values
    // are unprovable rather than definite.
    let mut tainted: HashSet<ValueId> = HashSet::new();
    // Values consumed by a container constructor keep their object alive
    // through the container — a later borrow of such a value may be sound
    // even at ledger count 0 (the container holds the reference), so probe
    // failures on them are unprovable rather than definite.
    let mut containerized: HashSet<ValueId> = HashSet::new();
    for op in body.walk_ops() {
        let data = &body.ops[op.index()];
        match data.opcode {
            Opcode::Select | Opcode::SwitchVal => {
                // Operand 0 is the selector; the rest are merged alternatives.
                for &v in data.operands.iter().skip(1) {
                    tainted.insert(v);
                }
            }
            Opcode::LpConstruct | Opcode::LpPap | Opcode::LpPapExtend => {
                for &v in data.operands.iter() {
                    containerized.insert(v);
                }
            }
            _ => {}
        }
    }

    let summaries: HashMap<BlockId, BlockSummary> = graph
        .rpo()
        .iter()
        .map(|&b| (b, summarize_block(body, b, externs)))
        .collect();

    // The ledger state arriving at each block (nonzero counts only), and
    // the edge over which it first arrived (for path reconstruction).
    let mut state_in: HashMap<BlockId, HashMap<ValueId, i64>> = HashMap::new();
    let mut first_pred: HashMap<BlockId, BlockId> = HashMap::new();

    let entry = graph.entry();
    let mut entry_state: HashMap<ValueId, i64> = HashMap::new();
    for &p in &body.blocks[entry.index()].args {
        if classify(body, p) != RcClass::Scalar {
            entry_state.insert(p, 1);
        }
    }
    state_in.insert(entry, entry_state);

    let trace = |first_pred: &HashMap<BlockId, BlockId>, to: BlockId| -> Vec<BlockId> {
        let mut path = vec![to];
        let mut cur = to;
        while let Some(&p) = first_pred.get(&cur) {
            path.push(p);
            cur = p;
        }
        path.reverse();
        path
    };
    let anomaly = |v: ValueId, tainted: &HashSet<ValueId>, detail: String, path: Vec<BlockId>| {
        let class = classify(body, v);
        if class == RcClass::Owned && !tainted.contains(&v) {
            RcVerdict::Unbalanced { detail, path }
        } else {
            RcVerdict::Unprovable { reason: detail }
        }
    };

    // Reverse postorder guarantees at least one predecessor of each block
    // (its DFS tree parent) is processed first, so `state_in` is populated
    // when we arrive; back edges are pure consistency checks against the
    // already-set header state.
    for &b in graph.rpo() {
        let mut state = state_in
            .get(&b)
            .cloned()
            .expect("rpo predecessor already set the in-state");

        let summary = &summaries[&b];
        if let Some(&op) = summary.mask_on_internal.first() {
            return RcVerdict::Unbalanced {
                detail: format!(
                    "call {op} in {b} carries a borrow_mask but its callee is not extern \
                     (the VM honors masks only on builtins)"
                ),
                path: trace(&first_pred, b),
            };
        }
        // Apply the block's collapsed events, lowest value id first for
        // deterministic reporting.
        let mut touched: Vec<ValueId> = summary.effects.keys().copied().collect();
        touched.sort();
        for v in touched {
            let eff = summary.effects[&v];
            let c = state.get(&v).copied().unwrap_or(0);
            if c + eff.min < 0 {
                return anomaly(
                    v,
                    &tainted,
                    format!(
                        "value {v} over-released in {b} (count {c} entering, dips to {})",
                        c + eff.min
                    ),
                    trace(&first_pred, b),
                );
            }
            if c + eff.min_borrow < 0 {
                // A borrow_mask'd call sees this value at ledger count 0.
                // If its ownership escaped into a live container the borrow
                // can still be sound; otherwise it outlives its reference.
                if containerized.contains(&v) {
                    return RcVerdict::Unprovable {
                        reason: format!(
                            "value {v} borrowed in {b} after its reference moved into a container"
                        ),
                    };
                }
                return anomaly(
                    v,
                    &tainted,
                    format!(
                        "value {v} borrowed in {b} without holding a reference \
                         (borrow would outlive the callee)"
                    ),
                    trace(&first_pred, b),
                );
            }
            let out = c + eff.net;
            if out == 0 {
                state.remove(&v);
            } else {
                state.insert(v, out);
            }
        }

        // Propagate through the terminator.
        let Some(term) = body.terminator(b) else {
            return RcVerdict::Unprovable {
                reason: format!("block {b} has no terminator"),
            };
        };
        let term_data = &body.ops[term.index()];
        match term_data.opcode {
            Opcode::Return | Opcode::LpReturn | Opcode::TailCall => {
                // Exit: every tracked count must be settled (operand
                // consumption was part of the block summary).
                let mut leftover: Vec<ValueId> = state.keys().copied().collect();
                leftover.sort();
                if let Some(&v) = leftover.first() {
                    let c = state[&v];
                    return anomaly(
                        v,
                        &tainted,
                        format!("value {v} leaks {c} reference(s) at function exit in {b}"),
                        trace(&first_pred, b),
                    );
                }
            }
            Opcode::Unreachable => {} // path diverges; nothing to settle
            _ => {
                for succ in term_data.successors.iter() {
                    let mut edge_state = state.clone();
                    // Edge arguments transfer ownership to the destination's
                    // block parameters.
                    for &a in succ.args.iter() {
                        if classify(body, a) == RcClass::Scalar {
                            continue;
                        }
                        let c = edge_state.get(&a).copied().unwrap_or(0);
                        if c - 1 < 0 {
                            return anomaly(
                                a,
                                &tainted,
                                format!(
                                    "value {a} passed on edge {b} -> {} without a reference",
                                    succ.block
                                ),
                                trace(&first_pred, b),
                            );
                        }
                        if c - 1 == 0 {
                            edge_state.remove(&a);
                        } else {
                            edge_state.insert(a, c - 1);
                        }
                    }
                    for &arg in &body.blocks[succ.block.index()].args {
                        if classify(body, arg) != RcClass::Scalar {
                            *edge_state.entry(arg).or_insert(0) += 1;
                        }
                    }
                    match state_in.get(&succ.block) {
                        None => {
                            state_in.insert(succ.block, edge_state);
                            first_pred.insert(succ.block, b);
                        }
                        Some(existing) => {
                            if let Some(v) = first_mismatch(existing, &edge_state) {
                                let a = existing.get(&v).copied().unwrap_or(0);
                                let c = edge_state.get(&v).copied().unwrap_or(0);
                                let mut path = trace(&first_pred, b);
                                path.push(succ.block);
                                return anomaly(
                                    v,
                                    &tainted,
                                    format!(
                                        "value {v} has a path-dependent count at {} \
                                         ({a} via one path, {c} via {b})",
                                        succ.block
                                    ),
                                    path,
                                );
                            }
                        }
                    }
                }
            }
        }
    }
    RcVerdict::Balanced
}

/// The lowest-id value whose count differs between the two states.
fn first_mismatch(a: &HashMap<ValueId, i64>, b: &HashMap<ValueId, i64>) -> Option<ValueId> {
    let mut keys: Vec<ValueId> = a.keys().chain(b.keys()).copied().collect();
    keys.sort();
    keys.dedup();
    keys.into_iter()
        .find(|v| a.get(v).copied().unwrap_or(0) != b.get(v).copied().unwrap_or(0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::body::ROOT_REGION;
    use crate::builder::Builder;
    use crate::types::Signature;
    use crate::types::Type;

    fn no_externs() -> HashSet<Symbol> {
        HashSet::new()
    }

    /// `fn(p) { inc p; ret p }` — protocol-correct hand IR.
    #[test]
    fn balanced_straight_line() {
        let (mut body, params) = Body::new(&[Type::Obj]);
        let entry = body.entry_block();
        let mut b = Builder::at_end(&mut body, entry);
        b.lp_inc(params[0]);
        b.lp_dec(params[0]);
        b.lp_ret(params[0]);
        assert_eq!(check_body(&body, &no_externs()), RcVerdict::Balanced);
    }

    #[test]
    fn leak_is_unbalanced() {
        // The param is inc'd but only one reference is released.
        let (mut body, params) = Body::new(&[Type::Obj]);
        let entry = body.entry_block();
        let mut b = Builder::at_end(&mut body, entry);
        b.lp_inc(params[0]);
        b.lp_ret(params[0]);
        match check_body(&body, &no_externs()) {
            RcVerdict::Unbalanced { detail, path } => {
                assert!(detail.contains("leaks"), "{detail}");
                assert_eq!(path, vec![entry]);
            }
            other => panic!("expected unbalanced, got {other:?}"),
        }
    }

    #[test]
    fn double_release_is_unbalanced_with_path() {
        // entry -> mid -> exit; the dec in `exit` releases a count the
        // entry's dec already spent.
        let (mut body, params) = Body::new(&[Type::Obj]);
        let entry = body.entry_block();
        let mid = body.new_block(ROOT_REGION, &[]);
        let exit = body.new_block(ROOT_REGION, &[]);
        let mut b = Builder::at_end(&mut body, entry);
        b.lp_dec(params[0]);
        b.br(mid, vec![]);
        Builder::at_end(&mut body, mid).br(exit, vec![]);
        let mut be = Builder::at_end(&mut body, exit);
        be.lp_dec(params[0]);
        let z = be.lp_int(0);
        be.lp_ret(z);
        match check_body(&body, &no_externs()) {
            RcVerdict::Unbalanced { detail, path } => {
                assert!(detail.contains("over-released"), "{detail}");
                assert_eq!(path, vec![entry, mid, exit]);
            }
            other => panic!("expected unbalanced, got {other:?}"),
        }
    }

    #[test]
    fn path_dependent_count_is_unbalanced() {
        // One diamond arm releases the param, the other does not.
        let (mut body, params) = Body::new(&[Type::I1, Type::Obj]);
        let entry = body.entry_block();
        let a = body.new_block(ROOT_REGION, &[]);
        let bb = body.new_block(ROOT_REGION, &[]);
        let join = body.new_block(ROOT_REGION, &[]);
        Builder::at_end(&mut body, entry).cond_br(params[0], (a, vec![]), (bb, vec![]));
        let mut ba = Builder::at_end(&mut body, a);
        ba.lp_dec(params[1]);
        ba.br(join, vec![]);
        Builder::at_end(&mut body, bb).br(join, vec![]);
        let mut bj = Builder::at_end(&mut body, join);
        let z = bj.lp_int(0);
        bj.lp_ret(z);
        match check_body(&body, &no_externs()) {
            RcVerdict::Unbalanced { detail, .. } => {
                assert!(detail.contains("path-dependent"), "{detail}");
            }
            other => panic!("expected unbalanced, got {other:?}"),
        }
    }

    #[test]
    fn balanced_diamond_with_edge_transfer() {
        // Both arms forward the param to the join, which releases it.
        let (mut body, params) = Body::new(&[Type::I1, Type::Obj]);
        let entry = body.entry_block();
        let a = body.new_block(ROOT_REGION, &[]);
        let bb = body.new_block(ROOT_REGION, &[]);
        let join = body.new_block(ROOT_REGION, &[Type::Obj]);
        Builder::at_end(&mut body, entry).cond_br(params[0], (a, vec![]), (bb, vec![]));
        Builder::at_end(&mut body, a).br(join, vec![params[1]]);
        Builder::at_end(&mut body, bb).br(join, vec![params[1]]);
        let jv = body.blocks[join.index()].args[0];
        Builder::at_end(&mut body, join).lp_ret(jv);
        assert_eq!(check_body(&body, &no_externs()), RcVerdict::Balanced);
    }

    #[test]
    fn balanced_loop_is_accepted() {
        // A count-neutral loop: the header owns the object, the back edge
        // passes it around, the exit releases it.
        use crate::attr::CmpPred;
        let (mut body, params) = Body::new(&[Type::Obj, Type::I64]);
        let entry = body.entry_block();
        let header = body.new_block(ROOT_REGION, &[Type::Obj, Type::I64]);
        let exit = body.new_block(ROOT_REGION, &[Type::Obj]);
        Builder::at_end(&mut body, entry).br(header, vec![params[0], params[1]]);
        let hobj = body.blocks[header.index()].args[0];
        let hi = body.blocks[header.index()].args[1];
        let mut bh = Builder::at_end(&mut body, header);
        let z = bh.const_i(0, Type::I64);
        let c = bh.cmpi(CmpPred::Eq, hi, z);
        bh.cond_br(c, (exit, vec![hobj]), (header, vec![hobj, hi]));
        let eobj = body.blocks[exit.index()].args[0];
        Builder::at_end(&mut body, exit).lp_ret(eobj);
        assert_eq!(check_body(&body, &no_externs()), RcVerdict::Balanced);
    }

    #[test]
    fn alias_anomaly_is_unprovable() {
        // Releasing a projection the scope never inc'd cannot be decided by
        // the per-value ledger (the reference belongs to the parent).
        let (mut body, params) = Body::new(&[Type::Obj]);
        let entry = body.entry_block();
        let mut b = Builder::at_end(&mut body, entry);
        let field = b.lp_project(params[0], 0);
        b.lp_dec(field);
        b.lp_ret(params[0]);
        match check_body(&body, &no_externs()) {
            RcVerdict::Unprovable { reason } => {
                assert!(reason.contains("over-released"), "{reason}");
            }
            other => panic!("expected unprovable, got {other:?}"),
        }
    }

    #[test]
    fn owned_escaping_into_select_is_unprovable_not_unbalanced() {
        // Two owned objects merged by a select: the ledger cannot follow
        // which one the release through the alias hits.
        let (mut body, params) = Body::new(&[Type::I1]);
        let entry = body.entry_block();
        let mut b = Builder::at_end(&mut body, entry);
        let x = b.lp_construct(0, vec![]);
        let y = b.lp_construct(1, vec![]);
        let m = b.select(params[0], x, y);
        b.lp_ret(m);
        match check_body(&body, &no_externs()) {
            RcVerdict::Unprovable { .. } => {}
            other => panic!("expected unprovable, got {other:?}"),
        }
    }

    #[test]
    fn region_ir_is_unprovable() {
        let (mut body, _) = Body::new(&[]);
        let entry = body.entry_block();
        let mut b = Builder::at_end(&mut body, entry);
        let (rv, inner) = b.rgn_val(&[]);
        let mut ib = Builder::at_end(&mut body, inner);
        let v = ib.lp_int(1);
        ib.lp_ret(v);
        let mut b = Builder::at_end(&mut body, entry);
        b.rgn_run(rv, vec![]);
        match check_body(&body, &no_externs()) {
            RcVerdict::Unprovable { reason } => assert!(reason.contains("region"), "{reason}"),
            other => panic!("expected unprovable, got {other:?}"),
        }
    }

    #[test]
    fn consuming_ops_balance_allocations() {
        // construct consumes its fields and produces an owned result.
        let (mut body, params) = Body::new(&[Type::Obj, Type::Obj]);
        let entry = body.entry_block();
        let mut b = Builder::at_end(&mut body, entry);
        let pair = b.lp_construct(0, vec![params[0], params[1]]);
        b.lp_ret(pair);
        assert_eq!(check_body(&body, &no_externs()), RcVerdict::Balanced);
    }

    #[test]
    fn strict_check_names_function_and_path() {
        let mut module = Module::new();
        let (mut body, params) = Body::new(&[Type::Obj]);
        let entry = body.entry_block();
        let mut b = Builder::at_end(&mut body, entry);
        b.lp_inc(params[0]);
        b.lp_ret(params[0]);
        module.add_function("leaky", Signature::obj(1), body);
        let err = check_module_strict(&module).unwrap_err();
        assert!(err.contains("@leaky"), "{err}");
        assert!(err.contains("path:"), "{err}");
        assert!(err.contains(&entry.to_string()), "{err}");
    }

    #[test]
    fn check_module_reports_per_function() {
        let mut module = Module::new();
        let (mut ok_body, p) = Body::new(&[Type::Obj]);
        let e = ok_body.entry_block();
        Builder::at_end(&mut ok_body, e).lp_ret(p[0]);
        module.add_function("fine", Signature::obj(1), ok_body);
        let (mut bad_body, q) = Body::new(&[Type::Obj]);
        let e2 = bad_body.entry_block();
        let mut b = Builder::at_end(&mut bad_body, e2);
        b.lp_dec(q[0]);
        b.lp_dec(q[0]);
        let z = b.lp_int(0);
        b.lp_ret(z);
        module.add_function("bad", Signature::obj(1), bad_body);
        let verdicts = check_module(&module);
        assert_eq!(verdicts.len(), 2);
        assert_eq!(verdicts[0].1, RcVerdict::Balanced);
        assert!(verdicts[1].1.is_unbalanced());
    }
}
