//! A direction-generic worklist solver for monotone dataflow problems.
//!
//! An analysis implements [`Analysis`]: a fact lattice (`Fact`, with
//! [`Analysis::bottom`] and a [`Analysis::join`] that accumulates), a
//! direction, and a per-block [`Analysis::transfer`] function. [`solve`]
//! runs the classic worklist fixpoint over a [`BlockGraph`] and returns the
//! fact at every block boundary.
//!
//! Termination requires the usual monotone-framework conditions: `join`
//! only ever grows a fact (returns `false` once nothing changed) and the
//! fact lattice has finite height for the values mentioned in the body.
//! Every analysis shipped here (liveness, RC summaries) is a finite set or
//! map union, which satisfies both.

use super::cfg::BlockGraph;
use crate::body::Body;
use crate::ids::BlockId;
use std::collections::{HashMap, HashSet, VecDeque};

/// Which way facts propagate through the CFG.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Facts flow from the entry toward exits (e.g. reaching definitions).
    Forward,
    /// Facts flow from exits toward the entry (e.g. liveness).
    Backward,
}

/// A monotone dataflow problem over one region.
pub trait Analysis {
    /// The lattice element attached to each block boundary.
    type Fact: Clone + PartialEq;

    /// Which way facts propagate.
    fn direction(&self) -> Direction;

    /// The least element, used to initialize every boundary.
    fn bottom(&self) -> Self::Fact;

    /// The fact imposed at the CFG boundary: at the entry block's start for
    /// forward analyses, at the end of exit blocks (no successors) for
    /// backward analyses.
    fn boundary(&self, body: &Body) -> Self::Fact;

    /// Transfers `input` through `block`. For a forward analysis `input` is
    /// the fact at block *start* and the result the fact at block *end*;
    /// for a backward analysis the other way around.
    fn transfer(&self, body: &Body, block: BlockId, input: &Self::Fact) -> Self::Fact;

    /// Accumulates `from` into `into`, returning whether `into` changed.
    fn join(&self, into: &mut Self::Fact, from: &Self::Fact) -> bool;
}

/// The fixpoint of an [`Analysis`]: facts at block starts and ends.
///
/// Only blocks reachable in the [`BlockGraph`] carry facts; querying an
/// unreachable block returns `None`.
#[derive(Debug, Clone)]
pub struct Solution<F> {
    entry: HashMap<BlockId, F>,
    exit: HashMap<BlockId, F>,
}

impl<F> Solution<F> {
    /// The fact at the start of `b` (after block arguments bind).
    pub fn entry_of(&self, b: BlockId) -> Option<&F> {
        self.entry.get(&b)
    }

    /// The fact at the end of `b` (after its terminator).
    pub fn exit_of(&self, b: BlockId) -> Option<&F> {
        self.exit.get(&b)
    }
}

/// Runs `analysis` to fixpoint over `graph` and returns the per-block facts.
pub fn solve<A: Analysis>(analysis: &A, body: &Body, graph: &BlockGraph) -> Solution<A::Fact> {
    let forward = analysis.direction() == Direction::Forward;
    // Process in RPO for forward problems and post-order for backward ones;
    // either way most facts settle in one or two sweeps.
    let order: Vec<BlockId> = if forward {
        graph.rpo().to_vec()
    } else {
        graph.rpo().iter().rev().copied().collect()
    };

    // `up` is the transfer input side (block start for forward, block end
    // for backward); `down` is the transfer output side.
    let mut up: HashMap<BlockId, A::Fact> = HashMap::new();
    let mut down: HashMap<BlockId, A::Fact> = HashMap::new();
    for &b in &order {
        let is_boundary = if forward {
            b == graph.entry()
        } else {
            graph.succs(b).is_empty()
        };
        let init = if is_boundary {
            analysis.boundary(body)
        } else {
            analysis.bottom()
        };
        up.insert(b, init);
        down.insert(b, analysis.bottom());
    }

    let mut worklist: VecDeque<BlockId> = order.iter().copied().collect();
    let mut queued: HashSet<BlockId> = order.iter().copied().collect();
    while let Some(b) = worklist.pop_front() {
        queued.remove(&b);
        // Pull the neighbors' output facts into our input fact.
        let neighbors: &[BlockId] = if forward {
            graph.preds(b)
        } else {
            graph.succs(b)
        };
        {
            let mut fact = up.remove(&b).expect("fact initialized");
            for n in neighbors {
                if let Some(nf) = down.get(n) {
                    analysis.join(&mut fact, nf);
                }
            }
            up.insert(b, fact);
        }
        let new_down = analysis.transfer(body, b, &up[&b]);
        if down[&b] != new_down {
            down.insert(b, new_down);
            let push_to: &[BlockId] = if forward {
                graph.succs(b)
            } else {
                graph.preds(b)
            };
            for &n in push_to {
                if graph.is_reachable(n) && queued.insert(n) {
                    worklist.push_back(n);
                }
            }
        }
    }

    if forward {
        Solution {
            entry: up,
            exit: down,
        }
    } else {
        Solution {
            entry: down,
            exit: up,
        }
    }
}
