//! Closure construction and application semantics.
//!
//! `lp.pap` builds a closure from a top-level function and some prefix of its
//! arguments; `lp.papextend` adds further arguments to an existing closure.
//! When the argument count reaches the function's arity the call fires. These
//! semantics live here, in the runtime, because both the reference
//! interpreter and the VM must agree on them exactly (§III-D of the paper).

use crate::heap::Heap;
use crate::object::{FuncId, ObjData, ObjRef};

/// What happens when arguments are added to a (partial) application.
#[derive(Debug, Clone, PartialEq)]
pub enum ApplyOutcome {
    /// Still under-saturated: a (new) closure value holding the arguments.
    Partial(ObjRef),
    /// Exactly saturated: invoke `func` with `args`.
    Call {
        /// Function to invoke.
        func: FuncId,
        /// Exactly `arity` arguments.
        args: Vec<ObjRef>,
    },
    /// Over-saturated: invoke `func` with `args`, then apply the returned
    /// closure to `rest`.
    CallThen {
        /// Function to invoke first.
        func: FuncId,
        /// Exactly `arity` arguments.
        args: Vec<ObjRef>,
        /// Remaining arguments to apply to the call's result.
        rest: Vec<ObjRef>,
    },
}

/// Builds a partial application of a top-level function (`lp.pap`).
///
/// Takes ownership of `args`. If the argument list already saturates the
/// function, the call fires instead of allocating a closure.
pub fn pap_new(heap: &mut Heap, func: FuncId, arity: u16, args: Vec<ObjRef>) -> ApplyOutcome {
    saturate(heap, func, arity, args)
}

/// Extends a closure with further arguments (`lp.papextend`).
///
/// Takes ownership of one reference to `closure` and of `new_args`.
///
/// # Panics
///
/// Panics if `closure` is not a closure object.
pub fn pap_extend(heap: &mut Heap, closure: ObjRef, new_args: Vec<ObjRef>) -> ApplyOutcome {
    let (func, arity, mut args) = match heap.data(closure) {
        ObjData::Closure { func, arity, args } => (*func, *arity, args.clone()),
        other => panic!("papextend on non-closure {other:?}"),
    };
    // The captured arguments gain a reference in the (possibly new) argument
    // vector; the closure itself loses the reference we consumed.
    for &a in &args {
        heap.inc(a);
    }
    heap.dec(closure);
    args.extend(new_args);
    saturate(heap, func, arity, args)
}

fn saturate(heap: &mut Heap, func: FuncId, arity: u16, args: Vec<ObjRef>) -> ApplyOutcome {
    use std::cmp::Ordering;
    match args.len().cmp(&(arity as usize)) {
        Ordering::Less => ApplyOutcome::Partial(heap.alloc_closure(func, arity, args)),
        Ordering::Equal => ApplyOutcome::Call { func, args },
        Ordering::Greater => {
            let rest = args[arity as usize..].to_vec();
            let args = args[..arity as usize].to_vec();
            ApplyOutcome::CallThen { func, args, rest }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn under_saturated_builds_closure() {
        let mut h = Heap::new();
        let out = pap_new(&mut h, FuncId(0), 3, vec![ObjRef::scalar(1)]);
        match out {
            ApplyOutcome::Partial(c) => {
                match h.data(c) {
                    ObjData::Closure { func, arity, args } => {
                        assert_eq!(*func, FuncId(0));
                        assert_eq!(*arity, 3);
                        assert_eq!(args.len(), 1);
                    }
                    _ => panic!("expected closure"),
                }
                h.dec(c);
            }
            other => panic!("expected Partial, got {other:?}"),
        }
        assert_eq!(h.stats().live, 0);
    }

    #[test]
    fn exact_saturation_fires_call() {
        let mut h = Heap::new();
        let out = pap_new(
            &mut h,
            FuncId(4),
            2,
            vec![ObjRef::scalar(1), ObjRef::scalar(2)],
        );
        assert_eq!(
            out,
            ApplyOutcome::Call {
                func: FuncId(4),
                args: vec![ObjRef::scalar(1), ObjRef::scalar(2)]
            }
        );
    }

    #[test]
    fn extend_to_saturation() {
        let mut h = Heap::new();
        let c = match pap_new(&mut h, FuncId(1), 2, vec![ObjRef::scalar(10)]) {
            ApplyOutcome::Partial(c) => c,
            other => panic!("{other:?}"),
        };
        let out = pap_extend(&mut h, c, vec![ObjRef::scalar(20)]);
        assert_eq!(
            out,
            ApplyOutcome::Call {
                func: FuncId(1),
                args: vec![ObjRef::scalar(10), ObjRef::scalar(20)]
            }
        );
        assert_eq!(h.stats().live, 0, "consumed closure must be freed");
    }

    #[test]
    fn extend_stays_partial() {
        let mut h = Heap::new();
        let c = match pap_new(&mut h, FuncId(1), 4, vec![ObjRef::scalar(1)]) {
            ApplyOutcome::Partial(c) => c,
            other => panic!("{other:?}"),
        };
        let out = pap_extend(&mut h, c, vec![ObjRef::scalar(2)]);
        match out {
            ApplyOutcome::Partial(c2) => {
                match h.data(c2) {
                    ObjData::Closure { args, .. } => assert_eq!(args.len(), 2),
                    _ => panic!(),
                }
                h.dec(c2);
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(h.stats().live, 0);
    }

    #[test]
    fn over_saturation_splits_args() {
        let mut h = Heap::new();
        let c = match pap_new(&mut h, FuncId(9), 2, vec![ObjRef::scalar(1)]) {
            ApplyOutcome::Partial(c) => c,
            other => panic!("{other:?}"),
        };
        let out = pap_extend(&mut h, c, vec![ObjRef::scalar(2), ObjRef::scalar(3)]);
        assert_eq!(
            out,
            ApplyOutcome::CallThen {
                func: FuncId(9),
                args: vec![ObjRef::scalar(1), ObjRef::scalar(2)],
                rest: vec![ObjRef::scalar(3)],
            }
        );
    }

    #[test]
    fn shared_closure_extension_keeps_original() {
        let mut h = Heap::new();
        let captured = h.alloc_ctor(5, vec![]);
        let c = match pap_new(&mut h, FuncId(2), 2, vec![captured]) {
            ApplyOutcome::Partial(c) => c,
            other => panic!("{other:?}"),
        };
        h.inc(c); // share it
        let out = pap_extend(&mut h, c, vec![ObjRef::scalar(7)]);
        match out {
            ApplyOutcome::Call { args, .. } => {
                assert_eq!(args[0], captured);
                assert_eq!(args[1], ObjRef::scalar(7));
            }
            other => panic!("{other:?}"),
        }
        // Original closure still alive and intact.
        match h.data(c) {
            ObjData::Closure { args, .. } => assert_eq!(args.len(), 1),
            _ => panic!(),
        }
        // captured now referenced by both the closure and the fired args.
        assert_eq!(h.rc(captured), 2);
        h.dec(captured);
        h.dec(c);
        assert_eq!(h.stats().live, 0);
    }
}
