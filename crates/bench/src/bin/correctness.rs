//! §V-A correctness: runs the full conformance corpus (the analogue of the
//! LEAN test suite's 648 cases) differentially across all pipelines and
//! prints the pass rate.
//!
//! ```text
//! cargo run --release -p lssa-bench --bin correctness [-- --count 648]
//! ```

use lssa_driver::conformance::full_corpus;
use lssa_driver::diff::run_differential;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let count = args
        .iter()
        .position(|a| a == "--count")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(648);
    let corpus = full_corpus(count, 0x5e5a_2022);
    let total = corpus.len();
    let mut passed = 0usize;
    let mut failures = Vec::new();
    for case in &corpus {
        let r = run_differential(&case.name, &case.src, 500_000_000);
        if r.passed() {
            passed += 1;
        } else {
            failures.push((case.name.clone(), r.failure.unwrap()));
        }
    }
    println!(
        "{:.0}% tests passed, {} tests failed out of {}",
        100.0 * passed as f64 / total as f64,
        total - passed,
        total
    );
    for (name, why) in &failures {
        println!("FAIL {name}: {why}");
    }
    if failures.is_empty() {
        println!("(paper: \"100% tests passed, 0 tests failed out of 648\")");
    } else {
        std::process::exit(1);
    }
}
