//! Ergonomic op construction.
//!
//! [`Builder`] wraps a [`Body`] plus an insertion block and provides one
//! method per opcode, so lowering code reads like the IR it produces.

use crate::attr::{Attr, AttrKey, CmpPred};
use crate::body::{Body, Successor};
use crate::ids::{BlockId, OpId, Symbol, ValueId};
use crate::opcode::Opcode;
use crate::types::Type;

/// An op builder positioned at the end of a block.
#[derive(Debug)]
pub struct Builder<'a> {
    /// The body being built.
    pub body: &'a mut Body,
    /// Current insertion block (ops are appended at its end).
    pub block: BlockId,
}

impl<'a> Builder<'a> {
    /// Creates a builder appending to `block`.
    pub fn at_end(body: &'a mut Body, block: BlockId) -> Builder<'a> {
        Builder { body, block }
    }

    /// Repositions to another block.
    pub fn set_block(&mut self, block: BlockId) {
        self.block = block;
    }

    fn push(
        &mut self,
        opcode: Opcode,
        operands: Vec<ValueId>,
        result_tys: &[Type],
        attrs: Vec<(AttrKey, Attr)>,
    ) -> OpId {
        let op = self.body.create_op(opcode, operands, result_tys, attrs);
        self.body.push_op(self.block, op);
        op
    }

    fn push1(
        &mut self,
        opcode: Opcode,
        operands: Vec<ValueId>,
        ty: Type,
        attrs: Vec<(AttrKey, Attr)>,
    ) -> ValueId {
        let op = self.push(opcode, operands, &[ty], attrs);
        self.body.ops[op.index()].result().unwrap()
    }

    // ---- arith ------------------------------------------------------------

    /// `arith.constant` of the given type.
    pub fn const_i(&mut self, v: i64, ty: Type) -> ValueId {
        self.push1(
            Opcode::ConstI,
            vec![],
            ty,
            vec![(AttrKey::Value, Attr::Int(v))],
        )
    }

    /// Boolean constant (`i1`).
    pub fn const_bool(&mut self, v: bool) -> ValueId {
        self.const_i(v as i64, Type::I1)
    }

    fn binop(&mut self, opcode: Opcode, a: ValueId, b: ValueId) -> ValueId {
        let ty = self.body.value_type(a);
        self.push1(opcode, vec![a, b], ty, vec![])
    }

    /// `arith.addi`.
    pub fn addi(&mut self, a: ValueId, b: ValueId) -> ValueId {
        self.binop(Opcode::AddI, a, b)
    }

    /// `arith.subi`.
    pub fn subi(&mut self, a: ValueId, b: ValueId) -> ValueId {
        self.binop(Opcode::SubI, a, b)
    }

    /// `arith.muli`.
    pub fn muli(&mut self, a: ValueId, b: ValueId) -> ValueId {
        self.binop(Opcode::MulI, a, b)
    }

    /// `arith.divi`.
    pub fn divi(&mut self, a: ValueId, b: ValueId) -> ValueId {
        self.binop(Opcode::DivI, a, b)
    }

    /// `arith.remi`.
    pub fn remi(&mut self, a: ValueId, b: ValueId) -> ValueId {
        self.binop(Opcode::RemI, a, b)
    }

    /// `arith.andi`.
    pub fn andi(&mut self, a: ValueId, b: ValueId) -> ValueId {
        self.binop(Opcode::AndI, a, b)
    }

    /// `arith.ori`.
    pub fn ori(&mut self, a: ValueId, b: ValueId) -> ValueId {
        self.binop(Opcode::OrI, a, b)
    }

    /// `arith.xori`.
    pub fn xori(&mut self, a: ValueId, b: ValueId) -> ValueId {
        self.binop(Opcode::XorI, a, b)
    }

    /// `arith.cmpi {pred}` yielding `i1`.
    pub fn cmpi(&mut self, pred: CmpPred, a: ValueId, b: ValueId) -> ValueId {
        self.push1(
            Opcode::CmpI,
            vec![a, b],
            Type::I1,
            vec![(AttrKey::Pred, Attr::Pred(pred))],
        )
    }

    /// `arith.select` (works on any type, including `!rgn.region`).
    pub fn select(&mut self, cond: ValueId, t: ValueId, f: ValueId) -> ValueId {
        let ty = self.body.value_type(t);
        self.push1(Opcode::Select, vec![cond, t, f], ty, vec![])
    }

    /// `arith.switch_val {cases}`: N-way value selection. `vals` pairs with
    /// `cases`; `default` is the fallback.
    pub fn switch_val(
        &mut self,
        idx: ValueId,
        cases: Vec<i64>,
        vals: Vec<ValueId>,
        default: ValueId,
    ) -> ValueId {
        assert_eq!(cases.len(), vals.len());
        let ty = self.body.value_type(default);
        let mut operands = vec![idx];
        operands.extend(vals);
        operands.push(default);
        self.push1(
            Opcode::SwitchVal,
            operands,
            ty,
            vec![(AttrKey::Cases, Attr::IntList(cases.into()))],
        )
    }

    /// `arith.extui` to a wider integer type.
    pub fn extui(&mut self, v: ValueId, ty: Type) -> ValueId {
        self.push1(Opcode::ExtUI, vec![v], ty, vec![])
    }

    /// `arith.trunci` to a narrower integer type.
    pub fn trunci(&mut self, v: ValueId, ty: Type) -> ValueId {
        self.push1(Opcode::TruncI, vec![v], ty, vec![])
    }

    // ---- cf ---------------------------------------------------------------

    /// `cf.br`.
    pub fn br(&mut self, dest: BlockId, args: Vec<ValueId>) -> OpId {
        let op = self.push(Opcode::Br, vec![], &[], vec![]);
        self.body.ops[op.index()]
            .successors
            .push(Successor::with_args(dest, args));
        op
    }

    /// `cf.cond_br`.
    pub fn cond_br(
        &mut self,
        cond: ValueId,
        then_dest: (BlockId, Vec<ValueId>),
        else_dest: (BlockId, Vec<ValueId>),
    ) -> OpId {
        let op = self.push(Opcode::CondBr, vec![cond], &[], vec![]);
        let succ = &mut self.body.ops[op.index()].successors;
        succ.push(Successor::with_args(then_dest.0, then_dest.1));
        succ.push(Successor::with_args(else_dest.0, else_dest.1));
        op
    }

    /// `cf.switch {cases}`: `targets` pairs with `cases`; last successor is
    /// the default.
    pub fn switch_br(
        &mut self,
        idx: ValueId,
        cases: Vec<i64>,
        targets: Vec<(BlockId, Vec<ValueId>)>,
        default: (BlockId, Vec<ValueId>),
    ) -> OpId {
        assert_eq!(cases.len(), targets.len());
        let op = self.push(
            Opcode::SwitchBr,
            vec![idx],
            &[],
            vec![(AttrKey::Cases, Attr::IntList(cases.into()))],
        );
        let succ = &mut self.body.ops[op.index()].successors;
        for (b, args) in targets {
            succ.push(Successor::with_args(b, args));
        }
        succ.push(Successor::with_args(default.0, default.1));
        op
    }

    /// `cf.unreachable`.
    pub fn unreachable(&mut self) -> OpId {
        self.push(Opcode::Unreachable, vec![], &[], vec![])
    }

    // ---- func ---------------------------------------------------------------

    /// `func.call {callee}` with a single result of type `ret`.
    pub fn call(&mut self, callee: Symbol, args: Vec<ValueId>, ret: Type) -> ValueId {
        self.push1(
            Opcode::Call,
            args,
            ret,
            vec![(AttrKey::Callee, Attr::Sym(callee))],
        )
    }

    /// `func.tail_call {callee}` (terminator; callee result becomes this
    /// function's result).
    pub fn tail_call(&mut self, callee: Symbol, args: Vec<ValueId>) -> OpId {
        self.push(
            Opcode::TailCall,
            args,
            &[],
            vec![(AttrKey::Callee, Attr::Sym(callee))],
        )
    }

    /// `func.return`.
    pub fn ret(&mut self, v: ValueId) -> OpId {
        self.push(Opcode::Return, vec![v], &[], vec![])
    }

    // ---- lp ---------------------------------------------------------------

    /// `lp.int {value}`.
    pub fn lp_int(&mut self, v: i64) -> ValueId {
        self.push1(
            Opcode::LpInt,
            vec![],
            Type::Obj,
            vec![(AttrKey::Value, Attr::Int(v))],
        )
    }

    /// `lp.bigint {value = "…"}`.
    pub fn lp_bigint(&mut self, digits: &str) -> ValueId {
        self.push1(
            Opcode::LpBigInt,
            vec![],
            Type::Obj,
            vec![(AttrKey::Value, Attr::Str(digits.into()))],
        )
    }

    /// `lp.str {value = "…"}`.
    pub fn lp_str(&mut self, s: &str) -> ValueId {
        self.push1(
            Opcode::LpStr,
            vec![],
            Type::Obj,
            vec![(AttrKey::Value, Attr::Str(s.into()))],
        )
    }

    /// `lp.construct {tag}`.
    pub fn lp_construct(&mut self, tag: i64, fields: Vec<ValueId>) -> ValueId {
        self.push1(
            Opcode::LpConstruct,
            fields,
            Type::Obj,
            vec![(AttrKey::Tag, Attr::Int(tag))],
        )
    }

    /// `lp.getlabel` yielding `i8`.
    pub fn lp_getlabel(&mut self, v: ValueId) -> ValueId {
        self.push1(Opcode::LpGetLabel, vec![v], Type::I8, vec![])
    }

    /// `lp.project {index}`.
    pub fn lp_project(&mut self, v: ValueId, index: i64) -> ValueId {
        self.push1(
            Opcode::LpProject,
            vec![v],
            Type::Obj,
            vec![(AttrKey::Index, Attr::Int(index))],
        )
    }

    /// `lp.pap {callee, arity}`.
    pub fn lp_pap(&mut self, callee: Symbol, arity: i64, args: Vec<ValueId>) -> ValueId {
        self.push1(
            Opcode::LpPap,
            args,
            Type::Obj,
            vec![
                (AttrKey::Callee, Attr::Sym(callee)),
                (AttrKey::Arity, Attr::Int(arity)),
            ],
        )
    }

    /// `lp.papextend`.
    pub fn lp_papextend(&mut self, closure: ValueId, args: Vec<ValueId>) -> ValueId {
        let mut operands = vec![closure];
        operands.extend(args);
        self.push1(Opcode::LpPapExtend, operands, Type::Obj, vec![])
    }

    /// `lp.switch {cases}` terminator. One region per case plus a default
    /// region, created here; each gets an empty entry block. Returns
    /// `(op, case-entry-blocks..including default)`.
    pub fn lp_switch(&mut self, tag: ValueId, cases: Vec<i64>) -> (OpId, Vec<BlockId>) {
        let n = cases.len() + 1;
        let op = self.push(
            Opcode::LpSwitch,
            vec![tag],
            &[],
            vec![(AttrKey::Cases, Attr::IntList(cases.into()))],
        );
        let mut entries = Vec::with_capacity(n);
        for _ in 0..n {
            let r = self.body.new_region(op);
            entries.push(self.body.new_block(r, &[]));
        }
        (op, entries)
    }

    /// `lp.joinpoint {label}` terminator. Creates the join-point region (its
    /// entry block gets `jp_arg_tys` arguments) and the body ("pre-jump")
    /// region. Returns `(op, jp-entry, body-entry)`.
    pub fn lp_joinpoint(&mut self, label: Symbol, jp_arg_tys: &[Type]) -> (OpId, BlockId, BlockId) {
        let op = self.push(
            Opcode::LpJoinPoint,
            vec![],
            &[],
            vec![(AttrKey::Label, Attr::Sym(label))],
        );
        let jp_region = self.body.new_region(op);
        let jp_entry = self.body.new_block(jp_region, jp_arg_tys);
        let body_region = self.body.new_region(op);
        let body_entry = self.body.new_block(body_region, &[]);
        (op, jp_entry, body_entry)
    }

    /// `lp.jump {label}` terminator.
    pub fn lp_jump(&mut self, label: Symbol, args: Vec<ValueId>) -> OpId {
        self.push(
            Opcode::LpJump,
            args,
            &[],
            vec![(AttrKey::Label, Attr::Sym(label))],
        )
    }

    /// `lp.inc`.
    pub fn lp_inc(&mut self, v: ValueId) -> OpId {
        self.push(Opcode::LpInc, vec![v], &[], vec![])
    }

    /// `lp.dec`.
    pub fn lp_dec(&mut self, v: ValueId) -> OpId {
        self.push(Opcode::LpDec, vec![v], &[], vec![])
    }

    /// `lp.ret` terminator.
    pub fn lp_ret(&mut self, v: ValueId) -> OpId {
        self.push(Opcode::LpReturn, vec![v], &[], vec![])
    }

    /// `lp.global.load {global}`.
    pub fn lp_global_load(&mut self, global: Symbol) -> ValueId {
        self.push1(
            Opcode::LpGlobalLoad,
            vec![],
            Type::Obj,
            vec![(AttrKey::Global, Attr::Sym(global))],
        )
    }

    /// `lp.global.store {global}`.
    pub fn lp_global_store(&mut self, global: Symbol, v: ValueId) -> OpId {
        self.push(
            Opcode::LpGlobalStore,
            vec![v],
            &[],
            vec![(AttrKey::Global, Attr::Sym(global))],
        )
    }

    // ---- rgn ---------------------------------------------------------------

    /// `rgn.val`: creates a region value. The region's entry block gets
    /// arguments of types `arg_tys` (join-point parameters). Returns
    /// `(region-value, entry-block)`.
    pub fn rgn_val(&mut self, arg_tys: &[Type]) -> (ValueId, BlockId) {
        let op = self.push(Opcode::RgnVal, vec![], &[Type::Rgn], vec![]);
        let region = self.body.new_region(op);
        let entry = self.body.new_block(region, arg_tys);
        let v = self.body.ops[op.index()].result().unwrap();
        (v, entry)
    }

    /// `rgn.run` terminator.
    pub fn rgn_run(&mut self, r: ValueId, args: Vec<ValueId>) -> OpId {
        let mut operands = vec![r];
        operands.extend(args);
        self.push(Opcode::RgnRun, operands, &[], vec![])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_arith_chain() {
        let (mut body, params) = Body::new(&[Type::I64]);
        let entry = body.entry_block();
        let mut b = Builder::at_end(&mut body, entry);
        let c = b.const_i(2, Type::I64);
        let sum = b.addi(params[0], c);
        let cond = b.cmpi(CmpPred::Slt, sum, c);
        let sel = b.select(cond, sum, c);
        b.ret(sel);
        assert_eq!(body.live_op_count(), 5);
        assert_eq!(body.value_type(cond), Type::I1);
        assert_eq!(body.value_type(sel), Type::I64);
    }

    #[test]
    fn lp_switch_creates_regions() {
        let (mut body, params) = Body::new(&[Type::Obj]);
        let entry = body.entry_block();
        let mut b = Builder::at_end(&mut body, entry);
        let tag = b.lp_getlabel(params[0]);
        let (op, blocks) = b.lp_switch(tag, vec![0, 1]);
        assert_eq!(blocks.len(), 3, "two cases plus default");
        assert_eq!(body.ops[op.index()].regions.len(), 3);
        for (i, &bl) in blocks.iter().enumerate() {
            let r = body.ops[op.index()].regions[i];
            assert_eq!(body.regions[r.index()].blocks[0], bl);
        }
    }

    #[test]
    fn rgn_val_and_run() {
        let (mut body, _) = Body::new(&[]);
        let entry = body.entry_block();
        let mut b = Builder::at_end(&mut body, entry);
        let (r, inner) = b.rgn_val(&[]);
        {
            let mut ib = Builder::at_end(b.body, inner);
            let v = ib.lp_int(3);
            ib.lp_ret(v);
        }
        let mut b = Builder::at_end(&mut body, entry);
        b.rgn_run(r, vec![]);
        assert_eq!(body.value_type(r), Type::Rgn);
        assert_eq!(body.live_op_count(), 4);
    }

    #[test]
    fn joinpoint_blocks() {
        let (mut body, _) = Body::new(&[]);
        let entry = body.entry_block();
        let mut module = crate::module::Module::new();
        let label = module.intern("jp");
        let mut b = Builder::at_end(&mut body, entry);
        let (op, jp_entry, body_entry) = b.lp_joinpoint(label, &[Type::Obj]);
        assert_eq!(body.ops[op.index()].regions.len(), 2);
        assert_eq!(body.blocks[jp_entry.index()].args.len(), 1);
        assert_eq!(body.blocks[body_entry.index()].args.len(), 0);
    }

    #[test]
    fn switch_val_operand_layout() {
        let (mut body, params) = Body::new(&[Type::I8, Type::Rgn, Type::Rgn, Type::Rgn]);
        let entry = body.entry_block();
        let mut b = Builder::at_end(&mut body, entry);
        let v = b.switch_val(params[0], vec![0, 1], vec![params[1], params[2]], params[3]);
        assert_eq!(body.value_type(v), Type::Rgn);
        let op = body.defining_op(v).unwrap();
        assert_eq!(body.ops[op.index()].operands.len(), 4);
    }
}
