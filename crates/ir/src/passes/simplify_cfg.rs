//! CFG simplification: unreachable-block removal and straight-line block
//! merging. Runs after the `rgn`→CFG lowering to tidy the jump-table code it
//! emits (§IV-C).

use crate::body::Body;
use crate::dom::DomTree;
use crate::ids::{BlockId, RegionId};
use crate::module::Module;
use crate::opcode::Opcode;
use crate::pass::{for_each_function, Pass};
use std::collections::HashMap;

/// The CFG simplification pass.
#[derive(Debug, Default, Clone, Copy)]
pub struct SimplifyCfgPass;

impl Pass for SimplifyCfgPass {
    fn name(&self) -> &'static str {
        "simplify-cfg"
    }

    fn run_on(&self, module: &mut Module) -> bool {
        for_each_function(module, |_, body| run_on_body(body))
    }
}

/// Runs CFG simplification on one body. Returns whether anything changed.
pub fn run_on_body(body: &mut Body) -> bool {
    let mut changed = false;
    loop {
        let mut round = remove_unreachable_blocks(body);
        round |= merge_straightline_blocks(body);
        changed |= round;
        if !round {
            break;
        }
    }
    changed
}

/// Removes blocks unreachable from their region's entry. Returns whether
/// anything was removed.
pub fn remove_unreachable_blocks(body: &mut Body) -> bool {
    let mut changed = false;
    for ri in 0..body.regions.len() {
        let region = RegionId(ri as u32);
        if body.regions[ri].blocks.is_empty() {
            continue;
        }
        // Skip detached regions (their parent op was erased).
        if ri != 0 && body.regions[ri].parent.is_none() {
            continue;
        }
        let tree = DomTree::compute(body, region);
        let blocks = body.regions[ri].blocks.clone();
        let dead: Vec<BlockId> = blocks
            .iter()
            .copied()
            .filter(|&b| !tree.is_reachable(b))
            .collect();
        if dead.is_empty() {
            continue;
        }
        for &b in &dead {
            let ops = std::mem::take(&mut body.blocks[b.index()].ops);
            for op in ops {
                body.ops[op.index()].parent = None;
                body.erase_op(op);
            }
            body.blocks[b.index()].parent = None;
        }
        body.regions[ri].blocks.retain(|b| !dead.contains(b));
        changed = true;
    }
    changed
}

/// Merges each block that is the unique successor of a block ending in an
/// unconditional branch, when it is also that block's unique predecessor
/// edge. Returns whether anything changed.
pub fn merge_straightline_blocks(body: &mut Body) -> bool {
    let mut changed = false;
    for ri in 0..body.regions.len() {
        if body.regions[ri].blocks.len() < 2 {
            continue;
        }
        if ri != 0 && body.regions[ri].parent.is_none() {
            continue;
        }
        'merge: loop {
            // Count predecessor edges per block within this region.
            let blocks = body.regions[ri].blocks.clone();
            let mut pred_edges: HashMap<BlockId, usize> = HashMap::new();
            for &b in &blocks {
                if let Some(t) = body.terminator(b) {
                    for s in &body.ops[t.index()].successors {
                        *pred_edges.entry(s.block).or_default() += 1;
                    }
                }
            }
            for &pred in &blocks {
                let Some(term) = body.terminator(pred) else {
                    continue;
                };
                if body.ops[term.index()].opcode != Opcode::Br {
                    continue;
                }
                let succ = body.ops[term.index()].successors[0].block;
                // Never merge the region entry (it has an implicit
                // predecessor: the region's own entry edge).
                if succ == pred
                    || succ == blocks[0]
                    || pred_edges.get(&succ).copied().unwrap_or(0) != 1
                {
                    continue;
                }
                // Rewire: block args become the branch operands.
                let args = body.ops[term.index()].successors[0].args.clone();
                let params = body.blocks[succ.index()].args.clone();
                for (&p, &a) in params.iter().zip(&args) {
                    body.replace_all_uses(p, a);
                }
                body.erase_op(term);
                let moved = std::mem::take(&mut body.blocks[succ.index()].ops);
                for &op in &moved {
                    body.ops[op.index()].parent = Some(pred);
                }
                body.blocks[pred.index()].ops.extend(moved);
                body.blocks[succ.index()].parent = None;
                body.regions[ri].blocks.retain(|&b| b != succ);
                changed = true;
                continue 'merge;
            }
            break;
        }
    }
    changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::body::ROOT_REGION;
    use crate::builder::Builder;
    use crate::types::Type;

    #[test]
    fn straightline_chain_merges_to_one_block() {
        let (mut body, params) = Body::new(&[Type::I64]);
        let entry = body.entry_block();
        let b1 = body.new_block(ROOT_REGION, &[Type::I64]);
        let b2 = body.new_block(ROOT_REGION, &[]);
        let mut b = Builder::at_end(&mut body, entry);
        let c = b.const_i(1, Type::I64);
        let s = b.addi(params[0], c);
        b.br(b1, vec![s]);
        let arg = body.blocks[b1.index()].args[0];
        let mut bb1 = Builder::at_end(&mut body, b1);
        bb1.br(b2, vec![]);
        let mut bb2 = Builder::at_end(&mut body, b2);
        bb2.ret(arg);
        assert!(run_on_body(&mut body));
        assert_eq!(body.regions[0].blocks.len(), 1);
        // return now directly uses the add result.
        let ret = body.terminator(entry).unwrap();
        assert_eq!(body.ops[ret.index()].operands, vec![s]);
    }

    #[test]
    fn diamond_is_not_merged() {
        let (mut body, params) = Body::new(&[Type::I1]);
        let entry = body.entry_block();
        let a = body.new_block(ROOT_REGION, &[]);
        let c = body.new_block(ROOT_REGION, &[]);
        let join = body.new_block(ROOT_REGION, &[Type::I64]);
        let mut b = Builder::at_end(&mut body, entry);
        b.cond_br(params[0], (a, vec![]), (c, vec![]));
        let mut ba = Builder::at_end(&mut body, a);
        let va = ba.const_i(1, Type::I64);
        ba.br(join, vec![va]);
        let mut bc = Builder::at_end(&mut body, c);
        let vc = bc.const_i(2, Type::I64);
        bc.br(join, vec![vc]);
        let arg = body.blocks[join.index()].args[0];
        let mut bj = Builder::at_end(&mut body, join);
        bj.ret(arg);
        assert!(!run_on_body(&mut body));
        assert_eq!(body.regions[0].blocks.len(), 4);
    }

    #[test]
    fn self_loop_not_merged() {
        let (mut body, _) = Body::new(&[]);
        let entry = body.entry_block();
        let lp = body.new_block(ROOT_REGION, &[]);
        Builder::at_end(&mut body, entry).br(lp, vec![]);
        Builder::at_end(&mut body, lp).br(lp, vec![]);
        // entry->lp merges (single edge), then lp self-branches; must not
        // merge the self loop or loop forever.
        run_on_body(&mut body);
        assert!(!body.regions[0].blocks.is_empty());
    }
}
