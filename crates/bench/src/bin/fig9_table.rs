//! Regenerates Figure 9: speedup of the lp+rgn backend over the leanc-style
//! baseline, per benchmark plus geomean.
//!
//! ```text
//! cargo run --release -p lssa-bench --bin fig9_table [-- --runs 10 --scale bench]
//! ```

use lssa_bench::{bar, fig9_rows, geomean};
use lssa_driver::workloads::Scale;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let runs = arg_value(&args, "--runs").unwrap_or(10);
    let scale = match args.iter().any(|a| a == "--scale")
        && args.windows(2).any(|w| w[0] == "--scale" && w[1] == "test")
    {
        true => Scale::Test,
        false => Scale::Bench,
    };
    println!("Figure 9: Speedup of our runtimes in comparison to LEAN4's existing C backend");
    println!("(lp+rgn MLIR-style pipeline vs leanc-style direct lowering; median of {runs} runs)");
    println!();
    println!(
        "{:<20} {:>10} {:>12}   speedup over leanc",
        "benchmark", "time ×", "instrs ×"
    );
    let rows = fig9_rows(scale, runs);
    for r in &rows {
        println!(
            "{:<20} {:>10.2} {:>12.2}   |{}| {:.2}",
            r.name,
            r.speedup_time,
            r.speedup_instr,
            bar(r.speedup_time, 30),
            r.speedup_time
        );
    }
    let times: Vec<f64> = rows.iter().map(|r| r.speedup_time).collect();
    let instrs: Vec<f64> = rows.iter().map(|r| r.speedup_instr).collect();
    println!(
        "{:<20} {:>10.2} {:>12.2}   |{}| {:.2}",
        "geomean",
        geomean(&times),
        geomean(&instrs),
        bar(geomean(&times), 30),
        geomean(&times)
    );
    println!();
    println!(
        "paper reports: 1.05 1.12 1.01 1.04 0.93 0.99 1.39 1.27, geomean 1.09 (performance parity)"
    );
}

fn arg_value(args: &[String], flag: &str) -> Option<usize> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}
