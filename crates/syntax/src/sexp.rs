//! The S-expression reader: tokens → spanned trees.
//!
//! This is the only place parenthesis structure is interpreted; everything
//! above ([`crate::parse`]) works on [`Sexp`] trees and never sees tokens.

use crate::diag::{Diagnostic, E_UNBALANCED};
use crate::lexer::{lex, Token, TokenKind};
use crate::span::Span;

/// A spanned S-expression node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Sexp {
    /// Payload.
    pub kind: SexpKind,
    /// Byte range covering the node including its parentheses.
    pub span: Span,
}

/// The node payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SexpKind {
    /// A bare atom.
    Atom(String),
    /// A string literal (escapes decoded).
    Str(String),
    /// `( ... )`
    List(Vec<Sexp>),
}

impl Sexp {
    /// The atom text, if this is an atom.
    pub fn as_atom(&self) -> Option<&str> {
        match &self.kind {
            SexpKind::Atom(s) => Some(s),
            _ => None,
        }
    }

    /// The list items, if this is a list.
    pub fn as_list(&self) -> Option<&[Sexp]> {
        match &self.kind {
            SexpKind::List(items) => Some(items),
            _ => None,
        }
    }

    /// Short description for diagnostics ("atom `foo`", "string", "list").
    pub fn describe(&self) -> String {
        match &self.kind {
            SexpKind::Atom(s) => format!("atom `{s}`"),
            SexpKind::Str(_) => "string literal".to_string(),
            SexpKind::List(_) => "list".to_string(),
        }
    }
}

/// Reads all top-level S-expressions in `src`.
///
/// Always returns the forest that could be recovered; lexical and structural
/// errors are reported in the diagnostic list (empty = clean parse).
pub fn read(src: &str) -> (Vec<Sexp>, Vec<Diagnostic>) {
    let (tokens, mut diags) = lex(src);
    let mut reader = Reader {
        tokens: &tokens,
        pos: 0,
        diags: &mut diags,
    };
    let mut top = Vec::new();
    while reader.pos < reader.tokens.len() {
        match reader.read_one() {
            Some(sexp) => top.push(sexp),
            None => break,
        }
    }
    (top, diags)
}

struct Reader<'a> {
    tokens: &'a [Token],
    pos: usize,
    diags: &'a mut Vec<Diagnostic>,
}

impl Reader<'_> {
    /// Reads the next S-expression, or `None` at end of input.
    fn read_one(&mut self) -> Option<Sexp> {
        let token = self.tokens.get(self.pos)?.clone();
        self.pos += 1;
        match token.kind {
            TokenKind::Atom(s) => Some(Sexp {
                kind: SexpKind::Atom(s),
                span: token.span,
            }),
            TokenKind::Str(s) => Some(Sexp {
                kind: SexpKind::Str(s),
                span: token.span,
            }),
            TokenKind::LParen => {
                let mut items = Vec::new();
                loop {
                    match self.tokens.get(self.pos) {
                        Some(t) if t.kind == TokenKind::RParen => {
                            let close = t.span;
                            self.pos += 1;
                            return Some(Sexp {
                                kind: SexpKind::List(items),
                                span: token.span.to(close),
                            });
                        }
                        Some(_) => {
                            if let Some(item) = self.read_one() {
                                items.push(item);
                            }
                        }
                        None => {
                            self.diags.push(
                                Diagnostic::new(
                                    E_UNBALANCED,
                                    "unclosed `(`".to_string(),
                                    token.span,
                                )
                                .with_note("expected a matching `)` before end of input"),
                            );
                            let span = items
                                .last()
                                .map(|s: &Sexp| token.span.to(s.span))
                                .unwrap_or(token.span);
                            return Some(Sexp {
                                kind: SexpKind::List(items),
                                span,
                            });
                        }
                    }
                }
            }
            TokenKind::RParen => {
                self.diags.push(Diagnostic::new(
                    E_UNBALANCED,
                    "unmatched `)`".to_string(),
                    token.span,
                ));
                // Skip it and keep reading so later errors still surface.
                self.read_one()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clean(src: &str) -> Vec<Sexp> {
        let (forest, diags) = read(src);
        assert!(diags.is_empty(), "{diags:?}");
        forest
    }

    #[test]
    fn reads_nested_lists_with_spans() {
        let forest = clean("(a (b c) \"s\")");
        assert_eq!(forest.len(), 1);
        let items = forest[0].as_list().unwrap();
        assert_eq!(items.len(), 3);
        assert_eq!(items[0].as_atom(), Some("a"));
        assert_eq!(items[1].span, Span::new(3, 8));
        assert_eq!(forest[0].span, Span::new(0, 13));
    }

    #[test]
    fn unclosed_paren_reported_with_span_of_opener() {
        let (forest, diags) = read("(a (b");
        assert_eq!(diags.len(), 2, "both unclosed lists report");
        assert!(diags.iter().all(|d| d.code == E_UNBALANCED));
        assert_eq!(forest.len(), 1, "partial tree still recovered");
    }

    #[test]
    fn unmatched_close_paren_reported() {
        let (forest, diags) = read(") (a)");
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, E_UNBALANCED);
        assert_eq!(diags[0].span, Some(Span::new(0, 1)));
        assert_eq!(forest.len(), 1, "reading continues past the stray paren");
    }

    #[test]
    fn describe_names_node_kinds() {
        let forest = clean("x (y) \"z\"");
        assert_eq!(forest[0].describe(), "atom `x`");
        assert_eq!(forest[1].describe(), "list");
        assert_eq!(forest[2].describe(), "string literal");
    }
}
