//! The classical SSA passes the paper reuses from MLIR (Figure 11):
//! constant folding (canonicalization), CSE, DCE, CFG simplification, and a
//! conservative inliner.

pub mod canonicalize;
pub mod cse;
pub mod dce;
pub mod inline;
pub mod rc_opt;
pub mod simplify_cfg;

pub use canonicalize::{canonicalization_patterns, CanonicalizePass};
pub use cse::CsePass;
pub use dce::DcePass;
pub use inline::InlinePass;
pub use rc_opt::RcOptPass;
pub use simplify_cfg::SimplifyCfgPass;

use crate::body::Body;
use crate::ids::ValueId;
use crate::opcode::Opcode;

/// If `v` is produced by `arith.constant`, returns its integer value.
pub fn const_int_value(body: &Body, v: ValueId) -> Option<i64> {
    let op = body.defining_op(v)?;
    let data = &body.ops[op.index()];
    if data.opcode != Opcode::ConstI {
        return None;
    }
    data.attr(crate::attr::AttrKey::Value)?.as_int()
}
