//! §V-A: the full conformance run — the analogue of "100% tests passed,
//! 0 tests failed out of 648" on the LEAN test suite.
//!
//! Every corpus program is executed by the reference interpreter and by all
//! four compiled pipelines; all five must agree and release every object.

use lambda_ssa::driver::conformance::full_corpus;
use lambda_ssa::driver::diff::run_differential;

const MAX_STEPS: u64 = 500_000_000;

#[test]
fn full_corpus_all_pipelines_agree() {
    let corpus = full_corpus(648, 0x5e5a_2022);
    assert!(corpus.len() >= 648, "corpus must match the paper's scale");
    let mut failures = Vec::new();
    for case in &corpus {
        let r = run_differential(&case.name, &case.src, MAX_STEPS);
        if !r.passed() {
            failures.push(format!(
                "{}: {}\n--- source ---\n{}",
                case.name,
                r.failure.unwrap(),
                case.src
            ));
        }
    }
    assert!(
        failures.is_empty(),
        "{} of {} conformance cases failed:\n{}",
        failures.len(),
        corpus.len(),
        failures.join("\n\n")
    );
}
