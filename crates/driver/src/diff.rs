//! Differential testing: the reference interpreter versus every compiled
//! pipeline.
//!
//! This is the project's analogue of running the LEAN test suite (§V-A):
//! a program passes when all five executions — the λrc reference
//! interpreter (oracle), the leanc-style baseline, the full MLIR pipeline,
//! the rgn-only pipeline and the unoptimized pipeline — produce the same
//! value *and* release every heap object.

use crate::pipelines::{compile_and_run_ast_opts, frontend_ast, CompilerConfig};
use lssa_lambda::ast::Program;
use lssa_vm::DecodeOptions;

/// Outcome of one differential test.
#[derive(Debug, Clone)]
pub struct DiffResult {
    /// Program name.
    pub name: String,
    /// The agreed-on result (when passing).
    pub rendered: Option<String>,
    /// Failure description (when failing).
    pub failure: Option<String>,
}

impl DiffResult {
    /// Whether all pipelines agreed.
    pub fn passed(&self) -> bool {
        self.failure.is_none()
    }
}

/// The pipeline configurations exercised by differential testing.
pub fn configs() -> Vec<CompilerConfig> {
    vec![
        CompilerConfig::leanc(),
        CompilerConfig::mlir(),
        CompilerConfig::rgn_only(),
        CompilerConfig::none(),
    ]
}

/// Runs `src` (the built-in surface language) through the oracle and every
/// pipeline, comparing results.
pub fn run_differential(name: &str, src: &str, max_steps: u64) -> DiffResult {
    let program = match lssa_lambda::parse_program(src) {
        Ok(p) => p,
        Err(e) => {
            return DiffResult {
                name: name.to_string(),
                rendered: None,
                failure: Some(format!("frontend: parse error: {e}")),
            }
        }
    };
    run_differential_ast(name, &program, max_steps)
}

/// [`run_differential`] over an already-parsed program — the entry point for
/// `.lssa` files, whose text frontend lives in `lssa-syntax`.
pub fn run_differential_ast(name: &str, program: &Program, max_steps: u64) -> DiffResult {
    let fail = |msg: String| DiffResult {
        name: name.to_string(),
        rendered: None,
        failure: Some(msg),
    };
    // Oracle: the λrc reference interpreter on the unsimplified program.
    let rc = match frontend_ast(program, CompilerConfig::none()) {
        Ok(rc) => rc,
        Err(e) => return fail(format!("frontend: {e}")),
    };
    let oracle = match lssa_lambda::run_program(&rc, "main", true, max_steps) {
        Ok(o) => o,
        Err(e) => return fail(format!("oracle: {e}")),
    };
    if oracle.stats.live != 0 {
        return fail(format!("oracle leaked {} objects", oracle.stats.live));
    }
    for config in configs() {
        let out =
            match compile_and_run_ast_opts(program, config, max_steps, DecodeOptions::default()) {
                Ok(o) => o,
                Err(e) => return fail(format!("[{}] {e}", config.label())),
            };
        if out.rendered != oracle.rendered {
            return fail(format!(
                "[{}] produced {:?}, oracle {:?}",
                config.label(),
                out.rendered,
                oracle.rendered
            ));
        }
        if out.stats.heap.live != 0 {
            return fail(format!(
                "[{}] leaked {} objects",
                config.label(),
                out.stats.heap.live
            ));
        }
    }
    DiffResult {
        name: name.to_string(),
        rendered: Some(oracle.rendered),
        failure: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_program() {
        let r = run_differential("t", "def main() := 40 + 2", 1_000_000);
        assert!(r.passed(), "{:?}", r.failure);
        assert_eq!(r.rendered.as_deref(), Some("42"));
    }

    #[test]
    fn broken_program_reports_stage() {
        let r = run_differential("t", "def main() := nonsense", 1_000_000);
        assert!(!r.passed());
        assert!(r.failure.unwrap().contains("frontend"));
    }

    #[test]
    fn divergent_program_reports_oracle() {
        let r = run_differential("t", "def spin(x) := spin(x)\ndef main() := spin(0)", 10_000);
        assert!(!r.passed());
        assert!(r.failure.unwrap().contains("oracle"));
    }
}
